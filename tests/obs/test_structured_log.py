"""StructuredLog: stamping, trace correlation, sinks, bounded retention."""

import json

from repro.obs import StructuredLog


class TestStamping:
    def test_sim_time_and_server_stamped(self):
        now = [3.25]
        log = StructuredLog(clock=lambda: now[0], server="srvA")
        record = log.event("daemon.frame_dropped", reason="not a Message")
        assert record["ts"] == 3.25
        assert record["server"] == "srvA"
        assert record["event"] == "daemon.frame_dropped"
        assert record["reason"] == "not a Message"
        assert record["level"] == "info"

    def test_levels_and_helpers(self):
        log = StructuredLog()
        assert log.warn("x")["level"] == "warning"
        assert log.error("x")["level"] == "error"
        assert log.event("x", level="nonsense")["level"] == "info"

    def test_no_clock_defaults_to_zero(self):
        assert StructuredLog().event("x")["ts"] == 0.0


class TestTraceCorrelation:
    def test_active_span_ids_attached(self):
        class Span:
            trace_id = 17
            span_id = 99

        class FakeTracer:
            def current_span(self):
                return Span()

        log = StructuredLog(tracer=FakeTracer())
        record = log.event("x")
        assert record["trace_id"] == 17
        assert record["span_id"] == 99

    def test_no_active_span_means_no_ids(self):
        class FakeTracer:
            def current_span(self):
                return None

        record = StructuredLog(tracer=FakeTracer()).event("x")
        assert "trace_id" not in record

    def test_real_tracer_correlates(self):
        from repro.obs import Tracer
        from repro.sim import Simulator
        sim = Simulator()
        tracer = Tracer(sim)
        log = StructuredLog(clock=lambda: sim.now, server="s",
                            tracer=tracer)
        with tracer.span("op", plane="http", server="s") as span:
            record = log.event("inside")
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id


class TestSinkAndRetention:
    def test_sink_receives_json_lines(self):
        lines = []
        log = StructuredLog(server="s", sink=lines.append)
        log.event("a", n=1)
        log.event("b", n=2)
        parsed = [json.loads(line) for line in lines]
        assert [r["event"] for r in parsed] == ["a", "b"]

    def test_bounded_ring_counts_drops(self):
        log = StructuredLog(capacity=3)
        for i in range(5):
            log.event("e", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [r["i"] for r in log.records()] == [2, 3, 4]
        # counts survive the drop — they are lifetime totals
        assert log.counts() == {"e": 5}

    def test_records_filtering(self):
        log = StructuredLog()
        log.event("a")
        log.warn("a")
        log.warn("b")
        assert len(log.records(event="a")) == 2
        assert len(log.records(level="warning")) == 2
        assert len(log.records(event="a", level="warning")) == 1

    def test_export_jsonl_parses(self):
        log = StructuredLog()
        log.event("a", payload={"deep": [1, 2]})
        log.event("b")
        lines = log.export_jsonl().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_snapshot(self):
        log = StructuredLog()
        log.event("a")
        snap = log.snapshot()
        assert snap == {"records": 1, "dropped": 0, "events": {"a": 1}}


class TestServerIntegration:
    def test_server_log_replaces_silent_drops(self):
        """A non-Message frame on the daemon port becomes a structured
        warning (plus a channel-failure count) instead of silence."""
        from repro.core.deployment import build_single_server
        from repro.steering.application import DAEMON_PORT

        collab = build_single_server(app_hosts=1, client_hosts=1)
        collab.run_bootstrap()
        server = collab.server_of(0)
        host = collab.domains[0].app_hosts[0]
        ep = host.bind(12345)
        ep.send(server.host.name, DAEMON_PORT, {"not": "a message"})
        collab.sim.run(until=collab.sim.now + 1.0)
        drops = server.log.records(event="daemon.frame_dropped")
        assert len(drops) == 1
        assert drops[0]["server"] == server.name
        assert drops[0]["level"] == "warning"
        assert server.health.counters["channel_failures"] == 1
        collab.stop()


class TestOverflowVisibility:
    def test_ring_overflow_counts_drops(self):
        log = StructuredLog(capacity=4)
        for i in range(10):
            log.event("e", i=i)
        assert len(log) == 4
        assert log.dropped == 6
        assert log.snapshot() == {"records": 4, "dropped": 6,
                                  "events": {"e": 10}}

    def test_drops_surface_in_registry_and_bench_row(self):
        """Ring overflow is a first-class counter: visible in the unified
        metrics registry snapshot, the bench row, and the obs: footer —
        never a silent loss."""
        from repro.bench.report import format_pipeline_summary
        from repro.bench.scenarios import pipeline_counters
        from repro.core.deployment import build_single_server

        collab = build_single_server(app_hosts=1, client_hosts=1)
        collab.run_bootstrap()
        server = collab.server_of(0)
        server.log._records = type(server.log._records)(maxlen=2)
        for i in range(7):
            server.log.event("spam", i=i)

        snap = collab.metrics_registry().snapshot()
        log_snap = snap[f"log[{server.name}]"]
        assert log_snap["dropped"] == 5
        assert log_snap["records"] == 2
        assert f"timeseries[{server.name}]" in snap

        row = pipeline_counters(collab.servers.values())
        assert row["log_dropped"] == 5
        assert row["log_records"] == 2
        assert row["ts_series"] >= 0

        footer = format_pipeline_summary([row])
        assert "obs: log_records=2 log_dropped=5" in footer
        collab.stop()
