"""Property tests pinning the size-visitor fast path to the encoder.

The perf-critical invariant — ``encoded_size(x) == len(encode(x))`` —
is what lets the network layer account traffic bytes without ever
materializing wire bytes.  These tests pin it (and the round trip)
over the full value model: JSON-ish scalars and containers, ndarrays
of several dtypes, and registered message objects.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import (
    CommandMessage,
    UpdateMessage,
    decode,
    encode,
    encoded_size,
    freeze_size,
)

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_,
          np.complex128]


def ndarrays():
    return st.builds(
        lambda dtype, shape, seed:
            np.random.default_rng(seed).integers(0, 100, size=shape)
            .astype(dtype),
        dtype=st.sampled_from(DTYPES),
        shape=st.one_of(
            st.tuples(st.integers(0, 30)),
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
        ),
        seed=st.integers(0, 2 ** 16),
    )


def scalars():
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
        st.floats(allow_nan=False),
        st.text(max_size=40),  # exercises both ascii and UTF-8 paths
        st.binary(max_size=40),
    )


def values():
    return st.recursive(
        st.one_of(scalars(), ndarrays()),
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=10), children, max_size=5),
        ),
        max_leaves=12,
    )


def messages():
    return st.one_of(
        st.builds(UpdateMessage, payload=values(), seq=st.integers(0, 999),
                  timestamp=st.floats(allow_nan=False)),
        st.builds(CommandMessage, command=st.text(max_size=20),
                  args=st.dictionaries(st.text(max_size=8), scalars(),
                                       max_size=4)),
    )


def _eq(a, b):
    """Deep equality where ndarrays compare by dtype/shape/value."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.shape == b.shape
                and np.array_equal(a, b))
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_eq(v, b[k]) for k, v in a.items()))
    return a == b


@settings(max_examples=200, deadline=None)
@given(values())
def test_size_matches_encode_over_value_model(value):
    assert encoded_size(value) == len(encode(value))


@settings(max_examples=200, deadline=None)
@given(values())
def test_roundtrip_over_value_model(value):
    assert _eq(decode(encode(value)), value)


@settings(max_examples=100, deadline=None)
@given(messages())
def test_size_matches_encode_for_registered_messages(msg):
    assert encoded_size(msg) == len(encode(msg))


@settings(max_examples=100, deadline=None)
@given(messages())
def test_roundtrip_for_registered_messages(msg):
    out = decode(encode(msg))
    assert type(out) is type(msg)
    assert _eq(vars(out), vars(msg))


@settings(max_examples=100, deadline=None)
@given(messages())
def test_frozen_size_matches_encode(msg):
    # freeze_size memoizes but must report the same exact byte count,
    # on the first call and on memo hits.
    first = freeze_size(msg)
    assert first == len(encode(msg))
    assert freeze_size(msg) == first
    assert encoded_size(msg) == first


def test_sizing_never_materializes_array_bytes():
    # A broadcast view whose nbytes is ~30 GB: any tobytes()/copy in the
    # sizing path would exhaust memory.  The exact formula value must come
    # back instantly.
    big = np.broadcast_to(np.float64(1.0), (60_000, 60_000))
    expected = (1 + 4 + len(big.dtype.str) + 4 + 4 * big.ndim + 4
                + big.dtype.itemsize * big.size)
    assert encoded_size(big) == expected
    assert encoded_size({"grid": big, "tag": "huge"}) > expected
