"""Declarative SLOs, sliding-window burn rates, and the alert log.

An :class:`SLOSpec` states an objective over a service-level indicator —
``error_rate``: the fraction of failed requests stays under the error
budget (``1 - objective``); ``latency``: a latency quantile stays under
``threshold`` sim-seconds.  The :class:`SLOEngine` samples each spec's
cumulative counters on the monitor's heartbeat tick, records the
per-tick *increments* into ``slo.<name>.total`` / ``slo.<name>.bad``
counter series in a :class:`~repro.obs.TimeSeriesRegistry`, and
evaluates the classic multi-window burn-rate rule (Google SRE
workbook) by *querying the store*: a window's (total, bad) is the sum
of the counter buckets that start strictly after ``now - window``.
With samples taken at bucket-aligned times (the monitor period is a
multiple of the bucket width) this is bit-for-bit the same arithmetic
as a private sample deque — the left window edge is the last sample at
or before the cutoff, so the window delta is exactly the increments
recorded strictly after it.  An alert
fires when *both* the short and the long window of a pair burn the
error budget faster than the pair's factor, and resolves when the pair
clears.  Two pairs are evaluated per spec — a fast pair (page: short
outage, steep burn) and a slow pair (ticket: slow leak) — with window
lengths expressed in *sim* seconds so scenarios can compress "5m/1h"
into a tractable virtual run.

Alerts land in a bounded, deduplicating :class:`AlertLog`: an already
firing (spec, severity) pair never re-fires, fire/resolve transitions
are recorded with the burn rates that caused them, and each fire
captures *trace exemplars* — the trace ids of the worst error spans in
the window, via the span store the deployment's tracer already keeps —
so an alert links straight to a cross-server trace of the damage.

Like the rest of the health plane, evaluation is plain bookkeeping:
no events, no messages, no CPU charges.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs import TimeSeriesRegistry

#: bucket width of a private SLO store, sim-seconds; monitor periods
#: are multiples of this, keeping window sums exact (see module doc)
DEFAULT_BUCKET_WIDTH = 0.25

#: default fast pair: (short window, long window, burn factor) — the
#: "page" rule; sim-seconds, scaled for runs tens of seconds long
DEFAULT_FAST = (1.0, 5.0, 10.0)
#: default slow pair — the "ticket" rule (slow leak)
DEFAULT_SLOW = (5.0, 20.0, 2.0)

#: alert severities, one per window pair
SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"

#: default alert-log retention (fire/resolve events)
DEFAULT_MAX_EVENTS = 256


class SLOSpec:
    """One declarative objective over a service-level indicator.

    ``kind="error_rate"``: the sample function returns cumulative
    ``(total, bad)`` request counts; the SLI is the good fraction.

    ``kind="latency"``: the sample function returns the current value of
    a latency quantile (e.g. a p99 estimate in sim-seconds); every
    evaluation tick contributes one good/bad observation — bad when the
    quantile exceeds ``threshold`` — so the same burn-rate machinery
    applies ("deliver_command p99 < X" becomes "the fraction of ticks
    over X stays within budget").
    """

    def __init__(self, name: str, *, kind: str = "error_rate",
                 objective: float = 0.999,
                 threshold: Optional[float] = None,
                 description: str = "",
                 fast: Tuple[float, float, float] = DEFAULT_FAST,
                 slow: Tuple[float, float, float] = DEFAULT_SLOW) -> None:
        if kind not in ("error_rate", "latency"):
            raise ValueError(f"unknown SLO kind {kind!r}")
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if kind == "latency" and threshold is None:
            raise ValueError("latency SLOs need a threshold")
        self.name = name
        self.kind = kind
        self.objective = objective
        self.threshold = threshold
        self.description = description
        #: (short, long, factor) window pairs; the long window also sets
        #: how much history the engine retains for the spec
        self.fast = fast
        self.slow = slow

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad fraction (``1 - objective``)."""
        return 1.0 - self.objective

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SLOSpec {self.name!r} {self.kind} {self.objective}>"


class Alert:
    """One fire→resolve lifecycle of a (spec, severity) pair."""

    __slots__ = ("slo", "severity", "fired_at", "resolved_at",
                 "burn_short", "burn_long", "windows", "exemplars")

    def __init__(self, slo: str, severity: str, fired_at: float, *,
                 burn_short: float, burn_long: float,
                 windows: Tuple[float, float],
                 exemplars: Optional[List[int]] = None) -> None:
        self.slo = slo
        self.severity = severity
        self.fired_at = fired_at
        self.resolved_at: Optional[float] = None
        self.burn_short = burn_short
        self.burn_long = burn_long
        self.windows = windows
        #: trace ids of the worst offending spans at fire time
        self.exemplars: List[int] = list(exemplars or ())

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def to_record(self) -> dict:
        """JSON-friendly dict (alert-log exports, CLI rendering)."""
        return {
            "slo": self.slo, "severity": self.severity,
            "fired_at": self.fired_at, "resolved_at": self.resolved_at,
            "burn_short": self.burn_short, "burn_long": self.burn_long,
            "windows": list(self.windows), "exemplars": self.exemplars,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else f"resolved@{self.resolved_at}"
        return f"<Alert {self.slo}/{self.severity} {state}>"


class AlertLog:
    """Bounded, deduplicating record of alert lifecycles.

    One :class:`Alert` object spans fire→resolve; while a (spec,
    severity) pair is active, repeated firing conditions are deduplicated
    into the existing alert.  Retention is bounded: resolved alerts
    beyond ``max_events`` are dropped oldest-first (active alerts are
    never dropped).
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.max_events = max_events
        self._history: Deque[Alert] = deque()
        self._active: Dict[Tuple[str, str], Alert] = {}
        self.fired = 0
        self.resolved = 0
        #: firing conditions deduplicated into an already active alert
        self.deduplicated = 0

    def fire(self, slo: str, severity: str, now: float, *,
             burn_short: float, burn_long: float,
             windows: Tuple[float, float],
             exemplars: Optional[List[int]] = None) -> Alert:
        key = (slo, severity)
        alert = self._active.get(key)
        if alert is not None:
            self.deduplicated += 1
            return alert
        alert = Alert(slo, severity, now, burn_short=burn_short,
                      burn_long=burn_long, windows=windows,
                      exemplars=exemplars)
        self._active[key] = alert
        self._history.append(alert)
        self.fired += 1
        self._trim()
        return alert

    def resolve(self, slo: str, severity: str, now: float) -> Optional[Alert]:
        alert = self._active.pop((slo, severity), None)
        if alert is None:
            return None
        alert.resolved_at = now
        self.resolved += 1
        return alert

    def _trim(self) -> None:
        while len(self._history) > self.max_events:
            for i, alert in enumerate(self._history):
                if not alert.active:
                    del self._history[i]
                    break
            else:
                break  # everything active; never drop a live alert

    # -- queries -----------------------------------------------------------
    def active(self) -> List[Alert]:
        return [self._active[key] for key in sorted(self._active)]

    def history(self) -> List[Alert]:
        """Every retained alert, oldest first."""
        return list(self._history)

    def snapshot(self) -> dict:
        return {"fired": self.fired, "resolved": self.resolved,
                "active": len(self._active),
                "deduplicated": self.deduplicated}


class SLOEngine:
    """Evaluates registered SLO specs over store-backed sliding windows.

    Each spec owns two counter series in the time-series registry —
    ``slo.<name>.total`` and ``slo.<name>.bad`` — holding the per-tick
    increments of its cumulative sample.  The first sample is a
    baseline and records nothing, so every window query ("buckets
    starting strictly after the cutoff") reproduces the sample-deque
    arithmetic exactly.
    """

    def __init__(self, *, clock: Callable[[], float],
                 log: Optional[AlertLog] = None,
                 exemplar_fn: Optional[Callable[[float], List[int]]] = None,
                 timeseries: Optional[TimeSeriesRegistry] = None,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        self._clock = clock
        self.log = log if log is not None else AlertLog()
        #: ``exemplar_fn(window_start) -> [trace_id, ...]`` — supplied by
        #: the monitor, which can reach the deployment's span store
        self.exemplar_fn = exemplar_fn
        #: the backing store; a server passes its shared registry so SLO
        #: series land next to the emitters', else we keep a private one
        self.timeseries = (timeseries if timeseries is not None
                           else TimeSeriesRegistry(clock=clock,
                                                   bucket_width=bucket_width))
        #: spec name → (spec, sample_fn)
        self._specs: Dict[str, Tuple[SLOSpec, Callable[[], Any]]] = {}
        #: spec name → last cumulative (total, bad); None until baselined
        self._last: Dict[str, Optional[Tuple[float, float]]] = {}

    def add(self, spec: SLOSpec, sample_fn: Callable[[], Any]) -> SLOSpec:
        """Register a spec with its cumulative-sample source."""
        if spec.name in self._specs:
            raise ValueError(f"SLO {spec.name!r} already registered")
        self._specs[spec.name] = (spec, sample_fn)
        self._last[spec.name] = None
        return spec

    def specs(self) -> List[SLOSpec]:
        return [spec for spec, _fn in self._specs.values()]

    # -- sampling ----------------------------------------------------------
    def observe(self) -> None:
        """Take one sample of every spec and re-evaluate its windows."""
        now = self._clock()
        for name, (spec, sample_fn) in self._specs.items():
            prev = self._last[name]
            total, bad = self._cumulative(spec, sample_fn, prev)
            self._last[name] = (float(total), float(bad))
            if prev is not None:
                d_total = float(total) - prev[0]
                d_bad = float(bad) - prev[1]
                if d_total:
                    self.timeseries.inc(f"slo.{name}.total", d_total)
                if d_bad:
                    self.timeseries.inc(f"slo.{name}.bad", d_bad)
            self._evaluate(spec, now)

    def _cumulative(self, spec: SLOSpec, sample_fn, prev):
        if spec.kind == "error_rate":
            total, bad = sample_fn()
            return total, bad
        # latency: one observation per tick, bad when over threshold
        value = sample_fn()
        prev_total, prev_bad = prev if prev is not None else (0.0, 0.0)
        bad = 1.0 if (value is not None
                      and value > spec.threshold) else 0.0
        return prev_total + 1.0, prev_bad + bad

    # -- evaluation --------------------------------------------------------
    def burn_rate(self, name: str, window: float) -> float:
        """Burn rate of one spec over the trailing ``window`` sim-seconds.

        The burn rate is the bad fraction observed in the window divided
        by the error budget: 1.0 means the budget is being spent exactly
        at the sustainable rate, ``k`` means ``k``× too fast.
        """
        spec, _fn = self._specs[name]
        return self._burn(spec, self._clock(), window)

    def _window(self, name: str, now: float,
                window: float) -> Tuple[float, float]:
        """(total, bad) increments in the trailing ``window``."""
        cutoff = now - window
        return (self.timeseries.window_sum(f"slo.{name}.total", cutoff),
                self.timeseries.window_sum(f"slo.{name}.bad", cutoff))

    def _burn(self, spec: SLOSpec, now: float, window: float) -> float:
        total, bad = self._window(spec.name, now, window)
        if total <= 0:
            return 0.0
        return (bad / total) / spec.budget

    def _evaluate(self, spec: SLOSpec, now: float) -> None:
        for severity, (short, long_, factor) in (
                (SEVERITY_PAGE, spec.fast), (SEVERITY_TICKET, spec.slow)):
            burn_short = self._burn(spec, now, short)
            burn_long = self._burn(spec, now, long_)
            firing = burn_short >= factor and burn_long >= factor
            if firing:
                exemplars = (self.exemplar_fn(now - long_)
                             if self.exemplar_fn is not None else None)
                self.log.fire(spec.name, severity, now,
                              burn_short=burn_short, burn_long=burn_long,
                              windows=(short, long_), exemplars=exemplars)
            else:
                self.log.resolve(spec.name, severity, now)

    # -- reporting ---------------------------------------------------------
    def compliance(self) -> Dict[str, dict]:
        """Per-spec compliance over the slow-long window (the widest)."""
        now = self._clock()
        out = {}
        for name, (spec, _fn) in sorted(self._specs.items()):
            window = max(spec.fast[1], spec.slow[1])
            total, bad = self._window(name, now, window)
            sli = 1.0 - (bad / total) if total > 0 else 1.0
            out[name] = {
                "kind": spec.kind,
                "objective": spec.objective,
                "sli": sli,
                "compliant": sli >= spec.objective or total == 0,
                "burn_fast": self._burn(spec, now, spec.fast[0]),
                "burn_slow": self._burn(spec, now, spec.slow[0]),
                "window_total": total,
                "window_bad": bad,
            }
        return out

    def snapshot(self) -> dict:
        """Plain-dict reduction for the metrics registry."""
        out: Dict[str, Any] = {"alerts": self.log.snapshot()}
        for name, report in self.compliance().items():
            out[name] = {
                "objective": report["objective"],
                "sli": report["sli"],
                "compliant": int(report["compliant"]),
                "burn_fast": report["burn_fast"],
                "burn_slow": report["burn_slow"],
            }
        return out
