"""Storage media for the durable state plane.

A backend is dumb on purpose: it persists an ordered list of WAL entries
and one snapshot document, both plain JSON-safe dicts.  Everything with
semantics — LSNs, compaction policy, plane dispatch — lives above it in
:mod:`repro.storage.wal` / :mod:`repro.storage.journal`, so swapping the
medium (heap, JSONL directory, eventually a real database) never touches
recovery logic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional


class StorageError(Exception):
    """The medium rejected an operation (corrupt file, closed backend)."""


class StorageBackend:
    """Interface every storage medium implements.

    The WAL region is append-only between compactions; ``reset_wal``
    atomically replaces it (the compaction rewrite).  The snapshot slot
    holds at most one document and is atomically replaced on save.
    """

    # -- WAL region -----------------------------------------------------
    def append(self, entry: Dict) -> None:
        raise NotImplementedError

    def entries(self) -> List[Dict]:
        raise NotImplementedError

    def reset_wal(self, entries: Iterable[Dict]) -> None:
        raise NotImplementedError

    def wal_len(self) -> int:
        return len(self.entries())

    # -- snapshot slot --------------------------------------------------
    def save_snapshot(self, snapshot: Dict) -> None:
        raise NotImplementedError

    def load_snapshot(self) -> Optional[Dict]:
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------
    def clear(self) -> None:
        """Wipe both regions (tests / fresh deployments)."""
        self.reset_wal(())
        self.save_snapshot({})

    def close(self) -> None:
        pass


class MemoryBackend(StorageBackend):
    """Durable-enough: a medium that outlives the server *object*.

    The deployment holds the backend and hands it to the replacement
    server on restart — modelling a disk that survives a process crash
    without paying real file I/O inside the simulator hot path (the
    default, so journaling stays within noise of the wallclock bench).
    """

    def __init__(self) -> None:
        self._wal: List[Dict] = []
        self._snapshot: Optional[Dict] = None

    def append(self, entry: Dict) -> None:
        self._wal.append(entry)

    def entries(self) -> List[Dict]:
        return list(self._wal)

    def reset_wal(self, entries: Iterable[Dict]) -> None:
        self._wal = list(entries)

    def wal_len(self) -> int:
        return len(self._wal)

    def save_snapshot(self, snapshot: Dict) -> None:
        self._snapshot = snapshot if snapshot else None

    def load_snapshot(self) -> Optional[Dict]:
        return self._snapshot


class JsonlBackend(StorageBackend):
    """On-disk medium: ``<dir>/wal.jsonl`` + ``<dir>/snapshot.json``.

    Appends go straight to the WAL file (one JSON object per line,
    flushed per append — the write-ahead contract).  Snapshot saves and
    WAL compactions write to a temp file and ``os.replace`` it, so a
    crash mid-rewrite leaves the previous generation intact.  Reopening
    the directory recovers whatever the last process persisted.
    """

    WAL_NAME = "wal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, directory) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.dir / self.WAL_NAME
        self.snapshot_path = self.dir / self.SNAPSHOT_NAME
        self._fh = open(self.wal_path, "a", encoding="utf-8")

    def append(self, entry: Dict) -> None:
        if self._fh.closed:
            raise StorageError(f"backend {self.dir} is closed")
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._fh.flush()

    def entries(self) -> List[Dict]:
        self._fh.flush()
        out: List[Dict] = []
        with open(self.wal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except ValueError:
                    # torn tail write from a crash mid-append: everything
                    # before it is intact, the torn record never committed
                    break
        return out

    def reset_wal(self, entries: Iterable[Dict]) -> None:
        self._fh.close()
        tmp = self.wal_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        os.replace(tmp, self.wal_path)
        self._fh = open(self.wal_path, "a", encoding="utf-8")

    def save_snapshot(self, snapshot: Dict) -> None:
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, separators=(",", ":"))
        os.replace(tmp, self.snapshot_path)

    def load_snapshot(self) -> Optional[Dict]:
        if not self.snapshot_path.exists():
            return None
        with open(self.snapshot_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if not text.strip():
            return None
        doc = json.loads(text)
        return doc or None

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
