"""A6 — vertical vs horizontal scaling of the client limit.

§6.1's ~20-client limit is a CPU limit of the commodity servlet engine.
Two ways out: a beefier server (more servlet worker threads / CPUs —
vertical) or the paper's peer-to-peer server network (horizontal, E9).
This ablation quantifies the vertical path: the degradation knee moves
proportionally with server CPUs, so the P2P network is what you need once
a single box tops out.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import run_client_scalability

CLIENTS = (10, 20, 30, 40, 60)
CPUS = (1, 2, 4)
DURATION = 15.0


def test_bench_a6_server_cpu_scaling(benchmark):
    rows = run_once(benchmark, lambda: [
        run_client_scalability(n, duration=DURATION, server_cpus=c)
        for c in CPUS for n in CLIENTS])
    print_experiment(
        "A6 (ablation): client capacity vs server CPUs (vertical scaling)",
        "20 simultaneous clients ... beyond 20, degradation (a server-CPU "
        "limit)",
        rows,
        ["server_cpus", "n_clients", "mean_rtt_ms", "p90_rtt_ms", "polls"],
        finding=_finding(rows),
    )
    by = {(r["server_cpus"], r["n_clients"]): r["mean_rtt_ms"]
          for r in rows}
    base = by[(1, 10)]
    # 1 CPU: degraded at 30 clients
    assert by[(1, 30)] > 2 * base
    # 2 CPUs: healthy at 30 (knee roughly doubled), degraded by 60
    assert by[(2, 30)] < 1.5 * base
    assert by[(2, 60)] > 2 * base
    # 4 CPUs: healthy through 60
    assert by[(4, 60)] < 1.5 * base


def _finding(rows) -> str:
    by = {(r["server_cpus"], r["n_clients"]): r["mean_rtt_ms"]
          for r in rows}
    base = by[(1, 10)]

    def knee(cpus):
        for n in CLIENTS:
            if by[(cpus, n)] > 2 * base:
                return n
        return f">{CLIENTS[-1]}"

    return (f"degradation knee: {knee(1)} clients @1 CPU, {knee(2)} @2, "
            f"{knee(4)} @4 — capacity tracks server CPUs")
