"""Unit tests for the record store and the session archive."""

import pytest

from repro.core.archival import SessionArchive
from repro.core.database import Database, Record, Table
from repro.sim import Simulator


# ------------------------------- database ----------------------------------

def test_insert_and_select_by_owner():
    tbl = Table("t")
    tbl.insert("alice", {"v": 1}, created_at=0.0)
    tbl.insert("bob", {"v": 2}, created_at=1.0)
    assert [r.data["v"] for r in tbl.select("alice")] == [1]
    assert [r.data["v"] for r in tbl.select("bob")] == [2]


def test_readers_grant_access():
    tbl = Table("t")
    tbl.insert("alice", {"v": 1}, created_at=0.0, readers=["bob"])
    assert [r.data["v"] for r in tbl.select("bob")] == [1]
    assert tbl.select("carol") == []


def test_wildcard_reader():
    tbl = Table("t")
    tbl.insert("alice", {"v": 1}, created_at=0.0, readers=["*"])
    assert len(tbl.select("anyone")) == 1


def test_select_predicate_and_limit():
    tbl = Table("t")
    for i in range(10):
        tbl.insert("alice", {"v": i}, created_at=float(i))
    evens = tbl.select("alice", predicate=lambda r: r.data["v"] % 2 == 0,
                       limit=3)
    assert [r.data["v"] for r in evens] == [0, 2, 4]


def test_tail():
    tbl = Table("t")
    for i in range(10):
        tbl.insert("alice", {"v": i}, created_at=float(i))
    assert [r.data["v"] for r in tbl.tail("alice", 3)] == [7, 8, 9]


def test_record_ids_unique_and_increasing():
    tbl = Table("t")
    r1 = tbl.insert("a", {}, 0.0)
    r2 = tbl.insert("a", {}, 0.0)
    assert r2.record_id > r1.record_id


def test_count_ignores_acl_and_accepts_predicate():
    tbl = Table("t")
    tbl.insert("alice", {"v": 1}, created_at=0.0)
    tbl.insert("bob", {"v": 2}, created_at=1.0, readers=["carol"])
    assert tbl.count() == 2  # bookkeeping: every owner's records count
    assert tbl.count(lambda r: r.data["v"] > 1) == 1
    assert tbl.count(lambda r: False) == 0


def test_database_creates_tables_on_demand():
    db = Database()
    t1 = db.table("x")
    assert db.table("x") is t1
    db.table("y")
    assert db.table_names() == ["x", "y"]


# ------------------------------- archive -----------------------------------

@pytest.fixture
def archive(sim):
    return SessionArchive(sim)


def test_interaction_log_and_replay(sim, archive):
    archive.log_interaction("app-1", "alice", "command",
                            {"command": "set_param", "request_id": 1})
    archive.log_interaction("app-1", "alice", "response",
                            {"request_id": 1})
    archive.log_interaction("app-2", "alice", "command",
                            {"command": "pause", "request_id": 2})
    records = archive.replay_interactions("app-1", "alice")
    assert [r["kind"] for r in records] == ["command", "response"]
    assert records[0]["command"] == "set_param"
    assert archive.interaction_count("app-1") == 2
    assert archive.interaction_count() == 3


def test_replay_respects_ownership(sim, archive):
    archive.log_interaction("app-1", "alice", "command", {"command": "x"})
    assert archive.replay_interactions("app-1", "bob") == []


def test_replay_with_readers_shares_history(sim, archive):
    archive.log_interaction("app-1", "alice", "command", {"command": "x"},
                            readers=["bob"])
    assert len(archive.replay_interactions("app-1", "bob")) == 1


def test_replay_since_filters_by_time(sim, archive):
    archive.log_interaction("app-1", "alice", "command", {"command": "x"})
    # advance the clock, then log a second interaction
    sim.call_later(10.0, lambda: archive.log_interaction(
        "app-1", "alice", "command", {"command": "y"}))
    sim.run()
    early = archive.replay_interactions("app-1", "alice", since=5.0)
    assert [r["command"] for r in early] == ["y"]


def test_app_log_ownership_and_readers(sim, archive):
    archive.log_app_record("app-1", "owner-user", "update", {"seq": 1},
                           readers=["alice", "bob"])
    assert len(archive.replay_app_log("app-1", "alice")) == 1
    assert len(archive.replay_app_log("app-1", "owner-user")) == 1
    assert archive.replay_app_log("app-1", "eve") == []


def test_latecomer_catchup_returns_recent(sim, archive):
    for i in range(30):
        archive.log_interaction("app-1", "alice", "command",
                                {"command": f"cmd-{i}"}, readers=["*"])
    recent = archive.latecomer_catchup("app-1", "newcomer", n=5)
    assert [r["command"] for r in recent] == [
        "cmd-25", "cmd-26", "cmd-27", "cmd-28", "cmd-29"]


def test_catchup_scoped_to_app(sim, archive):
    archive.log_interaction("app-1", "alice", "command", {"command": "a"},
                            readers=["*"])
    archive.log_interaction("app-2", "alice", "command", {"command": "b"},
                            readers=["*"])
    recent = archive.latecomer_catchup("app-2", "bob", n=10)
    assert [r["command"] for r in recent] == ["b"]


# -------------------------- ACL boundary cases ------------------------------

def test_catchup_respects_readers_list(sim, archive):
    """A latecomer only sees interactions shared with them (or everyone);
    records scoped to the owner stay private."""
    archive.log_interaction("app-1", "alice", "command", {"command": "prv"})
    archive.log_interaction("app-1", "alice", "command", {"command": "shr"},
                            readers=["bob"])
    archive.log_interaction("app-1", "alice", "command", {"command": "pub"},
                            readers=["*"])
    assert [r["command"] for r in
            archive.latecomer_catchup("app-1", "bob")] == ["shr", "pub"]
    assert [r["command"] for r in
            archive.latecomer_catchup("app-1", "eve")] == ["pub"]
    assert [r["command"] for r in
            archive.latecomer_catchup("app-1", "alice")] == ["prv", "shr",
                                                             "pub"]


def test_app_log_readers_share_but_never_widen(sim, archive):
    """Readers grant read access to the listed users only — being a
    reader of one record reveals nothing about the app's other records."""
    archive.log_app_record("app-1", "owner", "status", {"seq": 1},
                           readers=["alice"])
    archive.log_app_record("app-1", "owner", "status", {"seq": 2},
                           readers=["bob"])
    assert [r["seq"] for r in
            archive.replay_app_log("app-1", "alice")] == [1]
    assert [r["seq"] for r in
            archive.replay_app_log("app-1", "bob")] == [2]
    assert [r["seq"] for r in
            archive.replay_app_log("app-1", "owner")] == [1, 2]
    assert archive.replay_app_log("app-1", "eve") == []


def test_replay_app_log_since_is_inclusive(sim, archive):
    archive.log_app_record("app-1", "owner", "status", {"seq": 1})
    sim.call_later(5.0, lambda: archive.log_app_record(
        "app-1", "owner", "status", {"seq": 2}))
    sim.run()
    # since= is an inclusive lower bound on created_at
    assert [r["seq"] for r in
            archive.replay_app_log("app-1", "owner", since=5.0)] == [2]
    assert [r["seq"] for r in
            archive.replay_app_log("app-1", "owner", since=5.1)] == []
    assert [r["seq"] for r in
            archive.replay_app_log("app-1", "owner", since=0.0)] == [1, 2]


def test_replay_limit_boundaries(sim, archive):
    for i in range(5):
        archive.log_interaction("app-1", "alice", "command", {"seq": i})
    full = archive.replay_interactions("app-1", "alice")
    assert [r["seq"] for r in full] == [0, 1, 2, 3, 4]
    assert [r["seq"] for r in
            archive.replay_interactions("app-1", "alice", limit=2)] == [0, 1]
    assert archive.replay_interactions("app-1", "alice", limit=0) == []
    # limit past the end is just "everything"
    assert len(archive.replay_interactions("app-1", "alice",
                                           limit=99)) == 5


def test_catchup_n_boundaries(sim, archive):
    for i in range(3):
        archive.log_interaction("app-1", "alice", "command", {"seq": i},
                                readers=["*"])
    assert archive.latecomer_catchup("app-1", "bob", n=0) == []
    assert [r["seq"] for r in
            archive.latecomer_catchup("app-1", "bob", n=99)] == [0, 1, 2]
