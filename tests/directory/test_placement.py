"""The pluggable Placement abstraction and its process-wide façade."""

from repro.directory import (
    Placement,
    PrefixPlacement,
    get_placement,
    home_server_of,
    make_app_id,
    set_placement,
)


def test_prefix_placement_roundtrip():
    p = PrefixPlacement()
    app_id = p.make_app_id("rutgers", 7)
    assert app_id == "rutgers#a7"
    assert p.home_of(app_id) == "rutgers"
    # server names containing no separator roundtrip for any seq
    for server in ("s0", "caltech", "ut-austin"):
        for seq in (0, 1, 42):
            assert p.home_of(p.make_app_id(server, seq)) == server


class _SuffixPlacement(Placement):
    """Inverted convention, to prove the façade really delegates."""

    def home_of(self, app_id: str) -> str:
        return app_id.rsplit("@", 1)[1]

    def make_app_id(self, server: str, seq: int) -> str:
        return f"a{seq}@{server}"


def test_set_placement_swaps_the_facade():
    original = get_placement()
    previous = set_placement(_SuffixPlacement())
    try:
        assert previous is original
        assert make_app_id("s9", 3) == "a3@s9"
        assert home_server_of("a3@s9") == "s9"
    finally:
        set_placement(original)
    assert home_server_of("s9#a3") == "s9"


def test_facades_reexported_from_daemon_and_registry():
    # the pre-refactor import sites keep working as façades
    from repro.core.daemon import home_server_of as daemon_home
    from repro.federation.registry import home_server_of as registry_home

    assert daemon_home("s1#a2") == "s1"
    assert registry_home("s1#a2") == "s1"
