"""Tests for Store, PriorityStore, and Resource."""

import pytest

from repro.sim import PriorityStore, Resource, SimulationError, Simulator, Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        got.append((yield store.get()))

    store.put("msg")
    sim.spawn(consumer(sim, store))
    sim.run()
    assert got == ["msg"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim, store):
        yield sim.timeout(5.0)
        yield store.put("late-item")

    sim.spawn(consumer(sim, store))
    sim.spawn(producer(sim, store))
    sim.run()
    assert got == [("late-item", 5.0)]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        for _ in range(3):
            got.append((yield store.get()))

    for i in range(3):
        store.put(i)
    sim.spawn(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store, tag):
        got.append((tag, (yield store.get())))

    sim.spawn(consumer(sim, store, "first"))
    sim.spawn(consumer(sim, store, "second"))

    def producer(sim, store):
        yield sim.timeout(1.0)
        yield store.put("a")
        yield sim.timeout(1.0)
        yield store.put("b")

    sim.spawn(producer(sim, store))
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_bounded_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer(sim, store):
        yield store.put("one")
        events.append(("put-one", sim.now))
        yield store.put("two")
        events.append(("put-two", sim.now))

    def consumer(sim, store):
        yield sim.timeout(10.0)
        item = yield store.get()
        events.append(("got", item, sim.now))

    sim.spawn(producer(sim, store))
    sim.spawn(consumer(sim, store))
    sim.run()
    assert events == [("put-one", 0.0), ("got", "one", 10.0), ("put-two", 10.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    sim.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_try_put_respects_capacity():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a") is True
    sim.run()
    assert store.try_put("b") is False
    assert len(store) == 1


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    sim.run()
    assert len(store) == 2


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def consumer(sim, store):
        for _ in range(3):
            got.append((yield store.get()))

    store.put((5, "low"))
    store.put((1, "high"))
    store.put((3, "mid"))
    sim.spawn(consumer(sim, store))
    sim.run()
    assert got == [(1, "high"), (3, "mid"), (5, "low")]


def test_priority_store_try_get():
    sim = Simulator()
    store = PriorityStore(sim)
    store.put((2, "b"))
    store.put((1, "a"))
    sim.run()
    assert store.try_get() == (1, "a")


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    active = []
    peak = []

    def worker(sim, res, tag):
        req = res.request()
        yield req
        active.append(tag)
        peak.append(len(active))
        yield sim.timeout(10.0)
        active.remove(tag)
        res.release(req)

    for tag in range(4):
        sim.spawn(worker(sim, res, tag))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 20.0  # two batches of two


def test_resource_fifo_within_priority():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, tag):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(1.0)
        res.release(req)

    for tag in ("a", "b", "c"):
        sim.spawn(worker(sim, res, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_priority_preempts_queue_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim, res):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def worker(sim, res, tag, prio, delay):
        yield sim.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        yield sim.timeout(1.0)
        res.release(req)

    sim.spawn(holder(sim, res))
    sim.spawn(worker(sim, res, "normal", 5, 1.0))
    sim.spawn(worker(sim, res, "urgent", 0, 2.0))
    sim.run()
    assert order == ["urgent", "normal"]


def test_resource_release_cancels_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    assert holder.triggered
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel while still queued
    assert res.queue_length == 0
    res.release(holder)


def test_resource_release_unknown_rejected():
    sim = Simulator()
    res1 = Resource(sim, capacity=1)
    res2 = Resource(sim, capacity=1)
    req = res1.request()
    with pytest.raises(SimulationError):
        res2.release(req)


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.count == 1
    assert res.queue_length == 1
    res.release(r1)
    assert res.count == 1  # r2 promoted
    assert res.queue_length == 0
    res.release(r2)
    assert res.count == 0
