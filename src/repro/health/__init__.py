"""Fleet health plane: heartbeats, hysteresis, SLO burn rates, export.

The paper's Daemon handler and server-to-server Control network exist so
operators can tell which servers and applications are alive; this
package turns that implicit knowledge into a first-class surface.  Each
:class:`~repro.core.server.DiscoverServer` owns a :class:`HealthMonitor`
whose heartbeat process folds local and federated liveness signals into
per-component statuses with hysteresis, evaluates declarative
:class:`SLOSpec` objectives with multi-window burn-rate alerting into a
deduplicating :class:`AlertLog`, and exports everything through the
Prometheus text format and the ``/status`` servlet.

Boundary: other ``repro`` packages interact with the health plane only
through this facade and the :class:`HealthMonitor` query API
(``status_of`` / ``is_unhealthy_peer`` / ``fleet_view`` / ``snapshot``).
Status enums and hysteresis internals stay inside ``repro.health`` —
enforced by the health-boundary lint in
``tools/check_pipeline_boundary.py``.
"""

from repro.health.model import (ComponentHealth, HealthModel, STATUS_CODES,
                                STATUS_DEGRADED, STATUS_HEALTHY,
                                STATUS_ORDER, STATUS_UNHEALTHY,
                                STATUS_UNKNOWN)
from repro.health.monitor import HealthMonitor, default_slos
from repro.health.prometheus import parse_prometheus, to_prometheus
from repro.health.slo import (Alert, AlertLog, SLOEngine, SLOSpec,
                              SEVERITY_PAGE, SEVERITY_TICKET)

__all__ = [
    "Alert",
    "AlertLog",
    "ComponentHealth",
    "HealthModel",
    "HealthMonitor",
    "SEVERITY_PAGE",
    "SEVERITY_TICKET",
    "SLOEngine",
    "SLOSpec",
    "STATUS_CODES",
    "STATUS_DEGRADED",
    "STATUS_HEALTHY",
    "STATUS_ORDER",
    "STATUS_UNHEALTHY",
    "STATUS_UNKNOWN",
    "default_slos",
    "parse_prometheus",
    "to_prometheus",
]
