"""One-shot events that processes wait on.

An event goes through three states: *pending* (created, not yet fired),
*triggered* (scheduled on the event heap), and *processed* (its callbacks
have run).  Processes wait on an event by ``yield``-ing it; the kernel adds
the process's resume callback to the event.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

PENDING = object()
"""Sentinel for the value of an event that has not fired yet."""


class SimEvent:
    """A one-shot occurrence in virtual time, carrying a value.

    Events may *succeed* (carry a value) or *fail* (carry an exception, which
    is re-raised inside any process waiting on the event).  Both transitions
    are final; triggering an event twice is an error.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: callbacks run when the event is processed; each receives the event
        self.callbacks: Optional[List[Callable[["SimEvent"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (value/exception is set)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- transitions ----------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined self.sim._push_event(self): succeed() is the single most
        # frequent scheduling operation — always current-instant, NORMAL.
        self.sim._bucket_normal.append(self)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Fire the event with an exception.

        The exception is re-raised in every waiting process.  If *nothing*
        waits on a failed event by the time it is processed, the kernel
        re-raises it to surface programming errors (``defused`` suppresses
        this, mirroring SimPy).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._bucket_normal.append(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at 0x{id(self):x}>"


class Timeout(SimEvent):
    """An event that fires ``delay`` units of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # SimEvent.__init__ and sim._push_event inlined: timeouts are created
        # for every service time and compute step, so the two extra calls and
        # the default-argument dance show up in every scenario profile.
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        if delay == 0.0:
            sim._bucket_normal.append(self)
        else:
            sim._seq += 1
            heapq.heappush(sim._heap, (sim._now + delay, 1, sim._seq, self))


class _Condition(SimEvent):
    """Base for :class:`AnyOf` / :class:`AllOf` composite waits."""

    __slots__ = ("events", "_fired")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]) -> None:
        super().__init__(sim)
        self.events: List[SimEvent] = list(events)
        self._fired: List[SimEvent] = []
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        # Register interest; events already processed are counted immediately.
        for ev in self.events:
            if ev.processed:
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)
        if not self.events and not self.triggered:
            # Degenerate empty condition fires immediately.
            self.succeed(self._collect())

    def _collect(self) -> dict:
        """Map each member event that has actually occurred to its value."""
        return {ev: ev.value for ev in self._fired}

    def _on_fire(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._fired.append(event)
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as *any* member event fires.

    Value is a dict ``{event: value}`` of the events fired so far (there may
    be more than one if several fire at the same instant before callbacks
    run).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class AllOf(_Condition):
    """Fires once *all* member events have fired.  Value maps all events."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= len(self.events)
