"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for the whole reproduction: every
DISCOVER server, client portal, application, and network link runs as a
generator-based :class:`~repro.sim.process.Process` over a single
:class:`~repro.sim.kernel.Simulator` event loop with *virtual* time.

The design follows the classic process-interaction style (SimPy-like), built
from scratch so the repository is self-contained:

- :class:`Simulator` — the event heap and clock.
- :class:`SimEvent` — one-shot occurrences carrying a value; processes
  ``yield`` events to wait on them.
- :class:`Process` — a generator driven by the simulator; itself an event
  that fires when the generator terminates (so processes can be joined).
- :class:`Timeout` — an event that fires after a virtual delay.
- :class:`Store` — FIFO buffer with blocking get/put (message queues).
- :class:`Resource` — counted capacity with FIFO queueing (server CPUs).
- :class:`AnyOf` / :class:`AllOf` — composite wait conditions.

Everything is deterministic: ties in the event heap are broken by insertion
order, and randomness is only available through seeded generators from
:mod:`repro.sim.rng`.
"""

from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import DeterministicRNG

__all__ = [
    "AllOf",
    "AnyOf",
    "DeterministicRNG",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
]
