"""Servlet base class.

A servlet handles requests routed to its path prefix.  ``do_get`` /
``do_post`` may be plain methods returning an :class:`HttpResponse` body
tuple, or generator functions (simulation processes) when handling needs
virtual time (e.g. forwarding to a remote server) — the container runs
either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.web.http import BAD_REQUEST, HttpRequest, HttpResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.web.container import ServletContainer
    from repro.web.session import HttpSession


class Servlet:
    """Base servlet: routes by HTTP method, subclasses override handlers.

    Handlers return either an :class:`HttpResponse`-compatible result —
    ``(status, body)`` or just ``body`` (implying 200) — or a generator
    producing that result.
    """

    #: path prefix this servlet is mounted at (set by the container)
    mount_path: str = ""
    container: "ServletContainer | None" = None

    def init(self, container: "ServletContainer") -> None:
        """Called once when mounted; override to grab resources."""
        self.container = container

    def service(self, request: HttpRequest, session: "HttpSession"):
        """Dispatch to ``do_get`` / ``do_post``."""
        if request.method == "GET":
            return self.do_get(request, session)
        return self.do_post(request, session)

    def do_get(self, request: HttpRequest, session: "HttpSession"):
        return (BAD_REQUEST, {"error": f"GET not supported on "
                                       f"{self.mount_path}"})

    def do_post(self, request: HttpRequest, session: "HttpSession"):
        return (BAD_REQUEST, {"error": f"POST not supported on "
                                       f"{self.mount_path}"})

    @staticmethod
    def normalize(request: HttpRequest, result: Any) -> HttpResponse:
        """Turn a handler result into an :class:`HttpResponse`."""
        if isinstance(result, HttpResponse):
            result.request_id = request.request_id
            return result
        if (isinstance(result, tuple) and len(result) == 2
                and isinstance(result[0], int)):
            status, body = result
            return HttpResponse(request.request_id, status, body)
        return HttpResponse(request.request_id, 200, result)
