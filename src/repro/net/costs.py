"""Per-protocol CPU cost model.

The paper's single quantitative finding (§6.1) is an *asymmetry*: one server
sustained **>40 simultaneous applications** (custom TCP channel) but only
**~20 simultaneous clients** (HTTP + servlets) — "the design trade off
between high performance and wide spread deployment when using commodity
technologies".  §6.2 adds that CORBA "reduces performance when compared to a
lower level socket based system".

We model that by charging the server CPU a per-message *service time* that
depends on the protocol the message arrived on.  The defaults below are
calibrated (see EXPERIMENTS.md) so that with the paper's implied workload —
applications pushing ~2 updates/s, clients polling ~4 times/s — a
single-CPU server saturates near 45 applications and degrades visibly past
~20 clients, matching the published operating points.  All times are in
seconds, sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostModel:
    """CPU service times charged at servers for each kind of work."""

    # --- custom TCP channel (application <-> home server, §4.1) ---------
    #: fixed cost to handle one message from the app channel
    tcp_message_cost: float = 0.003
    #: per-byte deserialization cost on the app channel
    tcp_per_byte: float = 2.0e-8

    # --- HTTP + servlet engine (client <-> server) -----------------------
    #: fixed cost of accepting an HTTP request and dispatching a servlet
    http_request_cost: float = 0.012
    #: per-byte cost of request/response bodies through the servlet engine
    http_per_byte: float = 1.0e-7
    #: extra cost to build a session on first contact (cookie, session obj)
    http_session_setup_cost: float = 0.004

    # --- CORBA ORB (server <-> server, §5) -------------------------------
    #: fixed cost of one remote invocation (stub+skeleton+ORB dispatch)
    corba_call_cost: float = 0.006
    #: per-byte marshalling cost (CDR encode + decode)
    corba_per_byte: float = 8.0e-8
    #: naming-service resolve cost at the naming host
    naming_resolve_cost: float = 0.003
    #: trader query cost per offer examined
    trader_match_cost: float = 0.0008

    # --- security ---------------------------------------------------------
    #: verify a credential against the ACL store
    auth_check_cost: float = 0.005
    #: SSL-ish handshake surcharge on first authentication
    ssl_handshake_cost: float = 0.012

    # --- archival ----------------------------------------------------------
    #: append one record to the session/application log (RDBMS insert)
    log_append_cost: float = 0.001
    #: read one record back during replay/latecomer catch-up
    log_read_cost: float = 0.001

    def tcp_cost(self, size: int) -> float:
        """Service time for one custom-TCP-channel message of ``size`` bytes."""
        return self.tcp_message_cost + self.tcp_per_byte * size

    def http_cost(self, size: int, new_session: bool = False) -> float:
        """Service time for one HTTP request with ``size`` bytes of body."""
        cost = self.http_request_cost + self.http_per_byte * size
        if new_session:
            cost += self.http_session_setup_cost
        return cost

    def corba_cost(self, size: int) -> float:
        """Service time to dispatch one CORBA invocation of ``size`` bytes."""
        return self.corba_call_cost + self.corba_per_byte * size


@dataclass
class LinkSpec:
    """Bandwidth/latency defaults for the two classes of links we build."""

    #: campus LAN: 100 Mbit/s, sub-millisecond latency
    lan_bandwidth: float = 100e6 / 8
    lan_latency: float = 0.0005
    #: WAN between collaboratory domains (paper §4.2 assumes "reasonable
    #: bandwidth links (~100 MB)"; latency is the experimental variable)
    wan_bandwidth: float = 100e6 / 8
    wan_latency: float = 0.030

    extras: dict = field(default_factory=dict)
