"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.sim import Simulator


def drive(sim: Simulator, generator):
    """Run ``generator`` as a process and return its result.

    Runs the simulation until the process finishes (other scheduled work may
    remain pending).
    """
    proc = sim.spawn(generator)
    return sim.run(until=proc)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()
