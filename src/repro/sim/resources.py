"""Blocking FIFO stores and counted resources.

:class:`Store` is the message-queue primitive of the whole system: network
links, server input queues, and per-client FIFO output buffers are Stores.
:class:`Resource` models counted capacity with FIFO queueing (a server's CPU,
a steering lock's single slot).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

from repro.sim.errors import SimulationError
from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class StorePut(SimEvent):
    """Event returned by :meth:`Store.put`; fires when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item


class StoreGet(SimEvent):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()


class Store:
    """FIFO buffer with blocking ``get`` and (optionally) blocking ``put``.

    ``capacity`` bounds the number of buffered items; ``put`` on a full store
    waits until space frees up.  The default capacity is unbounded, matching
    the paper's per-client FIFO buffers ("it necessitates ... FIFO buffers at
    the server for each client to support slow clients") — experiment A2
    studies what bounding them does.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event fires once it is buffered."""
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        """Request the next item; the returned event fires with the item."""
        ev = StoreGet(self.sim)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop and return an item, or ``None`` if empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: buffer the item unless the store is full."""
        if self.is_full and not self._getters:
            return False
        self.put(item)
        return True

    def cancel(self, event: SimEvent) -> None:
        """Withdraw a not-yet-fired get/put event from the wait queues.

        Needed by timed waits: a process racing a ``get()`` against a
        timeout must cancel the loser, or a later ``put`` would be consumed
        by an abandoned event and the item silently lost.
        """
        if event.triggered:
            return
        for queue in (self._getters, self._putters):
            try:
                queue.remove(event)
                return
            except ValueError:
                continue

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move waiting put()s into the buffer while there is room.
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed()
                progress = True
            # Serve waiting get()s from the buffer.
            while self._getters and self.items:
                getter = self._getters.popleft()
                getter.succeed(self.items.popleft())
                progress = True


class PriorityStore(Store):
    """A store whose items are retrieved smallest-first.

    Items must be orderable; use ``(priority, seq, payload)`` tuples to keep
    FIFO order within a priority class.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self._heap) < self.capacity:
                putter = self._putters.popleft()
                heapq.heappush(self._heap, putter.item)
                putter.succeed()
                progress = True
            while self._getters and self._heap:
                getter = self._getters.popleft()
                getter.succeed(heapq.heappop(self._heap))
                progress = True

    def try_get(self) -> Optional[Any]:
        if not self._heap:
            return None
        item = heapq.heappop(self._heap)
        self._dispatch()
        return item


class ResourceRequest(SimEvent):
    """Event returned by :meth:`Resource.request`; fires when granted."""

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, resource: "Resource", priority: int, seq: int) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self._seq = seq

    def __lt__(self, other: "ResourceRequest") -> bool:
        return (self.priority, self._seq) < (other.priority, other._seq)

    # Support `with` semantics via explicit release.
    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Counted capacity with priority-FIFO queueing.

    Used for server CPUs (capacity = number of worker threads the paper's
    servlet engine would run) and as the building block of the steering lock.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._seq = 0
        self._queue: List[ResourceRequest] = []
        self._users: List[ResourceRequest] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0) -> ResourceRequest:
        """Ask for a slot.  Lower ``priority`` is served first."""
        self._seq += 1
        req = ResourceRequest(self, priority, self._seq)
        heapq.heappush(self._queue, req)
        self._grant()
        return req

    def release(self, request: ResourceRequest) -> None:
        """Give back a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            # Releasing an ungranted/cancelled request: drop it from queue.
            try:
                self._queue.remove(request)
                heapq.heapify(self._queue)
            except ValueError:
                raise SimulationError("release() of unknown request") from None
            return
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = heapq.heappop(self._queue)
            self._users.append(req)
            req.succeed()
