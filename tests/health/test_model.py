"""Unit + property tests for the hysteresis state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.health import (
    ComponentHealth,
    HealthModel,
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    STATUS_UNHEALTHY,
    STATUS_UNKNOWN,
)

DOWN_AFTER = 3
UP_AFTER = 2


def make(down_after=DOWN_AFTER, up_after=UP_AFTER):
    return ComponentHealth("server:x", down_after=down_after,
                           up_after=up_after)


class TestComponentHealth:
    def test_starts_unknown(self):
        assert make().status == STATUS_UNKNOWN

    def test_first_success_is_healthy(self):
        c = make()
        assert c.record_success(1.0) == STATUS_HEALTHY
        assert c.since == 1.0
        assert c.last_seen == 1.0

    def test_single_failure_degrades_but_not_down(self):
        c = make()
        c.record_success(1.0)
        assert c.record_failure(2.0) == STATUS_DEGRADED

    def test_degraded_recovers_on_one_success(self):
        c = make()
        c.record_success(1.0)
        c.record_failure(2.0)
        assert c.record_success(3.0) == STATUS_HEALTHY

    def test_down_after_consecutive_failures(self):
        c = make()
        c.record_success(1.0)
        for t in range(DOWN_AFTER - 1):
            assert c.record_failure(2.0 + t) != STATUS_UNHEALTHY
        assert c.record_failure(5.0) == STATUS_UNHEALTHY
        assert c.since == 5.0

    def test_recovery_needs_up_after_consecutive(self):
        c = make()
        c.record_success(1.0)
        for t in range(DOWN_AFTER):
            c.record_failure(2.0 + t)
        assert c.record_success(6.0) == STATUS_UNHEALTHY
        assert c.record_success(7.0) == STATUS_HEALTHY

    def test_failure_resets_recovery_streak(self):
        c = make()
        for t in range(DOWN_AFTER):
            c.record_failure(1.0 + t)
        c.record_success(5.0)
        c.record_failure(6.0)  # streak broken
        assert c.record_success(7.0) == STATUS_UNHEALTHY
        assert c.record_success(8.0) == STATUS_HEALTHY

    def test_transitions_recorded(self):
        c = make()
        c.record_success(1.0)
        for t in range(DOWN_AFTER):
            c.record_failure(2.0 + t)
        assert [(old, new) for _t, old, new in c.transitions] == [
            (STATUS_UNKNOWN, STATUS_HEALTHY),
            (STATUS_HEALTHY, STATUS_DEGRADED),
            (STATUS_DEGRADED, STATUS_UNHEALTHY),
        ]

    def test_thresholds_validated(self):
        import pytest
        with pytest.raises(ValueError):
            ComponentHealth("x", down_after=0)


# -- the no-flap property -----------------------------------------------------
#
# Under any interleaving whose failure runs are all shorter than
# ``down_after``, a healthy component never goes unhealthy; dually, success
# runs shorter than ``up_after`` never bring an unhealthy component back.

@settings(max_examples=200, deadline=None)
@given(runs=st.lists(st.integers(min_value=1, max_value=DOWN_AFTER - 1),
                     min_size=1, max_size=20))
def test_short_failure_runs_never_reach_unhealthy(runs):
    c = make()
    now = [0.0]

    def step(fn):
        now[0] += 1.0
        return fn(now[0])

    step(c.record_success)  # start healthy
    for run in runs:
        for _ in range(run):
            status = step(c.record_failure)
            assert status != STATUS_UNHEALTHY
        step(c.record_success)  # run ends before the threshold
        assert c.status == STATUS_HEALTHY


@settings(max_examples=200, deadline=None)
@given(runs=st.lists(st.integers(min_value=1, max_value=UP_AFTER - 1),
                     min_size=1, max_size=20))
def test_short_success_runs_never_leave_unhealthy(runs):
    c = make()
    now = [0.0]

    def step(fn):
        now[0] += 1.0
        return fn(now[0])

    for _ in range(DOWN_AFTER):
        step(c.record_failure)  # start unhealthy
    for run in runs:
        for _ in range(run):
            status = step(c.record_success)
            assert status == STATUS_UNHEALTHY
        step(c.record_failure)  # run ends before the threshold
        assert c.status == STATUS_UNHEALTHY


@settings(max_examples=100, deadline=None)
@given(obs=st.lists(st.booleans(), min_size=1, max_size=60))
def test_unhealthy_iff_streak_reached(obs):
    """Whatever the interleaving, the status is exactly the streak rule."""
    c = make()
    went_down = False
    ok_streak = fail_streak = 0
    for t, good in enumerate(obs):
        if good:
            c.record_success(float(t))
            ok_streak += 1
            fail_streak = 0
            if went_down and ok_streak >= UP_AFTER:
                went_down = False
        else:
            c.record_failure(float(t))
            fail_streak += 1
            ok_streak = 0
            if fail_streak >= DOWN_AFTER:
                went_down = True
        assert (c.status == STATUS_UNHEALTHY) == went_down


class TestHealthModel:
    def test_clock_stamps_transitions(self):
        now = [0.0]
        model = HealthModel(clock=lambda: now[0])
        now[0] = 2.5
        model.record_success("server:a")
        assert model.component("server:a").since == 2.5

    def test_status_of_unknown_component(self):
        model = HealthModel(clock=lambda: 0.0)
        assert model.status_of("server:ghost") == STATUS_UNKNOWN
        assert not model.is_unhealthy("server:ghost")

    def test_counts_and_snapshot(self):
        model = HealthModel(clock=lambda: 1.0)
        model.record_success("server:a")
        for _ in range(DOWN_AFTER):
            model.record_failure("server:b")
        counts = model.status_counts()
        assert counts[STATUS_HEALTHY] == 1
        assert counts[STATUS_UNHEALTHY] == 1
        snap = model.snapshot()
        assert snap["components"]["server:b"]["status"] == STATUS_UNHEALTHY

    def test_detection_latency(self):
        now = [0.0]
        model = HealthModel(clock=lambda: now[0])
        model.record_success("server:b")
        for t in (10.0, 10.5, 11.0):
            now[0] = t
            model.record_failure("server:b")
        assert model.detection_latency("server:b", 10.0) == 1.0
        assert model.detection_latency("server:b", 12.0) is None
        assert model.detection_latency("server:ghost", 0.0) is None

    def test_forget(self):
        model = HealthModel(clock=lambda: 0.0)
        model.record_success("app:x")
        model.forget("app:x")
        assert model.components() == []
