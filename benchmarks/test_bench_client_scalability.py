"""E2 — §6.1: "the middleware was able to support 20 simultaneous clients.
As we increased the number of simultaneous clients beyond 20, we noticed
degradation in performance."

Sweep the number of HTTP polling clients against one server and measure
client-visible poll round-trip time.  The shape to reproduce: flat RTT up
to ~20 clients, then clear degradation.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import run_client_scalability

SWEEP = (5, 10, 15, 20, 25, 30, 40)
DURATION = 20.0


def test_bench_e2_client_scalability(benchmark):
    rows = run_once(benchmark, lambda: [
        run_client_scalability(n, duration=DURATION) for n in SWEEP])
    baseline = rows[0]["mean_rtt_ms"]
    for r in rows:
        r["slowdown"] = r["mean_rtt_ms"] / baseline
    print_experiment(
        "E2: simultaneous HTTP clients per server",
        "20 simultaneous clients supported; beyond 20, degradation",
        rows,
        ["n_clients", "mean_rtt_ms", "p90_rtt_ms", "p99_rtt_ms", "polls",
         "slowdown"],
        finding=_finding(rows, baseline),
    )
    by_n = {r["n_clients"]: r for r in rows}
    # up to 20 clients: RTT within 1.5x of the 5-client baseline
    assert by_n[20]["mean_rtt_ms"] < 1.5 * baseline
    # beyond 20: visible degradation (the paper's observation)
    assert by_n[30]["mean_rtt_ms"] > 2.0 * baseline
    assert by_n[40]["mean_rtt_ms"] > by_n[30]["mean_rtt_ms"]


def _finding(rows, baseline) -> str:
    knee = None
    for r in rows:
        if r["mean_rtt_ms"] > 2.0 * baseline:
            knee = r["n_clients"]
            break
    return (f"RTT flat through 20 clients; degradation first visible at "
            f"{knee} clients (paper: beyond 20)")
