"""The shared error envelope: identical payload shapes on every plane."""

from repro import AppConfig, PortalError, build_single_server
from repro.apps import SyntheticApp
from repro.core.collaboration import CollaborationError
from repro.core.locking import LockError
from repro.core.security import SecurityError
from repro.net import Network
from repro.orb import Orb, OrbError, RemoteException
from repro.pipeline.core import PLANE_CHANNEL, PLANE_HTTP, PLANE_ORB
from repro.sim import Simulator
from repro.web import HttpClient, HttpError, Servlet, ServletContainer
from tests.conftest import drive


class RaisingServlet(Servlet):
    """Raises whatever exception the query names."""

    EXCEPTIONS = {
        "security": SecurityError("no access"),
        "lock": LockError("lock held"),
        "collab": CollaborationError("unknown client"),
        "orb": OrbError("peer down"),
        "key": KeyError("client_id"),
        "value": ValueError("not a number"),
        "other": RuntimeError("servlet exploded"),
    }

    def do_get(self, request, session):
        raise self.EXCEPTIONS[request.params["kind"]]


def make_site():
    sim = Simulator()
    net = Network(sim)
    net.add_host("www")
    net.add_host("browser")
    net.add_link("www", "browser", 0.001)
    container = ServletContainer(net.hosts["www"])
    container.mount("/raise", RaisingServlet())
    client = HttpClient(net.hosts["browser"], "www")
    return sim, container, client


def fetch(sim, client, kind):
    def go():
        try:
            yield from client.get("/raise", {"kind": kind})
        except HttpError as exc:
            return exc.status, exc.body

    return drive(sim, go())


def test_http_envelope_statuses_and_payload_shape():
    sim, container, client = make_site()
    expected = {
        "security": (403, "no access"),
        "lock": (409, "lock held"),
        "collab": (404, "unknown client"),
        "orb": (500, "peer failure: peer down"),
        "key": (400, "missing parameter 'client_id'"),
        "value": (400, "bad parameters: not a number"),
        "other": (500, "RuntimeError: servlet exploded"),
    }
    for kind, (status, message) in expected.items():
        got_status, body = fetch(sim, client, kind)
        assert got_status == status, kind
        # every error, on every path, has the exact same payload shape
        assert set(body) == {"error"}, kind
        assert body["error"] == message, kind


def test_denied_acl_same_error_type_on_http_and_orb_planes():
    """Satellite regression: one SecurityError class on both request planes.

    bob may read ``shared`` (so his login succeeds) but has no entry on
    ``private``'s ACL.  Selecting it over HTTP must 403 with the same
    exception type the ORB plane reports when the CorbaProxy denies the
    equivalent ``get_interface`` call.
    """
    collab = build_single_server()
    collab.run_bootstrap()
    cfg = AppConfig(steps_per_phase=2, step_time=0.01,
                    interaction_window=0.05)
    collab.add_app(0, SyntheticApp, "shared",
                   acl={"alice": "write", "bob": "read"}, config=cfg)
    private = collab.add_app(0, SyntheticApp, "private",
                             acl={"alice": "write"}, config=cfg)
    collab.sim.run(until=2.0)
    server = collab.server_of(0)
    portal = collab.add_portal(0)

    def http_side():
        yield from portal.login("bob")
        try:
            yield from portal.open(private.app_id)
        except PortalError as exc:
            return exc.status

    assert drive(collab.sim, http_side()) == 403

    # Same denial over the ORB plane: a raw invocation of the app's
    # CorbaProxy servant (what a peer server would relay).
    client_host = collab.domains[0].client_hosts[-1]
    corb = Orb(client_host)
    ref = server.corba_proxy_refs[private.app_id]

    def orb_side():
        try:
            yield from corb.invoke(ref, "get_interface", "bob")
        except RemoteException as exc:
            return exc.exc_type

    assert drive(collab.sim, orb_side()) == "SecurityError"

    # both planes recorded the identical error type in the shared metrics
    metrics = server.pipeline_metrics
    assert metrics.error_types(PLANE_HTTP).get("SecurityError", 0) >= 1
    assert metrics.error_types(PLANE_ORB).get("SecurityError", 0) >= 1


def test_channel_register_rejection_is_enveloped():
    """A bad app token yields the envelope's negative ack — the daemon
    neither dies nor consumes an application id."""
    collab = build_single_server()
    collab.run_bootstrap()
    server = collab.server_of(0)
    server.security.app_tokens["impostor"] = "the-real-token"
    app = collab.add_app(0, SyntheticApp, "impostor", acl={"u": "write"},
                         config=AppConfig(register_timeout=5.0),
                         auth_token="wrong-token")
    collab.sim.run(until=8.0)
    assert not app.registered
    assert server.local_proxies == {}
    assert server.daemon.next_app_id().endswith("#a1")  # id not consumed
    assert server.pipeline_metrics.error_types(
        PLANE_CHANNEL).get("SecurityError", 0) >= 1
