"""The DISCOVER interaction/collaboration server.

One :class:`DiscoverServer` per host composes every handler the paper names
(§4.1): a servlet container with the master / command / collaboration /
archival servlets, the daemon bridging local applications, the security
handler, the lock manager, and the ORB exposing the two middleware
interface levels (§5.1) so servers form a peer-to-peer network.

The hybrid architecture (§2.2): server-to-server is peer-to-peer over the
ORB; client-to-server stays client-server over HTTP, so "clients can access
the 'closest' server and have access to applications and services provided
by all the servers".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core import handlers
from repro.core.archival import SessionArchive
from repro.core.collaboration import (
    CollaborationError,
    CollaborationManager,
)
from repro.core.corba import CorbaProxyServant, DiscoverCorbaServerServant
from repro.core.daemon import DaemonService
from repro.core.database import Database
from repro.core.locking import LockError, LockManager
from repro.core.policies import PolicyManager
from repro.core.proxy import ApplicationProxy
from repro.core.security import (
    MUTATING_COMMANDS,
    SecurityError,
    SecurityManager,
)
from repro.core.interfaces import CORBA_PROXY, DISCOVER_CORBA_SERVER
from repro.federation import AppRouter, PeerRegistry, SubscriptionManager
from repro.health import HealthMonitor
from repro.metrics import (
    DirectoryMetrics,
    FederationMetrics,
    PipelineMetrics,
    StorageMetrics,
)
from repro.net.costs import CostModel
from repro.pipeline.core import PLANE_CHANNEL, PLANE_HTTP, PLANE_ORB, Pipeline
from repro.orb import ObjectRef, Orb, OrbError, ServiceOffer
from repro.orb.idl import validate_servant
from repro.storage import (
    DEFAULT_SNAPSHOT_EVERY,
    MemoryBackend,
    RecoveryReport,
    StateJournal,
    StorageBackend,
)
from repro.web import ServletContainer
from repro.wire import (
    CommandMessage,
    ControlMessage,
    LockMessage,
    Message,
    UpdateMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: trader service id every DISCOVER server registers under (§5.2.1)
SERVICE_ID = "DISCOVER"


class DiscoverServer:
    """A DISCOVER interaction and collaboration server on one host."""

    def __init__(self, host: "Host", *, domain: Optional[str] = None,
                 cost_model: Optional[CostModel] = None,
                 naming_ref: Optional[ObjectRef] = None,
                 trader_ref: Optional[ObjectRef] = None,
                 client_buffer_capacity: float = float("inf"),
                 peer_call_timeout: float = 30.0,
                 update_mode: str = "push",
                 update_poll_interval: float = 0.5,
                 remote_access: str = "relay",
                 http_port: int = 80,
                 tracer=None,
                 health_period: float = 0.5,
                 health_gossip_period: Optional[float] = None,
                 health_enabled: bool = True,
                 log_sink=None,
                 storage: Optional[StorageBackend] = None,
                 storage_snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
                 timeseries_bucket_width: float = 0.25,
                 ledger=None,
                 accounting_enabled: bool = True) -> None:
        self.host = host
        self.sim = host.sim
        self.name = host.name
        self.domain = domain or host.domain
        self.costs = cost_model or CostModel()
        self.naming_ref = naming_ref
        self.trader_ref = trader_ref
        #: optional sharded user/app directory (§6.3 scaled out); a
        #: :class:`repro.directory.DirectoryClient` attached by the
        #: deployment via :meth:`attach_directory` — when set, login is a
        #: single (sharded) directory lookup instead of a peer fan-out
        self.directory = None
        self.directory_metrics = DirectoryMetrics()
        #: how updates for remote apps reach this server: "push" (home
        #: server sends one message per subscribed peer, the default) or
        #: "poll" (this server polls the CorbaProxy — the paper's literal
        #: §5.2.3 description; ablation A4 compares them)
        if update_mode not in ("push", "poll"):
            raise ValueError(f"unknown update_mode {update_mode!r}")
        self.update_mode = update_mode
        self.update_poll_interval = update_poll_interval
        #: how clients reach remote applications: "relay" (this server
        #: forwards over CORBA — the paper's middleware path) or
        #: "redirect" (the §4.1 "request redirection" auxiliary service:
        #: the portal is told to connect to the home server directly)
        if remote_access not in ("relay", "redirect"):
            raise ValueError(f"unknown remote_access {remote_access!r}")
        self.remote_access = remote_access
        self._schedules: Dict[str, Any] = {}

        # -- time-series telemetry plane (§ DESIGN 4h) ----------------------
        #: sim-time metric streams every collector sinks into alongside
        #: its end-of-run snapshot; recording is zero-event bookkeeping
        #: (no sim events, no CPU charges, no wire bytes)
        from repro.obs import TimeSeriesRegistry
        self.timeseries = TimeSeriesRegistry(
            clock=lambda: self.sim.now,
            bucket_width=timeseries_bucket_width)
        self.directory_metrics.timeseries = self.timeseries

        # -- cost-attribution plane (§ DESIGN 4i) ---------------------------
        #: per-request resource accounting by (principal, app, plane,
        #: operation).  Deployments pass ONE shared ledger (the rollup key
        #: carries no server dimension, so fleet-wide attribution needs no
        #: merge); a standalone server creates its own.  Zero-event.
        from repro.obs import RequestCostLedger
        if not accounting_enabled:
            ledger = None  # overhead-bench control arm: no ledger at all
        elif ledger is None:
            ledger = RequestCostLedger(
                self.sim, bucket_width=timeseries_bucket_width)
        self.ledger = ledger

        # -- durable state plane (§ DESIGN 4g) ------------------------------
        #: WAL + snapshot journal every stateful plane writes through; the
        #: backend outlives this server object, so a replacement server
        #: handed the same backend rebuilds the planes via :meth:`recover`
        self.storage_metrics = StorageMetrics()
        self.storage_metrics.timeseries = self.timeseries
        self.storage_metrics.ledger = self.ledger
        self.journal = StateJournal(
            storage if storage is not None else MemoryBackend(),
            clock=lambda: self.sim.now,
            snapshot_every=storage_snapshot_every,
            metrics=self.storage_metrics)
        self.journal.timeseries = self.timeseries

        # -- components ---------------------------------------------------
        self.security = SecurityManager()
        self.locks = LockManager(on_grant=self._on_lock_grant,
                                 journal=self.journal)
        self.collab = CollaborationManager(
            self.sim, self.name, buffer_capacity=client_buffer_capacity,
            journal=self.journal)
        self.db = Database(journal=self.journal)
        self.archive = SessionArchive(self.sim, self.db)
        #: §6.3 resource accounting + access policies — enforced at every
        #: plane's front door by its pipeline's admission interceptor
        self.policies = PolicyManager()
        #: per-plane request counters/latencies shared by all three chains
        self.pipeline_metrics = PipelineMetrics()
        self.pipeline_metrics.timeseries = self.timeseries
        if tracer is None:
            # Standalone servers trace nothing; a disabled tracer keeps
            # the request paths free of None checks.  Deployments pass
            # one shared tracer so cross-server trees join up.
            from repro.obs import SAMPLE_OFF, Tracer
            tracer = Tracer(sampling=SAMPLE_OFF, clock=lambda: self.sim.now)
        self.tracer = tracer
        # spans minted during a request join its cost vector (zero-event)
        tracer.ledger = self.ledger
        #: structured JSONL event log (sim-time + trace-context stamped);
        #: replaces the old silent drops in the daemon/federation paths
        from repro.obs import StructuredLog
        self.log = StructuredLog(clock=lambda: self.sim.now,
                                 server=self.name, tracer=tracer,
                                 sink=log_sink)
        self.container = ServletContainer(
            host, port=http_port, cost_model=self.costs,
            pipeline=self._build_pipeline(PLANE_HTTP))
        self.daemon = DaemonService(
            self, pipeline=self._build_pipeline(PLANE_CHANNEL))
        self.orb = Orb(host, cost_model=self.costs,
                       pipeline=self._build_pipeline(PLANE_ORB),
                       tracer=tracer)

        # -- federation (the location-transparency layer, §4–5) ------------
        #: invalidation / subscription / staleness counters (repro.metrics)
        self.federation_metrics = FederationMetrics()
        self.federation_metrics.timeseries = self.timeseries
        self.registry = PeerRegistry(
            self.orb, self.name, trader_ref=trader_ref,
            service_id=SERVICE_ID, call_timeout=peer_call_timeout,
            metrics=self.federation_metrics)
        self.router = AppRouter(self, self.registry)
        self.subscriptions = SubscriptionManager(self)

        # -- health plane (heartbeats, SLO burn rates, fleet view) ----------
        #: the federation layer reports peer call outcomes here, and
        #: routing consults it to avoid unhealthy peers (one shared feed —
        #: the registry and the subscription manager no longer track
        #: liveness independently)
        self.health = HealthMonitor(
            self, period=health_period,
            gossip_period=health_gossip_period, enabled=health_enabled)
        self.registry.health = self.health
        self.registry.log = self.log

        # -- state -----------------------------------------------------------
        self.local_proxies: Dict[str, ApplicationProxy] = {}
        self.corba_proxy_refs: Dict[str, ObjectRef] = {}
        self.stats = {
            "updates_fanned": 0,
            "remote_update_pushes": 0,
            "commands_submitted": 0,
            "remote_commands_relayed": 0,
            "logins": 0,
        }
        #: optional LatencyRecorder; when set, the server records
        #: "update_lag" — virtual time from an application stamping an
        #: update to the server finishing its fan-out (the E1 metric)
        self.recorder = None

        # -- wiring ------------------------------------------------------------
        self.corba_servant = DiscoverCorbaServerServant(self)
        validate_servant(self.corba_servant, DISCOVER_CORBA_SERVER)
        self.corba_ref = self.orb.activate(
            self.corba_servant, key="DiscoverCorbaServer")
        handlers.mount_all(self)

        # -- durable plane registration (replay order = registration order:
        # the daemon's id sequence first, then records, proxies, sessions,
        # locks — matching the dependency order of live mutations) ---------
        self.journal.register_plane(
            "daemon", snapshot=self.daemon.seq_state,
            restore=self.daemon.restore_seq,
            apply=self.daemon.apply_seq_event)
        self.journal.register_plane(
            "db", snapshot=self.db.snapshot_state,
            restore=self.db.restore_state, apply=self.db.apply_event)
        self.journal.register_plane(
            "proxy", snapshot=self._proxy_plane_snapshot,
            restore=self._proxy_plane_restore, apply=self._proxy_plane_apply)
        self.journal.register_plane(
            "collab", snapshot=self.collab.snapshot_state,
            restore=self.collab.restore_state, apply=self.collab.apply_event)
        self.journal.register_plane(
            "locks", snapshot=self.locks.snapshot_state,
            restore=self.locks.restore_state, apply=self.locks.apply_event)

    # ------------------------------------------------------------------
    # peer network
    # ------------------------------------------------------------------
    def publish(self):
        """Generator: export this server's offer to the trader (§5.2.1)."""
        if self.trader_ref is None:
            return None
        offer = ServiceOffer(SERVICE_ID, self.corba_ref,
                             {"server": self.name, "domain": self.domain})
        return (yield from self.orb.invoke(
            self.trader_ref, "export", offer, timeout=self.peer_call_timeout))

    @property
    def peers(self) -> Dict[str, ObjectRef]:
        """Peer server name → level-one reference (the registry's view)."""
        return self.registry.peers

    @property
    def peer_call_timeout(self) -> float:
        """Timeout for peer-network calls (owned by the registry; stubs
        created after a change pick up the new value)."""
        return self.registry.call_timeout

    @peer_call_timeout.setter
    def peer_call_timeout(self, value: float) -> None:
        self.registry.call_timeout = value

    def discover_peers(self):
        """Generator: find every other DISCOVER server via the trader."""
        return (yield from self.registry.discover_peers())

    def add_peer(self, name: str, ref: ObjectRef) -> None:
        """Static peer wiring (tests / fixed deployments)."""
        self.registry.add_peer(name, ref)

    # ------------------------------------------------------------------
    # application-side events (invoked by the daemon)
    # ------------------------------------------------------------------
    def on_app_register(self, proxy: ApplicationProxy) -> None:
        self._install_proxy(proxy)
        self.journal.append("proxy.register", proxy.descriptor())

    def _install_proxy(self, proxy: ApplicationProxy) -> None:
        """Wire one application proxy into every plane (register + recover)."""
        self.local_proxies[proxy.app_id] = proxy
        self.security.register_app_acl(proxy.app_id, proxy.acl)
        servant = CorbaProxyServant(self, proxy.app_id)
        validate_servant(servant, CORBA_PROXY)
        ref = self.orb.activate(servant, key=f"CorbaProxy/{proxy.app_id}")
        self.corba_proxy_refs[proxy.app_id] = ref
        if not proxy.active:
            return  # recovered-but-stopped app: queryable, never announced
        # Bind in the network-wide naming service (asynchronously —
        # registration must not block on a WAN round trip).
        if self.naming_ref is not None:
            self.sim.spawn(self._bind_app(proxy.app_id, ref),
                           name=f"bind-{proxy.app_id}")
        # Publish users to the directory plane, if deployed (§6.3).
        if self.directory is not None:
            self.sim.spawn(self._publish_app_to_directory(proxy),
                           name=f"dir-{proxy.app_id}")

    def _restore_proxy(self, desc: dict, active: bool = True,
                       remote_subscribers=()) -> ApplicationProxy:
        """Rebuild a proxy from its journaled descriptor (recovery path).

        Runtime state (phase, pending commands, update ring) starts fresh;
        the application's next phase/update events repopulate it.
        """
        proxy = ApplicationProxy(
            desc["app_id"], desc["app_name"], desc["interface"],
            desc["acl"], app_host=desc["app_host"],
            app_port=desc["app_port"], owner=desc["owner"],
            forward=self.daemon.forward_command)
        proxy.active = active
        proxy.remote_subscribers = set(remote_subscribers)
        self._install_proxy(proxy)
        return proxy

    # -- proxy plane hooks (durable state plane) ------------------------
    def _proxy_plane_snapshot(self) -> list:
        return [{"descriptor": p.descriptor(), "active": p.active,
                 "remote_subscribers": sorted(p.remote_subscribers)}
                for p in self.local_proxies.values()]

    def _proxy_plane_restore(self, state: list) -> None:
        for doc in state:
            self._restore_proxy(doc["descriptor"],
                                active=doc.get("active", True),
                                remote_subscribers=doc.get(
                                    "remote_subscribers", ()))

    def _proxy_plane_apply(self, event: str, data: dict, at: float) -> None:
        if event == "register":
            self._restore_proxy(data)
            return
        proxy = self.local_proxies.get(data.get("app_id"))
        if proxy is None:
            return
        if event == "stop":
            proxy.mark_stopped()
        elif event == "peer_sub":
            proxy.subscribe_server(data["server"])
        elif event == "peer_unsub":
            proxy.unsubscribe_server(data["server"])

    def _bind_app(self, app_id: str, ref: ObjectRef):
        try:
            yield from self.orb.invoke(self.naming_ref, "rebind", app_id, ref,
                                       timeout=self.peer_call_timeout)
        except OrbError:  # naming down: discovery degrades, serving works
            pass

    def _publish_app_to_directory(self, proxy: ApplicationProxy):
        try:
            yield from self.directory.publish_app(
                proxy.app_id, self.name, proxy.app_name, proxy.acl)
        except OrbError:  # directory down: login falls back to fan-out
            pass

    def on_app_update(self, msg: UpdateMessage) -> None:
        proxy = self.local_proxies.get(msg.app_id)
        if proxy is None:
            return
        proxy.on_update(msg)
        # archive on the application log (owner's record, ACL as readers)
        self.archive.log_app_record(
            msg.app_id, proxy.owner, "update",
            {"seq": msg.seq, "timestamp": msg.timestamp},
            readers=list(proxy.acl))
        self._charge_async(self.costs.log_append_cost)
        # local fan-out
        self.stats["updates_fanned"] += self.collab.broadcast_update(
            msg.app_id, msg)
        # one push per subscribed remote server (§5.2.3)
        for peer in proxy.remote_subscribers:
            if self.registry.push_update(peer, msg.app_id, msg):
                self.stats["remote_update_pushes"] += 1
        if self.recorder is not None:
            self.recorder.record("update_lag", self.sim.now - msg.timestamp)

    def on_app_response(self, msg: Message) -> None:
        proxy = self.local_proxies.get(msg.app_id)
        if proxy is not None:
            self.archive.log_app_record(
                msg.app_id, proxy.owner, "response",
                {"request_id": getattr(msg, "request_id", None)},
                readers=list(proxy.acl))
            self._charge_async(self.costs.log_append_cost)
        client_id = msg.client_id
        if client_id is None:
            return
        if self.collab.owner_server(client_id) == self.name:
            self.collab.deliver_response(client_id, msg, app_id=msg.app_id)
        else:
            self._push_remote_client(client_id, msg)

    def on_app_phase(self, app_id: str, phase: str) -> None:
        proxy = self.local_proxies.get(app_id)
        if proxy is not None:
            proxy.on_phase(phase)

    def on_app_deregister(self, app_id: str) -> None:
        proxy = self.local_proxies.get(app_id)
        if proxy is None:
            return
        proxy.mark_stopped()
        self.journal.append("proxy.stop", {"app_id": app_id})
        if self.directory is not None:
            self.sim.spawn(self._withdraw_from_directory(app_id),
                           name=f"undir-{app_id}")
        note = ControlMessage("app_stopped", detail=app_id, app_id=app_id,
                              sender=self.name)
        self.collab.broadcast_update(app_id, note)
        for peer in proxy.remote_subscribers:
            self.registry.push_update(peer, app_id, note)
        self.router.forget(app_id)

    def on_peer_update(self, app_id: str, msg: Message) -> int:
        """A peer pushed an update for an application homed there (§5.2.3).

        An ``app_stopped`` notice invalidates every cached artifact for
        the application — the level-two stub/reference in the registry,
        the router's handle, and the subscription lifecycle state — so a
        later re-registration under a recycled identifier resolves fresh
        instead of hitting a dead servant.
        """
        if isinstance(msg, ControlMessage) and msg.event == "app_stopped":
            self.registry.invalidate_app(app_id)
            self.router.forget(app_id)
            self.subscriptions.forget(app_id)
        else:
            self.subscriptions.observe_update(app_id, msg)
        return self.collab.broadcast_update(app_id, msg)

    # ------------------------------------------------------------------
    # client operations (driven by the servlets)
    # ------------------------------------------------------------------
    def client_login(self, user: str, password: str = ""):
        """Generator: two-level login with network-wide application listing.

        Level one authenticates locally; then, per §5.2.2, the security
        handler authenticates the user with every peer server and collects
        the remote applications they may access.
        """
        yield from self.host.use_cpu(self.costs.ssl_handshake_cost
                                     + self.costs.auth_check_cost)
        known_locally = self.security.authenticate_user(user, password)
        remote_apps: Dict[str, dict] = {}
        if self.directory is not None:
            # §6.3's proposed GIS-style directory, scaled out: one sharded
            # lookup (with replica failover) replaces the peer fan-out.
            try:
                listings = yield from self.directory.lookup(user)
            except OrbError:
                listings = None
            if listings is not None:
                for summary in listings:
                    if summary["server"] != self.name:
                        remote_apps[summary["app_id"]] = summary
                return self._finish_login(user, known_locally, remote_apps)
        remote_apps = yield from self.registry.collect_remote_apps(user)
        return self._finish_login(user, known_locally, remote_apps)

    def _finish_login(self, user: str, known_locally: bool,
                      remote_apps: Dict[str, dict]) -> str:
        # §6.3: user-ids belong to applications, not servers — accept the
        # login if *any* server in the network vouches for the user.
        if not known_locally and not remote_apps:
            raise SecurityError(f"user {user!r} unknown in the network "
                                f"(via {self.name})")
        session = self.collab.create_session(user)
        session.remote_apps = remote_apps
        self.stats["logins"] += 1
        return session.client_id

    def client_logout(self, client_id: str) -> None:
        for sid in [s for s in self._schedules
                    if s.startswith(f"sched-{client_id}-")]:
            proc = self._schedules.pop(sid, None)
            if proc is not None and proc.is_alive:
                proc.interrupt("logout")
        self.locks.drop_client(client_id)
        session = self.collab.drop_session(client_id)
        if session is not None:
            # push mode: unsubscribe any remote app this was the last
            # local subscriber of, so its home server stops fanning out
            self.subscriptions.detach_idle(session.apps)

    def visible_apps(self, user: str) -> List[dict]:
        """Local applications ``user`` can access, with privileges."""
        out = []
        for app_id, priv in self.security.accessible_apps(user).items():
            proxy = self.local_proxies.get(app_id)
            if proxy is not None and proxy.active:
                summary = proxy.summary(priv)
                summary["server"] = self.name
                out.append(summary)
        return out

    def list_applications(self, client_id: str) -> List[dict]:
        """Everything this client can see: local + cached remote."""
        session = self.collab.session(client_id)
        local = self.visible_apps(session.user)
        remote = list(getattr(session, "remote_apps", {}).values())
        return local + remote

    def select_app(self, client_id: str, app_id: str):
        """Generator: second-level auth + subscription; returns the
        customized steering interface (§5.2.2).

        Location-transparent: the router resolves the application to a
        handle and the handle does the rest — a local security check, an
        ORB relay to the home server, or (``redirect`` remote-access mode)
        an instruction for the portal to go to the home server itself.
        """
        session = self.collab.session(client_id)
        handle = self.router.resolve_for(session, app_id)
        info = yield from handle.open(session.user)
        if "redirect" in info:
            return info  # the portal re-selects at the home server
        self.collab.subscribe(client_id, app_id)
        return info

    def submit_command(self, client_id: str, app_id: str, command: str,
                       args: Optional[dict] = None):
        """Generator: route a steering command to the application.

        Local applications go straight to the proxy; remote ones are
        relayed over the ORB to the home server (§5.1.1).  Returns the
        request id whose response will arrive on the client's poll stream.
        """
        session = self.collab.session(client_id)
        self.stats["commands_submitted"] += 1
        return (yield from self.router.resolve_for(session, app_id)
                .deliver_command(session, command, args or {}))

    def submit_local_command(self, user: str, client_id: str, app_id: str,
                             command: str, args: dict,
                             request_id: Optional[int] = None) -> int:
        """Authoritative command admission at the home server (plain call).

        Enforces the per-application ACL and — for mutating commands — the
        single-driver steering lock (§5.2.4).
        """
        with self.tracer.span("proxy.deliver_command", plane="proxy",
                              server=self.name,
                              attrs={"app_id": app_id, "command": command}):
            proxy = self._local_proxy(app_id)
            if not proxy.active:
                raise LockError(f"application {app_id!r} has stopped")
            self.security.authorize_command(user, app_id, command)
            if command in MUTATING_COMMANDS and not self.locks.holds(
                    app_id, client_id):
                raise LockError(
                    f"{client_id!r} must hold the steering lock on "
                    f"{app_id!r} to run {command!r}")
            cmd = CommandMessage(command, args, request_id=request_id,
                                 client_id=client_id, app_id=app_id,
                                 sender=self.name)
            self.archive.log_interaction(app_id, user, "command",
                                         {"command": command,
                                          "request_id": cmd.request_id},
                                         readers=list(proxy.acl))
            self._charge_async(self.costs.log_append_cost)
            proxy.deliver_command(cmd)
            return cmd.request_id

    # -- scheduled interactions (§2.1: "schedule automated periodic
    # interactions") ------------------------------------------------------
    def schedule_interaction(self, client_id: str, app_id: str,
                             command: str, args: Optional[dict] = None,
                             period: float = 1.0,
                             count: Optional[int] = None) -> str:
        """Issue ``command`` on the client's behalf every ``period``.

        Responses arrive on the client's ordinary poll stream.  The
        schedule ends after ``count`` firings (None = until cancelled,
        logout, or a failure — e.g. losing access or the app stopping).
        Returns the schedule id.
        """
        self.collab.session(client_id)  # validate
        if period <= 0:
            raise ValueError("period must be positive")
        schedule_id = f"sched-{client_id}-{len(self._schedules) + 1}"
        proc = self.sim.spawn(
            self._run_schedule(schedule_id, client_id, app_id, command,
                               dict(args or {}), period, count),
            name=schedule_id)
        self._schedules[schedule_id] = proc
        return schedule_id

    def cancel_schedule(self, client_id: str, schedule_id: str) -> bool:
        """Stop a schedule; returns False if it already ended."""
        if not schedule_id.startswith(f"sched-{client_id}-"):
            raise SecurityError(
                f"{client_id!r} does not own schedule {schedule_id!r}")
        proc = self._schedules.pop(schedule_id, None)
        if proc is None or not proc.is_alive:
            return False
        proc.interrupt("cancelled")
        return True

    def _run_schedule(self, schedule_id: str, client_id: str, app_id: str,
                      command: str, args: dict, period: float,
                      count: Optional[int]):
        from repro.sim import Interrupt
        fired = 0
        try:
            while count is None or fired < count:
                yield self.sim.timeout(period)
                try:
                    self.collab.session(client_id)
                except CollaborationError:
                    break  # client logged out
                try:
                    yield from self.submit_command(client_id, app_id,
                                                   command, args)
                except (SecurityError, LockError, OrbError) as exc:
                    # surface the failure on the poll stream and stop
                    from repro.wire import ErrorMessage
                    self.collab.push_to_client(
                        client_id,
                        ErrorMessage(0, f"schedule {schedule_id} stopped: "
                                        f"{exc}", code="SCHEDULE",
                                     app_id=app_id, client_id=client_id))
                    break
                fired += 1
        except Interrupt:
            pass
        finally:
            self._schedules.pop(schedule_id, None)

    # -- locks -----------------------------------------------------------
    def acquire_lock(self, client_id: str, app_id: str):
        """Generator: acquire the steering lock (relayed if remote)."""
        self.collab.session(client_id)  # validates
        return (yield from self.router.resolve(app_id)
                .acquire_lock(client_id))

    def release_lock(self, client_id: str, app_id: str):
        """Generator: release the steering lock (relayed if remote)."""
        return (yield from self.router.resolve(app_id)
                .release_lock(client_id))

    def lock_holder(self, app_id: str):
        """Generator: current lock holder (relayed if remote)."""
        return (yield from self.router.resolve(app_id).lock_holder())

    def _on_lock_grant(self, app_id: str, client_id: str) -> None:
        msg = LockMessage("granted", holder=client_id, app_id=app_id,
                          sender=self.name)
        self._route_to_client(client_id, msg)

    # -- collaboration -----------------------------------------------------
    def poll_client(self, client_id: str, max_items: int = 32) -> List[Message]:
        """Drain up to ``max_items`` from the client's FIFO buffer."""
        session = self.collab.session(client_id)
        out = []
        while len(out) < max_items:
            item = session.buffer.try_get()
            if item is None:
                break
            out.append(item)
        return out

    def publish_group(self, client_id: str, app_id: str, group: str,
                      msg: Message):
        """Generator: chat/whiteboard/shared-view to a collaboration group.

        Groups "can span multiple servers" (§5.2.3): the message is fanned
        out by the application's home server, one push per remote server.
        """
        self.collab.session(client_id)
        msg.app_id = app_id
        msg.client_id = client_id
        return (yield from self.router.resolve(app_id)
                .publish_group(group, msg, exclude=client_id))

    def publish_local_group(self, app_id: str, group: str, msg: Message,
                            exclude: Optional[str] = None) -> int:
        """Home-server fan-out of a group message (local + peer pushes)."""
        count = self.collab.broadcast_group(app_id, group, msg,
                                            exclude=exclude)
        proxy = self.local_proxies.get(app_id)
        if proxy is not None:
            for peer in proxy.remote_subscribers:
                self.registry.push_group_message(peer, app_id, group, msg,
                                                 exclude=exclude or "")
        return count

    # -- archival -------------------------------------------------------------
    def replay_interactions(self, client_id: str, app_id: str,
                            since: float = 0.0,
                            limit: Optional[int] = None):
        """Generator: a client's replayable interaction history (§5.2.5)."""
        session = self.collab.session(client_id)
        return (yield from self.router.resolve(app_id)
                .replay_interactions(session.user, since, limit))

    def replay_app_log(self, client_id: str, app_id: str,
                       since: float = 0.0, limit: Optional[int] = None):
        """Generator: the application's archived history."""
        session = self.collab.session(client_id)
        return (yield from self.router.resolve(app_id)
                .replay_app_log(session.user, since, limit))

    def latecomer_catchup(self, client_id: str, app_id: str, n: int = 20):
        """Generator: recent interactions for a late group joiner."""
        session = self.collab.session(client_id)
        return (yield from self.router.resolve(app_id)
                .latecomer_catchup(session.user, n))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _local_proxy(self, app_id: str) -> ApplicationProxy:
        proxy = self.local_proxies.get(app_id)
        if proxy is None:
            raise SecurityError(f"unknown application {app_id!r}")
        return proxy

    def _route_to_client(self, client_id: str, msg: Message) -> None:
        if self.collab.owner_server(client_id) == self.name:
            self.collab.push_to_client(client_id, msg)
        else:
            self._push_remote_client(client_id, msg)

    def _push_remote_client(self, client_id: str, msg: Message) -> None:
        owner = self.collab.owner_server(client_id)
        self.registry.push_to_client(owner, client_id, msg)

    def attach_directory(self, client) -> None:
        """Wire this server to the sharded directory plane (deployment
        calls this with a per-server ``DirectoryClient``)."""
        self.directory = client

    def _withdraw_from_directory(self, app_id: str):
        try:
            yield from self.directory.withdraw_app(app_id)
        except OrbError:
            pass

    def _build_pipeline(self, plane: str) -> Pipeline:
        """Assemble one plane's default interceptor chain: metrics → error
        envelope → tracing → accounting → security → admission → handler."""
        # Late import: repro.pipeline.interceptors imports this package.
        from repro.pipeline.interceptors import default_pipeline
        return default_pipeline(plane, clock=lambda: self.sim.now,
                                metrics=self.pipeline_metrics,
                                security=self.security,
                                policies=self.policies,
                                tracer=self.tracer, server=self.name,
                                accounting=self.ledger)

    def _charge_async(self, cost: float) -> None:
        """Account CPU work without blocking the calling dispatch path."""
        if cost > 0:
            self.sim.spawn(self.host.use_cpu(cost), name="async-cpu")

    def recover(self) -> RecoveryReport:
        """Rebuild every stateful plane from the backend's snapshot + WAL
        tail (a restarted server's first call, before it serves traffic)."""
        report = self.journal.recover()
        self.log.event("server.recovered",
                       snapshot_lsn=report.snapshot_lsn,
                       last_lsn=report.last_lsn,
                       replayed=report.replayed,
                       planes=dict(report.planes))
        return report

    def metrics_registry(self):
        """This server's own snapshot surface (the ``/status`` servlet's
        data source; deployments aggregate across servers instead)."""
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        registry.register(f"pipeline[{self.name}]", self.pipeline_metrics)
        registry.register(f"federation[{self.name}]",
                          self.federation_metrics)
        registry.register(f"directory[{self.name}]", self.directory_metrics)
        registry.register(f"storage[{self.name}]", self.storage_metrics)
        registry.register(f"health[{self.name}]", self.health)
        registry.register(f"log[{self.name}]", self.log)
        registry.register(f"timeseries[{self.name}]", self.timeseries)
        if self.ledger is not None:
            registry.register(f"costs[{self.name}]", self.ledger)
        return registry

    def stop(self) -> None:
        """Shut down every component (end of scenario)."""
        self.health.stop()
        self.container.stop()
        self.daemon.stop()
        self.orb.shutdown()

    def shutdown(self):
        """Generator: graceful shutdown — notify subscribed peers that
        every local application stopped, withdraw this server's users from
        the central directory in one call (§6.3), then stop serving."""
        for app_id, proxy in list(self.local_proxies.items()):
            proxy.mark_stopped()
            note = ControlMessage("app_stopped", detail=app_id,
                                  app_id=app_id, sender=self.name)
            self.collab.broadcast_update(app_id, note)
            for peer in proxy.remote_subscribers:
                self.registry.push_update(peer, app_id, note)
            self.router.forget(app_id)
        if self.directory is not None:
            try:
                yield from self.directory.withdraw_server(self.name)
            except OrbError:
                pass  # directory down: stale entries age out on lookup
        self.stop()
