"""The time-series telemetry store: log-bucket histograms, tiered
retention, range queries, and exact fleet-wide merges."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import TimeSeriesRegistry, to_chrome_counters
from repro.obs.timeseries import BUCKETS_PER_OCTAVE, LogHistogram, TimeSeries

#: one log bucket spans a 2^(1/8) ratio, so any boundary readout is
#: within this factor of the exact sample value
GROWTH = 2.0 ** (1.0 / BUCKETS_PER_OCTAVE)


def hist_key(h):
    """Everything exact about a histogram (total is a float sum, whose
    last ulp can depend on merge order — deliberately excluded)."""
    return (h.count, h.zero, h.minimum, h.maximum,
            tuple(sorted(h.buckets.items())))


class TestLogHistogram:
    def test_exact_aggregates(self):
        h = LogHistogram()
        values = [0.001, 0.5, 2.0, 2.0, 150.0]
        for v in values:
            h.add(v)
        assert h.count == 5
        assert h.total == pytest.approx(sum(values))
        assert h.minimum == 0.001
        assert h.maximum == 150.0
        assert h.mean == pytest.approx(sum(values) / 5)

    def test_zero_and_negative_land_in_zero_bucket(self):
        h = LogHistogram()
        h.add(0.0)
        h.add(-3.0)
        h.add(1.0)
        assert h.zero == 2
        assert h.quantile(0.5) == 0.0  # rank 2 of 3 is in the zero bucket
        assert h.minimum == -3.0

    def test_quantile_within_one_bucket_of_truth(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        h = LogHistogram()
        for v in values:
            h.add(v)
        values.sort()
        for q in (0.50, 0.90, 0.99):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            approx = h.quantile(q)
            assert exact / GROWTH <= approx <= exact * GROWTH

    def test_quantile_clamped_to_extrema(self):
        h = LogHistogram()
        h.add(10.0)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 10.0
        assert LogHistogram().quantile(0.5) == 0.0

    def test_merge_identity_200_servers(self):
        """Merged quantiles are identical to one combined histogram —
        the E13 fleet-aggregation guarantee, for 200 per-server streams
        merged in any order."""
        rng = random.Random(13)
        per_server = [[rng.expovariate(1.0 / 0.05) for _ in range(50)]
                      for _ in range(200)]
        combined = LogHistogram()
        for values in per_server:
            for v in values:
                combined.add(v)
        hists = []
        for values in per_server:
            h = LogHistogram()
            for v in values:
                h.add(v)
            hists.append(h)
        rng.shuffle(hists)
        merged = LogHistogram()
        for h in hists:
            merged.merge(h)
        assert hist_key(merged) == hist_key(combined)
        for q in (0.5, 0.9, 0.99, 0.999):
            assert merged.quantile(q) == combined.quantile(q)

    def test_merge_keeps_max_exemplar(self):
        a, b = LogHistogram(), LogHistogram()
        a.add(1.0, exemplar=3)
        b.add(1.0, exemplar=9)
        ab = a.copy().merge(b)
        ba = b.copy().merge(a)
        assert hist_key(ab) == hist_key(ba)
        index = LogHistogram.bucket_index(1.0)
        assert ab.exemplars[index] == ba.exemplars[index] == 9

    def test_cumulative_ends_at_inf_total(self):
        h = LogHistogram()
        for v in (0.0, 0.1, 0.2, 5.0):
            h.add(v)
        pairs = h.cumulative()
        assert pairs[0] == (0.0, 1)  # the zero bucket
        assert pairs[-1] == (math.inf, 4)
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)

    def test_dict_round_trip(self):
        h = LogHistogram()
        for i, v in enumerate((0.0, 0.5, 1.5, 20.0)):
            h.add(v, exemplar=i)
        back = LogHistogram.from_dict(h.to_dict())
        assert hist_key(back) == hist_key(h)
        assert back.total == h.total
        assert back.exemplars == h.exemplars


@given(st.lists(st.floats(min_value=1e-9, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200),
       st.integers(min_value=2, max_value=5))
@settings(max_examples=50, deadline=None)
def test_merge_partition_invariance(values, n_parts):
    """Any partition of the sample stream merges back to the same
    histogram (hypothesis over values and split count)."""
    combined = LogHistogram()
    for v in values:
        combined.add(v)
    parts = [LogHistogram() for _ in range(n_parts)]
    for i, v in enumerate(values):
        parts[i % n_parts].add(v)
    merged = LogHistogram()
    for part in reversed(parts):
        merged.merge(part)
    assert hist_key(merged) == hist_key(combined)
    assert merged.quantile(0.99) == combined.quantile(0.99)


class TestTimeSeriesRetention:
    def test_counter_sum_survives_downsampling(self):
        # 100 tier-0 buckets against a 16-bucket ring: eviction must fold
        # them upward without losing a single count (total tier capacity
        # 16 * (1+2+4+8) = 240 bucket widths, so nothing falls off)
        series = TimeSeries("c", "counter", width=1.0, max_buckets=16,
                            n_tiers=4)
        for t in range(100):
            series.inc(float(t), 2.0)
        total = sum(v for _, _, v in
                    series.buckets_between(-math.inf, math.inf))
        assert total == 200.0
        # retention stays bounded per tier, and downsampling happened
        assert all(len(tier) <= 16 for tier in series.tiers)
        assert any(series.tiers[t] for t in range(1, 4))

    def test_tiers_are_time_disjoint(self):
        series = TimeSeries("c", "counter", width=1.0, max_buckets=8,
                            n_tiers=3)
        for t in range(200):
            series.inc(float(t))
        spans = [(t0, t0 + w) for t0, w, _ in
                 series.buckets_between(-math.inf, math.inf)]
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_histogram_count_survives_downsampling(self):
        series = TimeSeries("h", "histogram", width=1.0, max_buckets=8,
                            n_tiers=5)
        for t in range(100):
            series.observe(float(t), 0.01 * (1 + t % 7))
        merged = series.merged_histogram(-math.inf, math.inf)
        assert merged.count == 100
        assert merged.maximum == 0.07
        assert any(series.tiers[t] for t in range(1, 5))

    def test_gauge_downsample_keeps_latest_child(self):
        series = TimeSeries("g", "gauge", width=1.0, max_buckets=4,
                            n_tiers=2)
        for t in range(20):
            series.set(float(t), float(t))
        buckets = series.buckets_between(-math.inf, math.inf)
        # every retained parent bucket carries its later child's value
        for t0, w, value in buckets:
            if w == 2.0:
                assert value == t0 + 1.0

    def test_beyond_coarsest_tier_drops(self):
        series = TimeSeries("c", "counter", width=1.0, max_buckets=2,
                            n_tiers=2)
        for t in range(100):
            series.inc(float(t))
        assert len(series.tiers) == 2
        assert all(len(tier) <= 2 for tier in series.tiers)


class TestRegistryQueries:
    def make(self, width=1.0):
        clock = {"now": 0.0}
        reg = TimeSeriesRegistry(clock=lambda: clock["now"],
                                 bucket_width=width)
        return reg, clock

    def test_counter_points_sum_rate(self):
        reg, clock = self.make()
        for now in (0.0, 0.5, 1.0, 2.25):
            clock["now"] = now
            reg.inc("reqs")
        points = reg.query("reqs", "points")
        assert [(p["t"], p["value"]) for p in points] == [
            (0.0, 2.0), (1.0, 1.0), (2.0, 1.0)]
        assert reg.query("reqs", "sum") == 4.0
        assert reg.query("reqs", "sum", start=1.0) == 2.0
        assert reg.query("reqs", "rate", start=0.0, end=4.0) == 1.0
        assert reg.query("reqs", "instant") == 1.0

    def test_histogram_quantile_and_instant(self):
        reg, clock = self.make()
        for i in range(100):
            clock["now"] = i * 0.1
            reg.observe("lat", 0.010 if i < 99 else 1.0)
        q99 = reg.query("lat", "quantile", q=0.99)
        assert 0.010 / GROWTH <= q99 <= 0.010 * GROWTH
        assert reg.query("lat", "quantile", q=1.0) == 1.0
        points = reg.query("lat", "points", q=0.5)
        assert sum(p["count"] for p in points) == 100

    def test_gauge_instant_is_latest(self):
        reg, clock = self.make()
        reg.set_gauge("healthy", 3)
        clock["now"] = 5.0
        reg.set_gauge("healthy", 2)
        assert reg.query("healthy", "instant") == 2

    def test_unknown_series_and_bad_fn(self):
        reg, _ = self.make()
        with pytest.raises(KeyError):
            reg.query("nope")
        reg.inc("c")
        with pytest.raises(ValueError):
            reg.query("c", "quantile")
        with pytest.raises(ValueError):
            reg.query("c", "median")
        with pytest.raises(ValueError):
            reg.observe("c", 1.0)  # kind mismatch
        assert reg.window_sum("nope", 0.0) == 0.0

    def test_window_sum_is_strict(self):
        reg, clock = self.make(width=0.25)
        for now in (0.25, 0.5, 0.75):
            clock["now"] = now
            reg.inc("c")
        assert reg.window_sum("c", 0.25) == 2.0  # bucket at 0.25 excluded
        assert reg.window_sum("c", 0.0) == 3.0

    def test_exemplars_surface_through_registry(self):
        reg, clock = self.make()
        reg.observe("lat", 0.05, exemplar="span-1")
        clock["now"] = 3.0
        reg.observe("lat", 0.05, exemplar="span-9")
        assert reg.histogram_exemplars("lat") == ["span-9"]
        assert reg.histogram_exemplars("missing") == []


class TestFleetMerge:
    def test_merged_equals_single_recorder(self):
        rng = random.Random(29)
        clock = {"now": 0.0}
        servers = [TimeSeriesRegistry(clock=lambda: clock["now"],
                                      bucket_width=1.0) for _ in range(20)]
        single = TimeSeriesRegistry(clock=lambda: clock["now"],
                                    bucket_width=1.0)
        for _ in range(2000):
            clock["now"] = rng.uniform(0.0, 50.0)
            server = rng.choice(servers)
            v = rng.expovariate(10.0)
            server.inc("reqs")
            server.observe("lat", v)
            single.inc("reqs")
            single.observe("lat", v)
        clock["now"] = 50.0
        merged = TimeSeriesRegistry.merged(servers)
        assert merged.names() == single.names()
        assert merged.query("reqs", "sum") == single.query("reqs", "sum")
        for q in (0.5, 0.9, 0.99):
            assert (merged.query("lat", "quantile", q=q)
                    == single.query("lat", "quantile", q=q))
        assert (merged.histogram_summary("lat")["count"]
                == single.histogram_summary("lat")["count"])

    def test_merge_rejects_mismatched_series(self):
        a = TimeSeriesRegistry(bucket_width=1.0)
        b = TimeSeriesRegistry(bucket_width=0.5)
        a.inc("c")
        b.inc("c")
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_merge_does_not_alias_source_histograms(self):
        a = TimeSeriesRegistry(bucket_width=1.0)
        a.observe("lat", 0.1)
        merged = TimeSeriesRegistry.merged([a])
        merged.observe("lat", 9.0)
        assert a.histogram_summary("lat")["count"] == 1


class TestSerialization:
    def test_registry_round_trip_is_exact(self):
        clock = {"now": 0.0}
        reg = TimeSeriesRegistry(clock=lambda: clock["now"],
                                 bucket_width=0.5)
        for i in range(50):
            clock["now"] = i * 0.3
            reg.inc("reqs")
            reg.observe("lat", 0.01 * (1 + i % 5), exemplar=i)
            reg.set_gauge("healthy", i % 3)
        doc = reg.to_dict()
        reloaded = TimeSeriesRegistry.from_dict(doc)
        assert reloaded.to_dict() == doc
        assert reloaded.names() == reg.names()
        assert (reloaded.query("lat", "quantile", q=0.99)
                == reg.query("lat", "quantile", q=0.99))
        assert reloaded.snapshot() == reg.snapshot()

    def test_chrome_counter_export(self):
        reg = TimeSeriesRegistry(bucket_width=1.0)
        reg.inc("reqs", 3)
        reg.observe("lat", 0.25)
        events = to_chrome_counters(reg, scale=1e6)
        assert all(e["ph"] == "C" for e in events)
        by_name = {e["name"]: e for e in events}
        assert by_name["reqs"]["args"] == {"value": 3.0}
        assert by_name["lat"]["args"]["count"] == 1
        assert by_name["reqs"]["ts"] == 0.0
