"""A broadcast to N subscribers walks/sizes the payload exactly once.

This pins the tentpole perf property: ``push_to_client`` freezes the
update's wire size before fan-out, so the N poll responses it later
rides in hit the memo instead of re-walking the payload.  A counting
hook on the object-sizing walk proves it, and byte accounting stays
bit-for-bit identical to a fresh encode.
"""

from __future__ import annotations

import copy
from collections import Counter

import numpy as np
import pytest

from repro.core.collaboration import CollaborationManager
from repro.sim import Simulator
from repro.web.http import HttpResponse
from repro.wire import (
    UpdateMessage,
    encode,
    encoded_size,
    set_object_walk_hook,
)


@pytest.fixture
def walk_counts():
    counts: Counter = Counter()
    previous = set_object_walk_hook(
        lambda obj: counts.update([id(obj)]) if isinstance(obj, UpdateMessage)
        else None)
    yield counts
    set_object_walk_hook(previous)


def test_broadcast_sizes_payload_exactly_once(walk_counts):
    n_subscribers = 8
    sim = Simulator()
    mgr = CollaborationManager(sim, "srv")
    sessions = []
    for _ in range(n_subscribers):
        s = mgr.create_session("bench")
        mgr.subscribe(s.client_id, "app-1")
        sessions.append(s)

    grid = np.arange(16 * 16, dtype=np.float64).reshape(16, 16)
    msg = UpdateMessage(payload={"grid": grid, "seq": 7}, seq=7,
                        timestamp=1.0, app_id="app-1")
    assert mgr.broadcast_update("app-1", msg) == n_subscribers
    assert walk_counts[id(msg)] == 1  # frozen on first push only

    # Every subscriber polls; the update rides in N distinct responses
    # but is never re-walked.
    sizes = []
    for i, s in enumerate(sessions):
        polled = s.buffer.try_get()
        assert polled is msg  # by-reference delivery, no copies
        sizes.append(encoded_size(HttpResponse(i, body=[polled])))
    assert walk_counts[id(msg)] == 1
    assert len(set(sizes)) == 1  # identical accounting per subscriber

    # Byte accounting is unchanged: the memoized size equals the length
    # of a fresh encode of an identical (unfrozen) message.
    clone = copy.deepcopy(msg)
    assert encoded_size(msg) == len(encode(clone))
    resp = HttpResponse(0, body=[msg])
    assert encoded_size(resp) == len(encode(copy.deepcopy(resp)))


def test_distinct_updates_each_walked_once(walk_counts):
    sim = Simulator()
    mgr = CollaborationManager(sim, "srv")
    sessions = [mgr.create_session("bench") for _ in range(5)]
    for s in sessions:
        mgr.subscribe(s.client_id, "app-1")

    msgs = [UpdateMessage(payload={"seq": i}, seq=i) for i in range(10)]
    for m in msgs:
        mgr.broadcast_update("app-1", m)
    for s in sessions:
        while (item := s.buffer.try_get()) is not None:
            encoded_size(HttpResponse(0, body=[item]))
    assert all(walk_counts[id(m)] == 1 for m in msgs)
