"""Round-trip and error tests for the wire serializer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import SerializationError, decode, encode, encoded_size
from repro.wire.serialize import register_codec


@pytest.mark.parametrize("value", [
    None,
    True,
    False,
    0,
    -1,
    2 ** 62,
    -(2 ** 62),
    2 ** 100,             # bigint path
    -(2 ** 100),
    3.14159,
    float("inf"),
    "",
    "hello",
    "ünïcødé ✓",
    b"",
    b"\x00\xff raw",
    [],
    [1, 2, 3],
    (),
    (1, "two", 3.0),
    {},
    {"a": 1, "b": [True, None]},
    [[1, [2, [3]]]],
    {"nested": {"deep": {"deeper": (1, b"x")}}},
])
def test_roundtrip_scalars_and_containers(value):
    assert decode(encode(value)) == value


def test_roundtrip_preserves_types():
    assert isinstance(decode(encode((1, 2))), tuple)
    assert isinstance(decode(encode([1, 2])), list)
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1 and decode(encode(1)) is not True


def test_roundtrip_ndarray():
    arr = np.arange(12, dtype=np.float64).reshape(3, 4)
    out = decode(encode(arr))
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


def test_roundtrip_ndarray_int32():
    arr = np.array([[1, 2], [3, 4]], dtype=np.int32)
    out = decode(encode(arr))
    assert out.dtype == np.int32
    assert np.array_equal(out, arr)


def test_numpy_scalars_become_python_scalars():
    assert decode(encode(np.int64(7))) == 7
    assert decode(encode(np.float64(2.5))) == 2.5


def test_nan_roundtrip():
    out = decode(encode(float("nan")))
    assert out != out  # NaN


def test_encoded_size_matches_encode():
    value = {"key": [1, 2.0, "three"], "arr": np.zeros(8)}
    assert encoded_size(value) == len(encode(value))


def test_size_grows_with_payload():
    small = encoded_size({"data": "x" * 10})
    big = encoded_size({"data": "x" * 10000})
    assert big - small == pytest.approx(9990, abs=16)


def test_unencodable_type_rejected():
    class Opaque:
        pass

    with pytest.raises(SerializationError):
        encode(Opaque())


def test_decode_trailing_garbage_rejected():
    buf = encode(42) + b"junk"
    with pytest.raises(SerializationError):
        decode(buf)


def test_decode_truncated_rejected():
    buf = encode("hello world")
    with pytest.raises(SerializationError):
        decode(buf[:-3])


def test_decode_empty_rejected():
    with pytest.raises(SerializationError):
        decode(b"")


def test_decode_unknown_tag_rejected():
    with pytest.raises(SerializationError):
        decode(b"\x99")


def test_registered_object_roundtrip():
    @register_codec
    class Point:
        def __init__(self, x, y):
            self.x = x
            self.y = y

    p = Point(1.5, -2)
    out = decode(encode(p))
    assert isinstance(out, Point)
    assert out.x == 1.5 and out.y == -2


def test_register_duplicate_name_rejected():
    class Uniquely:
        pass

    class Impostor:
        pass

    register_codec(Uniquely, name="test-dup-name")
    with pytest.raises(SerializationError):
        register_codec(Impostor, name="test-dup-name")


# -- property-based: the serializer round-trips arbitrary JSON-ish values --

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2 ** 70), max_value=2 ** 70)
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


@settings(max_examples=200, deadline=None)
@given(json_values)
def test_roundtrip_property(value):
    assert decode(encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(json_values)
def test_encoding_is_deterministic(value):
    assert encode(value) == encode(value)
