"""Seismic shot survey with session replay — archival in action.

A geophysicist fires a sequence of shots into a layered velocity model,
recording the middle geophone after each shot, then *re-tunes the deep
layer's velocity* and repeats — the interrogate/steer/compare loop.  A
colleague who joins late uses the latecomer catch-up (§5.2.5) to replay the
shot sequence without having been online.

Run:  python examples/seismic_survey.py
"""

from repro import AppConfig, build_single_server
from repro.apps import SeismicApp


def main() -> None:
    collab = build_single_server()
    collab.run_bootstrap()

    seismic = collab.add_app(
        0, SeismicApp, "seismic-1d",
        acl={"geo": "write", "colleague": "read"},
        config=AppConfig(steps_per_phase=30, step_time=0.005,
                         interaction_window=0.05),
        cells=300)
    collab.sim.run(until=2.0)
    print(f"seismic model online: {seismic.app_id}")

    geo = collab.add_portal(0)

    def survey():
        yield from geo.login("geo")
        session = yield from geo.open(seismic.app_id)
        yield from session.acquire_lock()

        readings = {}
        for velocity in (0.4, 0.6, 0.8):
            yield from session.set_param("layer2_velocity", velocity)
            yield from session.actuate("fire_shot",
                                       {"position": 20, "amplitude": 1.0})
            yield geo.sim.timeout(2.0)  # let the wave propagate
            rms = yield from session.read_sensor("rms_amplitude")
            mid = yield from session.read_sensor("geophone_mid")
            readings[velocity] = (rms, mid)
            print(f"  layer2 velocity {velocity}: rms={rms:.4f} "
                  f"geophone_mid={mid:+.4f}")
        shots = yield from session.read_sensor("shots_fired")
        print(f"survey complete: {shots} shots fired")
        yield from session.release_lock()
        return readings

    proc = collab.sim.spawn(survey())
    collab.sim.run(until=proc)

    late = collab.add_portal(0)

    def latecomer():
        yield from late.login("colleague")
        session = yield from late.open(seismic.app_id)
        history = yield from session.catchup(n=50)
        fired = [r for r in history
                 if r["kind"] == "command" and r["command"] == "actuate"]
        print(f"\ncolleague joined late and replayed the session: "
              f"{len(history)} interactions, {len(fired)} shots — "
              f"caught up without having been online")
        return len(fired)

    proc = collab.sim.spawn(latecomer())
    n_shots = collab.sim.run(until=proc)
    assert n_shots == 3


if __name__ == "__main__":
    main()
