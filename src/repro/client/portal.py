"""The DISCOVER client portal.

All methods are generator helpers driven with ``yield from`` inside a
simulation process — the portal is a *thin* client: every operation is an
HTTP request to the local server, and asynchronous traffic (updates,
responses, chat, lock grants) arrives only by polling (§6.2's poll-and-pull
consequence of building on HTTP).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.web import HttpClient, HttpError
from repro.wire import (
    ChatMessage,
    ControlMessage,
    ErrorMessage,
    LockMessage,
    Message,
    ResponseMessage,
    UpdateMessage,
    WhiteboardMessage,
    message_type_name,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class PortalError(Exception):
    """Login/steering failures surfaced to the portal user."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class DiscoverPortal:
    """A user's connection to their local DISCOVER server."""

    def __init__(self, host: "Host", server_host: str,
                 http_port: int = 80, tracer=None) -> None:
        self.host = host
        self.sim = host.sim
        if tracer is None:
            # Standalone portals trace nothing; deployments pass the
            # shared tracer so client spans root the cross-server trees.
            from repro.obs import SAMPLE_OFF, Tracer
            tracer = Tracer(sampling=SAMPLE_OFF, clock=lambda: self.sim.now)
        self.tracer = tracer
        self.http = HttpClient(host, server_host, http_port)
        self.server_host = server_host
        self.user: Optional[str] = None
        self.client_id: Optional[str] = None
        self.apps: List[dict] = []
        #: messages not yet claimed by a waiter, sorted by kind
        self.updates: List[UpdateMessage] = []
        self.chat_log: List[ChatMessage] = []
        self.whiteboard: List[WhiteboardMessage] = []
        self.lock_events: List[LockMessage] = []
        self.notices: List[ControlMessage] = []
        self._responses: Dict[int, Message] = {}
        #: secondary connections opened by §4.1 request redirection:
        #: server name → (HttpClient, client_id)
        self._connections: Dict[str, tuple] = {}

    # -- connection ------------------------------------------------------
    def login(self, user: str, password: str = ""):
        """Generator: authenticate; returns the visible application list."""
        try:
            body = yield from self.http.post(
                "/master/login", params={"user": user, "password": password})
        except HttpError as exc:
            raise PortalError(f"login failed: {exc.body}", exc.status)
        self.user = user
        self.client_id = body["client_id"]
        self.apps = body["apps"]
        return self.apps

    def logout(self):
        """Generator: end the session at the server."""
        if self.client_id is None:
            return
        yield from self.http.post("/master/logout",
                                  params={"client_id": self.client_id})
        self.client_id = None

    def close(self) -> None:
        """Release local resources (does not notify the server)."""
        self.http.close()
        for http, _cid in self._connections.values():
            http.close()
        self._connections.clear()

    def list_apps(self):
        """Generator: refresh and return the application list."""
        body = yield from self.http.get("/master/apps",
                                        {"client_id": self._cid()})
        self.apps = body["apps"]
        return self.apps

    #: maximum §4.1 redirect hops a single select may follow
    MAX_REDIRECTS = 4

    def open(self, app_id: str):
        """Generator: select an application; returns an :class:`AppSession`.

        If a server answers with a redirect (§4.1's request-redirection
        service), the portal transparently connects to the named server —
        user-ids are consistent network-wide (§6.3) — and re-selects
        there.  The chain is bounded (:attr:`MAX_REDIRECTS`) and a server
        that was already visited ends it immediately, so two servers
        bouncing a stale application id between them surface as a
        :class:`PortalError` instead of an infinite loop.
        """
        with self.tracer.span("portal.select", plane="client",
                              server=self.host.name,
                              attrs={"app_id": app_id}):
            http, client_id = self.http, self._cid()
            visited = {self.server_host}
            for _hop in range(self.MAX_REDIRECTS + 1):
                try:
                    info = yield from http.post(
                        "/master/select",
                        params={"client_id": client_id, "app_id": app_id})
                except HttpError as exc:
                    raise PortalError(f"select failed: {exc.body}",
                                      exc.status)
                if not (isinstance(info, dict) and "redirect" in info):
                    if http is self.http:
                        return AppSession(self, app_id, info)
                    return AppSession(self, app_id, info, http=http,
                                      client_id=client_id)
                target = info["redirect"]
                if target in visited:
                    raise PortalError(
                        f"redirect loop selecting {app_id!r}: "
                        f"{target!r} was already visited")
                visited.add(target)
                http, client_id = yield from self._connect_to(target)
            raise PortalError(f"select of {app_id!r} exceeded "
                              f"{self.MAX_REDIRECTS} redirects")

    def _connect_to(self, server: str):
        """Generator: (HttpClient, client_id) for a secondary server."""
        conn = self._connections.get(server)
        if conn is not None:
            return conn
        http = HttpClient(self.host, server)
        try:
            body = yield from http.post(
                "/master/login",
                params={"user": self.user or "", "password": ""})
        except HttpError as exc:
            http.close()
            raise PortalError(f"redirect login at {server} failed: "
                              f"{exc.body}", exc.status)
        conn = (http, body["client_id"])
        self._connections[server] = conn
        return conn

    def _cid(self) -> str:
        if self.client_id is None:
            raise PortalError("not logged in")
        return self.client_id

    # -- polling ------------------------------------------------------------
    def poll(self, max_items: int = 32):
        """Generator: poll every connection; returns and files new messages.

        Redirected sessions (§4.1) receive their traffic at the home
        server, so the portal drains its primary server and every
        secondary connection into one merged stream.
        """
        body = yield from self.http.get(
            "/collab/poll", {"client_id": self._cid(), "max": max_items})
        messages = list(body["messages"])
        for http, client_id in self._connections.values():
            try:
                extra = yield from http.get(
                    "/collab/poll", {"client_id": client_id,
                                     "max": max_items})
            except HttpError:
                continue  # that server is down; its stream pauses
            messages.extend(extra["messages"])
        for msg in messages:
            self._file(msg)
        return messages

    def _file(self, msg: Message) -> None:
        """Dispatch on the message's class name (the reflection idiom)."""
        kind = message_type_name(msg)
        if kind == "UpdateMessage":
            self.updates.append(msg)
        elif kind in ("ResponseMessage", "ErrorMessage"):
            self._responses[msg.request_id] = msg
        elif kind == "ChatMessage":
            self.chat_log.append(msg)
        elif kind == "WhiteboardMessage":
            self.whiteboard.append(msg)
        elif kind == "LockMessage":
            self.lock_events.append(msg)
        else:
            self.notices.append(msg)

    def take_response(self, request_id: int) -> Optional[Message]:
        """Pop an already-polled response for ``request_id``, if present."""
        return self._responses.pop(request_id, None)

    def wait_response(self, request_id: int, timeout: float = 60.0,
                      poll_interval: float = 0.25):
        """Generator: poll until the response to ``request_id`` arrives.

        Returns the :class:`ResponseMessage` (raises :class:`PortalError`
        on an :class:`ErrorMessage` or timeout).
        """
        deadline = self.sim.now + timeout
        while True:
            msg = self.take_response(request_id)
            if msg is not None:
                if message_type_name(msg) == "ErrorMessage":
                    raise PortalError(f"steering error: {msg.error}")
                return msg
            if self.sim.now >= deadline:
                raise PortalError(
                    f"no response to request {request_id} within {timeout}s")
            yield from self.poll()
            if request_id in self._responses:
                continue
            yield self.sim.timeout(poll_interval)

    def set_collaboration(self, enabled: bool):
        """Generator: enable/disable broadcast of my requests/responses."""
        yield from self.http.post(
            "/collab/mode",
            params={"client_id": self._cid(), "enabled": enabled})


class AppSession:
    """One client's steering session with one application."""

    def __init__(self, portal: DiscoverPortal, app_id: str,
                 info: dict, http: Optional[HttpClient] = None,
                 client_id: Optional[str] = None) -> None:
        self.portal = portal
        self.app_id = app_id
        self.info = info
        self.privilege = info.get("privilege")
        self.interface = info.get("interface", {})
        #: the connection this session speaks over — the portal's primary
        #: server, or the application's home server after a §4.1 redirect
        self.http = http or portal.http
        self.client_id = client_id or portal.client_id

    def _cid(self) -> str:
        if self.client_id is None:
            raise PortalError("session has no client id (not logged in)")
        return self.client_id

    # -- raw command path ----------------------------------------------------
    def command(self, command: str, args: Optional[dict] = None):
        """Generator: submit a command; returns its request id."""
        tracer = self.portal.tracer
        with tracer.span("portal.command", plane="client",
                         server=self.portal.host.name,
                         attrs={"app_id": self.app_id,
                                "command": command}) as span:
            try:
                body = yield from self.http.post(
                    "/command/submit",
                    params={"client_id": self._cid(),
                            "app_id": self.app_id,
                            "command": command, "args": args or {}})
            except HttpError as exc:
                raise PortalError(f"command rejected: {exc.body}",
                                  exc.status)
            tracer.annotate(span, request_id=body["request_id"])
            return body["request_id"]

    def steer(self, command: str, args: Optional[dict] = None,
              timeout: float = 60.0):
        """Generator: submit and wait for the response payload."""
        request_id = yield from self.command(command, args)
        msg = yield from self.portal.wait_response(request_id, timeout)
        return msg.result

    # -- typed steering helpers -------------------------------------------
    def get_param(self, name: str, timeout: float = 60.0):
        """Generator: read a steerable parameter."""
        return (yield from self.steer("get_param", {"name": name}, timeout))

    def set_param(self, name: str, value: Any, timeout: float = 60.0):
        """Generator: write a steerable parameter (needs WRITE + lock)."""
        return (yield from self.steer("set_param",
                                      {"name": name, "value": value},
                                      timeout))

    def read_sensor(self, name: str, timeout: float = 60.0):
        """Generator: sample an application sensor."""
        return (yield from self.steer("read_sensor", {"name": name}, timeout))

    def actuate(self, name: str, args: Optional[dict] = None,
                timeout: float = 60.0):
        """Generator: fire an actuator."""
        call = {"name": name}
        call.update(args or {})
        return (yield from self.steer("actuate", call, timeout))

    def app_status(self, timeout: float = 60.0):
        """Generator: the application's own status record."""
        return (yield from self.steer("status", {}, timeout))

    def pause(self, timeout: float = 60.0):
        """Generator: pause the application (needs WRITE + lock)."""
        return (yield from self.steer("pause", {}, timeout))

    def resume(self, timeout: float = 60.0):
        """Generator: resume a paused application."""
        return (yield from self.steer("resume", {}, timeout))

    def stop_app(self, timeout: float = 60.0):
        """Generator: stop the application."""
        return (yield from self.steer("stop", {}, timeout))

    # -- locking ------------------------------------------------------------
    def acquire_lock(self):
        """Generator: request the steering lock ('granted' or 'queued')."""
        body = yield from self._lock("acquire")
        return body["result"]

    def release_lock(self):
        """Generator: release the steering lock."""
        body = yield from self._lock("release")
        return body

    def _lock(self, action: str):
        try:
            return (yield from self.http.post(
                "/command/lock",
                params={"client_id": self._cid(),
                        "app_id": self.app_id, "action": action}))
        except HttpError as exc:
            raise PortalError(f"lock {action} failed: {exc.body}",
                              exc.status)

    def lock_holder(self):
        """Generator: who currently drives the application."""
        body = yield from self.http.get("/command/lock",
                                               {"app_id": self.app_id})
        return body["holder"]

    def wait_lock(self, timeout: float = 60.0, poll_interval: float = 0.25):
        """Generator: acquire, waiting in the queue if necessary."""
        outcome = yield from self.acquire_lock()
        if outcome == "granted":
            return "granted"
        deadline = self.portal.sim.now + timeout
        while self.portal.sim.now < deadline:
            yield from self.portal.poll()
            for ev in self.portal.lock_events:
                if (ev.app_id == self.app_id
                        and ev.holder == self.portal.client_id
                        and ev.action == "granted"):
                    self.portal.lock_events.remove(ev)
                    return "granted"
            yield self.portal.sim.timeout(poll_interval)
        raise PortalError(f"lock not granted within {timeout}s")

    # -- scheduled interactions (§2.1) ------------------------------------
    def schedule(self, command: str, args: Optional[dict] = None,
                 period: float = 1.0, count: Optional[int] = None):
        """Generator: have the server issue ``command`` every ``period``.

        Responses arrive on the ordinary poll stream.  Returns the
        schedule id (pass to :meth:`unschedule`).
        """
        params = {"client_id": self._cid(), "app_id": self.app_id,
                  "command": command, "args": args or {}, "period": period}
        if count is not None:
            params["count"] = count
        body = yield from self.http.post("/command/schedule",
                                                params=params)
        return body["schedule_id"]

    def unschedule(self, schedule_id: str):
        """Generator: cancel a periodic interaction."""
        body = yield from self.http.post(
            "/command/unschedule",
            params={"client_id": self._cid(),
                    "schedule_id": schedule_id})
        return body["stopped"]

    # -- collaboration ---------------------------------------------------------
    def join_group(self, group: str):
        """Generator: join a collaboration sub-group."""
        return (yield from self._group("join", group))

    def leave_group(self, group: str):
        """Generator: leave a collaboration sub-group."""
        return (yield from self._group("leave", group))

    def _group(self, action: str, group: str):
        body = yield from self.http.post(
            "/collab/group",
            params={"client_id": self._cid(), "app_id": self.app_id,
                    "group": group, "action": action})
        return body["members"]

    def chat(self, text: str, group: str = "all"):
        """Generator: send a chat line to the collaboration group."""
        body = yield from self.http.post(
            "/collab/chat",
            params={"client_id": self._cid(), "app_id": self.app_id,
                    "text": text, "group": group})
        return body["delivered"]

    def draw(self, shape: str, points: list, group: str = "all"):
        """Generator: share a whiteboard stroke."""
        body = yield from self.http.post(
            "/collab/whiteboard",
            params={"client_id": self._cid(), "app_id": self.app_id,
                    "shape": shape, "points": points, "group": group})
        return body["delivered"]

    def share_view(self, view: Any, group: str = "all"):
        """Generator: explicitly share a view (works with collab off)."""
        body = yield from self.http.post(
            "/collab/share",
            params={"client_id": self._cid(), "app_id": self.app_id,
                    "view": view, "group": group})
        return body["delivered"]

    # -- archival ---------------------------------------------------------------
    def replay_interactions(self, since: float = 0.0,
                            limit: Optional[int] = None):
        """Generator: my replayable interaction history (§5.2.5)."""
        params = {"client_id": self._cid(), "app_id": self.app_id,
                  "since": since}
        if limit is not None:
            params["limit"] = limit
        body = yield from self.http.get("/archive/interactions",
                                               params)
        return body["records"]

    def replay_app_log(self, since: float = 0.0,
                       limit: Optional[int] = None):
        """Generator: the application's archived history."""
        params = {"client_id": self._cid(), "app_id": self.app_id,
                  "since": since}
        if limit is not None:
            params["limit"] = limit
        body = yield from self.http.get("/archive/applog", params)
        return body["records"]

    def catchup(self, n: int = 20):
        """Generator: latecomer catch-up — recent group interactions."""
        body = yield from self.http.get(
            "/archive/catchup",
            {"client_id": self._cid(), "app_id": self.app_id,
             "n": n})
        return body["records"]
