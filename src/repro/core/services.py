"""The "pool of services" model (§3, Figure 3) and the CORBA CoG kit (§7).

§3: backend services "may be specific to a server or may form a pool of
services that can be accessed by any server using standard protocols" —
each advertised through the trader and bound "using a ubiquitous and
pervasive protocol such as CORBA/IIOP", with availability "determined at
runtime" (§4.2).

§7 describes the intended composition: "a client can use Globus services
provided by the CORBA CoG Kit to discover, allocate and stage a scientific
simulation, and then use the DISCOVER web-portal to collaboratively
monitor, interact with, and steer the application."

This module implements both:

- :class:`ServicePool` — discover/bind non-DISCOVER services by service id
  through the trader.
- :class:`MonitoringService` — a pool service aggregating server health
  (the "monitoring service" of Figure 3).
- :class:`CorbaCoGKit` — the grid-services stand-in: allocate a compute
  host, stage an application class onto it, and launch it; the launched
  application registers with its domain's DISCOVER server like any other,
  so the §7 composition works end to end (see
  ``examples/cog_grid_launch.py``).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.orb import ObjectNotFound, OrbError, ServiceOffer
from repro.steering.application import AppConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Collaboratory
    from repro.net.host import Host
    from repro.orb.core import Orb

_job_seq = itertools.count(1)


class ServicePool:
    """Runtime discovery of pool services through the trader (§3).

    A thin helper each server (or client-side tool) can use:
    ``offers = yield from pool.discover("MONITORING")`` then invoke the
    returned references.  Nothing is cached beyond one call — the paper is
    explicit that "the availability of these servers is not guaranteed and
    must be determined at runtime".
    """

    def __init__(self, orb: "Orb", trader_ref, timeout: float = 30.0) -> None:
        self.orb = orb
        self.trader_ref = trader_ref
        self.timeout = timeout

    def discover(self, service_id: str,
                 constraints: Optional[dict] = None):
        """Generator: all live offers for ``service_id``."""
        offers = yield from self.orb.invoke(
            self.trader_ref, "query", service_id, constraints,
            timeout=self.timeout)
        return offers

    def bind_first(self, service_id: str,
                   constraints: Optional[dict] = None):
        """Generator: the reference of the first matching offer.

        Raises :class:`ObjectNotFound` when the pool has no such service.
        """
        offers = yield from self.discover(service_id, constraints)
        for offer in offers:
            try:
                yield from self.orb.invoke(offer.ref, "ping",
                                           timeout=self.timeout)
            except OrbError:
                continue  # determined at runtime: skip dead offers
            return offer.ref
        raise ObjectNotFound(f"no live {service_id!r} service in the pool")


class MonitoringService:
    """A pool service reporting the health of the server network.

    Registered DISCOVER servers push periodic heartbeats; clients (or
    operators) query the aggregate — the "network-monitoring tools" slot of
    the §3 architecture.
    """

    SERVICE_ID = "MONITORING"

    def __init__(self) -> None:
        self._heartbeats: Dict[str, dict] = {}

    def ping(self) -> str:
        return "monitoring"

    def heartbeat(self, server: str, stats: dict, at: float) -> bool:
        """A server reports its current stats."""
        self._heartbeats[server] = {"stats": dict(stats), "at": at}
        return True

    def network_status(self) -> Dict[str, dict]:
        """Latest heartbeat per server."""
        return dict(self._heartbeats)

    def servers_seen(self) -> List[str]:
        return sorted(self._heartbeats)


class JobRecord:
    """One staged/launched application managed by the CoG kit."""

    def __init__(self, job_id: str, app_name: str, host_name: str,
                 domain: str) -> None:
        self.job_id = job_id
        self.app_name = app_name
        self.host_name = host_name
        self.domain = domain
        self.state = "staged"
        self.app: Any = None

    def descriptor(self) -> dict:
        return {
            "job_id": self.job_id,
            "app_name": self.app_name,
            "host": self.host_name,
            "domain": self.domain,
            "state": self.state,
            "app_id": getattr(self.app, "app_id", None),
        }


class CorbaCoGKit:
    """Grid job management à la the CORBA CoG kit (§7's composition).

    Holds a catalogue of launchable application types and a set of compute
    hosts per domain.  ``submit_job`` allocates the least-loaded host,
    "stages" the code (a modeled staging delay), instantiates the
    application, and starts it — after which it registers with its domain's
    DISCOVER server and is steerable through any portal in the network.
    """

    SERVICE_ID = "GRID_COG"

    def __init__(self, collab: "Collaboratory",
                 staging_time: float = 1.0) -> None:
        self.collab = collab
        self.sim = collab.sim
        self.staging_time = staging_time
        self._catalogue: Dict[str, Callable] = {}
        self._jobs: Dict[str, JobRecord] = {}
        self._host_load: Dict[str, int] = {}

    # -- catalogue -----------------------------------------------------------
    def register_application_type(self, name: str,
                                  factory: Callable) -> None:
        """Make an application class launchable by name."""
        self._catalogue[name] = factory

    def catalogue(self) -> List[str]:
        return sorted(self._catalogue)

    def ping(self) -> str:
        return "grid-cog"

    # -- resource brokering ---------------------------------------------------
    def _allocate_host(self, domain_index: int) -> "Host":
        domain = self.collab.domains[domain_index]
        hosts = domain.app_hosts or [domain.server]
        return min(hosts, key=lambda h: self._host_load.get(h.name, 0))

    # -- job lifecycle ---------------------------------------------------------
    def submit_job(self, app_type: str, name: str, domain_index: int,
                   acl: dict, config: Optional[dict] = None,
                   kwargs: Optional[dict] = None):
        """Generator: discover resources, stage, and launch (§7).

        Returns the job descriptor; the application id becomes available
        once registration completes (poll :meth:`job_status`).
        """
        factory = self._catalogue.get(app_type)
        if factory is None:
            raise ObjectNotFound(f"no application type {app_type!r} in the "
                                 f"CoG catalogue")
        host = self._allocate_host(domain_index)
        self._host_load[host.name] = self._host_load.get(host.name, 0) + 1
        job = JobRecord(f"job-{next(_job_seq)}", name, host.name,
                        self.collab.domains[domain_index].name)
        self._jobs[job.job_id] = job
        # staging: shipping the executable + input deck to the host
        if self.staging_time > 0:
            yield self.sim.timeout(self.staging_time)
        app_config = AppConfig(**config) if config else None
        app = factory(host, name,
                      self.collab.domains[domain_index].server.name,
                      acl=dict(acl), config=app_config, **(kwargs or {}))
        self.collab.apps.append(app)
        job.app = app
        job.state = "running"
        app.start()
        return job.descriptor()

    def job_status(self, job_id: str) -> dict:
        """Current descriptor for a job (app_id filled in once registered)."""
        job = self._job(job_id)
        if job.state == "running" and job.app is not None:
            if job.app.state == "stopped":
                job.state = "finished"
        return job.descriptor()

    def cancel_job(self, job_id: str) -> dict:
        """Ask the application to stop at its next interaction phase."""
        job = self._job(job_id)
        if job.app is not None and job.app.state != "stopped":
            job.app.request_stop()
            job.state = "cancelled"
        return job.descriptor()

    def list_jobs(self) -> List[dict]:
        return [j.descriptor() for j in self._jobs.values()]

    def _job(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ObjectNotFound(f"no job {job_id!r}") from None


def deploy_pool_services(collab: "Collaboratory",
                         staging_time: float = 1.0,
                         heartbeat_period: float = 5.0) -> dict:
    """Activate the pool services on the registry host and export offers.

    Returns ``{"monitoring": ..., "cog": ..., "pool": ...}`` with the
    servant instances and a ready :class:`ServicePool` bound to the
    registry's trader.  Servers begin heartbeating to the monitor.
    """
    from repro.core.visualization import VisualizationService

    orb = collab.registry_orb
    monitoring = MonitoringService()
    cog = CorbaCoGKit(collab, staging_time=staging_time)
    viz = VisualizationService()
    mon_ref = orb.activate(monitoring, key="MonitoringService")
    cog_ref = orb.activate(cog, key="CorbaCoGKit")
    viz_ref = orb.activate(viz, key="VisualizationService")
    collab.trader.export(ServiceOffer(MonitoringService.SERVICE_ID, mon_ref,
                                      {"host": "registry"}))
    collab.trader.export(ServiceOffer(CorbaCoGKit.SERVICE_ID, cog_ref,
                                      {"host": "registry"}))
    collab.trader.export(ServiceOffer(VisualizationService.SERVICE_ID,
                                      viz_ref, {"host": "registry"}))

    def heartbeater(server):
        while True:
            yield collab.sim.timeout(heartbeat_period)
            try:
                yield from server.orb.invoke(
                    mon_ref, "heartbeat", server.name, dict(server.stats),
                    collab.sim.now, timeout=heartbeat_period)
            except OrbError:
                continue  # monitor temporarily unavailable

    for server in collab.servers.values():
        collab.sim.spawn(heartbeater(server),
                         name=f"heartbeat@{server.name}")
    return {"monitoring": monitoring, "cog": cog, "visualization": viz,
            "monitoring_ref": mon_ref, "cog_ref": cog_ref,
            "visualization_ref": viz_ref}


def pool_for_server(server) -> ServicePool:
    """A :class:`ServicePool` bound to one server's ORB and trader."""
    if server.trader_ref is None:
        raise OrbError(f"server {server.name} has no trader configured")
    return ServicePool(server.orb, server.trader_ref,
                       timeout=server.peer_call_timeout)
