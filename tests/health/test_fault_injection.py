"""E10 end-to-end: kill a server mid-run, watch the health plane react.

The acceptance sequence, all inside one deterministic virtual run:

1. the victim is marked ``unhealthy`` within the detection bound,
2. the client-facing router fails commands over to the healthy replica,
3. an SLO burn-rate alert fires with at least one trace exemplar,
4. the alert resolves once failover restores the error budget,
5. ``GET /status?format=prom`` still parses as valid Prometheus text.
"""

import pytest

from repro.bench.scenarios import run_fault_injection, scrape_status
from repro.health import STATUS_UNHEALTHY, parse_prometheus

#: generous but meaningful: a few gossip/relay timeouts past the
#: hysteresis threshold (down_after=3, gossip 0.5s, call timeout 0.5s)
DETECTION_BOUND_S = 5.0


@pytest.fixture(scope="module")
def fault_run():
    row, collab = run_fault_injection(duration=30.0, kill_at=10.0)
    yield row, collab
    collab.stop()


def test_victim_detected_within_bound(fault_run):
    row, _collab = fault_run
    assert row["victim_status"] == STATUS_UNHEALTHY
    assert row["detection_latency_s"] is not None
    assert 0.0 < row["detection_latency_s"] <= DETECTION_BOUND_S


def test_commands_fail_over_to_replica(fault_run):
    row, _collab = fault_run
    # the client kept steering through the outage: a couple of failures
    # while detection converged, then the replica carried the load
    assert row["health_failovers"] > 0
    assert row["commands_ok"] > row["commands_failed"]
    assert row["commands_failed"] >= 1
    # roughly one command per interval over the run: the outage did not
    # stall the client (duration 30 / interval 0.5, minus RTTs)
    assert row["commands_ok"] >= 30


def test_alert_fires_with_exemplars_and_resolves(fault_run):
    row, collab = fault_run
    client_server = collab.server_of(0)
    assert row["alerts_fired"] >= 1
    assert row["alerts_resolved"] >= 1
    fired = client_server.health.alerts.history()
    assert fired, "client-facing server fired no alerts"
    with_exemplars = [a for a in fired if a.exemplars]
    assert with_exemplars, "no alert carried a trace exemplar"
    # every exemplar is a real trace in the deployment's span store
    trace_ids = set(collab.tracer.store.trace_ids())
    for alert in with_exemplars:
        assert trace_ids.issuperset(alert.exemplars)
    # the error-rate page resolved after failover restored the budget
    error_pages = [a for a in fired if a.slo == "request_error_rate"
                   and a.severity == "page"]
    assert error_pages and all(a.resolved_at is not None
                               for a in error_pages)


def test_prom_endpoint_valid_after_fault(fault_run):
    row, collab = fault_run
    text = scrape_status(collab, params={"format": "prom"})
    samples = parse_prometheus(text)
    client_server = collab.server_of(0)
    victim_key = ("repro_health_status",
                  (("component", f"server:{row['victim']}"),
                   ("server", client_server.name)))
    assert samples[victim_key] == 3.0  # unhealthy
    assert samples[("repro_alerts_fired", ())] >= 1.0


def test_deterministic_replay():
    """Same parameters, fresh sim → bit-identical measured row."""
    row_a, collab_a = run_fault_injection(duration=12.0, kill_at=4.0)
    collab_a.stop()
    row_b, collab_b = run_fault_injection(duration=12.0, kill_at=4.0)
    collab_b.stop()
    assert row_a == row_b
