"""GIS-style central user directory — the paper's §6.3 proposal.

"One way to get around this problem is to have a centralized directory
service like the GIS that maintains user-IDs and other global information.
All the servers in the system can now use this directory service."

:class:`UserDirectoryService` is that directory: servers publish each
application's user list (and summaries) on registration, and login consults
the directory **once** instead of authenticating against every peer —
turning E8's O(peers) fan-out into O(1).  Deployed as an ORB servant on the
registry host, enabled per deployment with ``directory_ref``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class UserDirectoryService:
    """Network-wide user → accessible-application index."""

    OBJECT_KEY = "UserDirectory"

    def __init__(self) -> None:
        #: user → {app_id: summary}
        self._by_user: Dict[str, Dict[str, dict]] = {}
        #: app_id → set of users (for withdrawal)
        self._by_app: Dict[str, Set[str]] = {}
        #: server → set of app_ids published from it (for bulk withdrawal)
        self._by_server: Dict[str, Set[str]] = {}
        #: app_id → publishing server — the reverse index that keeps
        #: withdraw_app O(users) instead of scanning every server's set
        self._server_by_app: Dict[str, str] = {}

    def publish_app(self, app_id: str, server: str, name: str,
                    acl: Dict[str, str]) -> bool:
        """A server publishes one application's ACL and location."""
        self.withdraw_app(app_id)
        users = set()
        for user, privilege in acl.items():
            summary = {"app_id": app_id, "name": name, "server": server,
                       "privilege": privilege, "active": True,
                       "phase": "unknown"}
            self._by_user.setdefault(user, {})[app_id] = summary
            users.add(user)
        self._by_app[app_id] = users
        self._by_server.setdefault(server, set()).add(app_id)
        self._server_by_app[app_id] = server
        return True

    def withdraw_app(self, app_id: str) -> bool:
        """Remove an application (deregistration or server shutdown)."""
        users = self._by_app.pop(app_id, set())
        for user in users:
            apps = self._by_user.get(user)
            if apps is not None:
                apps.pop(app_id, None)
                if not apps:
                    del self._by_user[user]
        server = self._server_by_app.pop(app_id, None)
        if server is not None:
            apps = self._by_server.get(server)
            if apps is not None:
                apps.discard(app_id)
                if not apps:
                    del self._by_server[server]
        return True

    def withdraw_server(self, server: str) -> int:
        """A server is shutting down: withdraw everything it published in
        one call; returns how many applications were removed."""
        app_ids = self._by_server.pop(server, set())
        for app_id in list(app_ids):
            self.withdraw_app(app_id)
        return len(app_ids)

    def authenticate(self, user: str) -> bool:
        """Network-wide level-one authentication in one lookup."""
        return user in self._by_user

    def lookup(self, user: str) -> List[dict]:
        """Every application the user may access, network-wide."""
        return list(self._by_user.get(user, {}).values())

    def known_users(self) -> List[str]:
        return sorted(self._by_user)

    def app_count(self) -> int:
        return len(self._by_app)
