"""App placement behind a pluggable ``Placement`` abstraction.

Before this package, the ``server#aN`` app-id convention was hardcoded
in two places: ``core/daemon.py`` minted ids with an f-string and
``federation/registry.py`` split them back apart.  Both now delegate to
the process-wide :class:`Placement`, so a deployment can swap the
scheme (hashed placement, externally-assigned homes, ...) without
touching federation or the daemon.

``home_server_of`` stays importable from ``repro.federation.registry``
and ``repro.core.daemon`` as a façade over this module — but the *only*
code allowed to parse an app id is :class:`PrefixPlacement` here (the
directory-boundary lint in ``tools/check_pipeline_boundary.py`` rejects
``.split("#")`` anywhere else under ``src/repro``).
"""

from __future__ import annotations


class Placement:
    """Maps app ids to home servers and mints new app ids."""

    def home_of(self, app_id: str) -> str:
        """Name of the server hosting ``app_id``."""
        raise NotImplementedError

    def make_app_id(self, server: str, seq: int) -> str:
        """Mint the id for the ``seq``-th app registered at ``server``."""
        raise NotImplementedError


class PrefixPlacement(Placement):
    """The paper's §5.2.1 convention: ``<server>#a<seq>``."""

    separator = "#"

    def home_of(self, app_id: str) -> str:
        return app_id.split(self.separator, 1)[0]

    def make_app_id(self, server: str, seq: int) -> str:
        return f"{server}{self.separator}a{seq}"


_placement: Placement = PrefixPlacement()


def get_placement() -> Placement:
    """The process-wide placement scheme."""
    return _placement


def set_placement(placement: Placement) -> Placement:
    """Install ``placement`` process-wide; returns the previous one."""
    global _placement
    previous = _placement
    _placement = placement
    return previous


def home_server_of(app_id: str) -> str:
    """Name of the server hosting ``app_id`` (façade over Placement)."""
    return _placement.home_of(app_id)


def make_app_id(server: str, seq: int) -> str:
    """Mint an app id at ``server`` (façade over Placement)."""
    return _placement.make_app_id(server, seq)
