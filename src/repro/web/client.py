"""The browser stand-in: an HTTP client with cookie persistence."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.sim import AnyOf
from repro.web.http import GET, POST, HttpRequest, HttpResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

_client_ports = itertools.count(40000)


class HttpError(Exception):
    """A non-2xx response surfaced as an exception, or a timeout."""

    def __init__(self, status: int, body: Any = None) -> None:
        super().__init__(f"HTTP {status}: {body!r}")
        self.status = status
        self.body = body


class HttpClient:
    """Issues requests to one server and remembers its session cookie.

    All request methods are generator helpers driven with ``yield from``
    inside a simulation process, mirroring the blocking XHR of the paper's
    browser portal::

        body = yield from client.get("/master/login", {"user": "alice"})
    """

    def __init__(self, host: "Host", server_host: str,
                 server_port: int = 80) -> None:
        self.host = host
        self.sim = host.sim
        self.server_host = server_host
        self.server_port = server_port
        self.endpoint = host.bind(next(_client_ports))
        self.cookie = ""
        self._pending: Dict[int, Any] = {}
        self._reader = self.sim.spawn(self._read_loop(),
                                      name=f"httpclient@{host.name}")

    def close(self) -> None:
        """Stop the reader and release the port."""
        if self._reader.is_alive:
            self._reader.interrupt("client close")
        self.endpoint.close()

    def _read_loop(self):
        from repro.sim import Interrupt
        try:
            while True:
                frame = yield self.endpoint.recv()
                resp = frame.payload
                if isinstance(resp, HttpResponse):
                    waiter = self._pending.pop(resp.request_id, None)
                    if waiter is not None and not waiter.triggered:
                        waiter.succeed(resp)
        except Interrupt:
            return

    # -- request helpers -------------------------------------------------
    def request(self, method: str, path: str,
                params: Optional[dict] = None, body: Any = None,
                timeout: Optional[float] = None):
        """Generator: send one request, return the response body.

        Raises :class:`HttpError` on non-2xx status or timeout (status 0).
        """
        req = HttpRequest(method, path, params, body, cookie=self.cookie)
        waiter = self.sim.event()
        self._pending[req.request_id] = waiter
        self.endpoint.send(self.server_host, self.server_port, req,
                           channel="command" if method == POST else "main")
        if timeout is None:
            resp = yield waiter
        else:
            expiry = self.sim.timeout(timeout)
            fired = yield AnyOf(self.sim, [waiter, expiry])
            if waiter not in fired:
                self._pending.pop(req.request_id, None)
                raise HttpError(0, f"timeout after {timeout}s on {path}")
            resp = fired[waiter]
        if resp.set_cookie:
            self.cookie = resp.set_cookie
        if not resp.ok:
            raise HttpError(resp.status, resp.body)
        return resp.body

    def get(self, path: str, params: Optional[dict] = None,
            timeout: Optional[float] = None):
        """Generator: HTTP GET."""
        return (yield from self.request(GET, path, params, timeout=timeout))

    def post(self, path: str, body: Any = None,
             params: Optional[dict] = None,
             timeout: Optional[float] = None):
        """Generator: HTTP POST."""
        return (yield from self.request(POST, path, params, body,
                                        timeout=timeout))
