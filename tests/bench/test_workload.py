"""Unit tests for the workload builders."""

import pytest

from repro import build_single_server
from repro.bench.workload import bench_app_config, make_app_farm


def test_bench_app_config_period():
    cfg = bench_app_config(update_period=1.0, steps_per_phase=9)
    # one full phase cycle (steps + interaction window) == the period
    cycle = cfg.steps_per_phase * cfg.step_time + cfg.interaction_window
    assert cycle == pytest.approx(1.0)


def test_make_app_farm_registers_everything():
    collab = build_single_server(app_hosts=3)
    collab.run_bootstrap()
    apps = make_app_farm(collab, 6, user="bench", update_period=0.5)
    collab.sim.run(until=3.0)
    assert len(apps) == 6
    assert all(a.registered for a in apps)
    # spread across the domain's app hosts
    hosts = {a.host.name for a in apps}
    assert len(hosts) == 3
    # all accessible to the bench user
    server = collab.server_of(0)
    assert len(server.security.accessible_apps("bench")) == 6


def test_make_app_farm_payload_size_knob():
    collab = build_single_server()
    collab.run_bootstrap()
    small = make_app_farm(collab, 1, user="u", payload_floats=4)[0]
    big = make_app_farm(collab, 1, user="u", payload_floats=512)[0]
    from repro.wire import encoded_size
    assert (encoded_size(big.update_payload())
            > encoded_size(small.update_payload()))
