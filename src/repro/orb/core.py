"""The ORB: invocation engine and request dispatcher.

One :class:`Orb` per participating host.  It binds a port, runs a dispatcher
process that demultiplexes incoming :class:`GiopRequest` / :class:`GiopReply`
frames, and offers :meth:`invoke` — a generator helper callers drive with
``yield from`` inside their own simulation processes::

    result = yield from orb.invoke(ref, "get_status")

Cost accounting (§6.2): the *caller* pays a marshalling delay proportional
to the request size; the *server host CPU* is occupied for the CORBA
dispatch cost of the request, so concurrent invocations queue like they
would on a real ORB's thread pool.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.net.costs import CostModel
from repro.orb.adapter import ObjectAdapter
from repro.orb.errors import (
    BadOperation,
    CommFailure,
    ObjectNotFound,
    OrbError,
    RemoteException,
)
from repro.orb.giop import STATUS_OK, STATUS_SYSTEM_EXC, GiopReply, GiopRequest
from repro.orb.reference import ObjectRef
from repro.pipeline.core import PLANE_ORB, Pipeline, RequestContext
from repro.sim import AnyOf
from repro.wire import freeze_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: the conventional ORB listener port (IIOP's 683)
DEFAULT_ORB_PORT = 683

_system_exceptions = {
    "ObjectNotFound": ObjectNotFound,
    "BadOperation": BadOperation,
    "CommFailure": CommFailure,
}


class Orb:
    """An object request broker attached to one simulated host."""

    def __init__(self, host: "Host", port: int = DEFAULT_ORB_PORT,
                 cost_model: Optional[CostModel] = None,
                 pipeline: Optional[Pipeline] = None,
                 tracer=None) -> None:
        self.host = host
        self.sim = host.sim
        self.port = port
        self.costs = cost_model or CostModel()
        self.endpoint = host.bind(port)
        self.adapter = ObjectAdapter(host.name, port)
        self._pending: Dict[int, Any] = {}
        self._req_seq = itertools.count(1)
        #: bootstrap references (e.g. "NameService", "TradingService")
        self.initial_references: Dict[str, ObjectRef] = {}
        if tracer is None:
            # Bare ORBs trace nothing; a disabled tracer keeps the
            # invoke/serve paths free of None checks.
            from repro.obs import SAMPLE_OFF, Tracer
            tracer = Tracer(sampling=SAMPLE_OFF, clock=lambda: self.sim.now)
        self.tracer = tracer
        if pipeline is None:
            # Late import: repro.pipeline.interceptors imports the core
            # managers, which import this module.
            from repro.pipeline.interceptors import default_pipeline
            pipeline = default_pipeline(PLANE_ORB,
                                        clock=lambda: self.sim.now,
                                        tracer=tracer, server=host.name)
        #: interceptor chain every incoming request (two-way *and* oneway)
        #: dispatches through — §6.3 admission plugs in here
        self.pipeline = pipeline
        self._dispatcher_proc = self.sim.spawn(
            self._dispatcher(), name=f"orb@{host.name}")
        self._shut_down = False

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        """Stop dispatching and release the port."""
        if self._shut_down:
            return
        self._shut_down = True
        if self._dispatcher_proc.is_alive:
            self._dispatcher_proc.interrupt("orb shutdown")
        self.endpoint.close()

    # -- servant side ----------------------------------------------------------
    def activate(self, servant: Any, key: Optional[str] = None,
                 type_id: str = "") -> ObjectRef:
        """Expose ``servant`` through this ORB; returns its reference."""
        return self.adapter.activate(servant, key, type_id)

    def deactivate(self, key: str) -> None:
        """Withdraw a servant."""
        self.adapter.deactivate(key)

    def resolve_initial(self, name: str) -> ObjectRef:
        """Look up a bootstrap reference configured at deployment time."""
        try:
            return self.initial_references[name]
        except KeyError:
            raise ObjectNotFound(f"no initial reference {name!r}") from None

    # -- client side -------------------------------------------------------------
    def invoke(self, ref: ObjectRef, operation: str, *args: Any,
               timeout: Optional[float] = None, **kwargs: Any):
        """Generator helper: invoke ``operation`` on the remote ``ref``.

        Use as ``result = yield from orb.invoke(ref, "op", ...)``.  Raises
        the mapped system exception, or :class:`RemoteException` for errors
        raised inside the servant.  ``timeout`` (virtual seconds) turns a
        missing reply into :class:`CommFailure`.
        """
        req_id = next(self._req_seq)
        req = GiopRequest(req_id, ref.object_key, operation,
                          tuple(args), dict(kwargs),
                          reply_host=self.host.name, reply_port=self.port)
        with self.tracer.span(f"giop.{operation}", plane="orb-client",
                              server=self.host.name,
                              attrs={"object_key": ref.object_key,
                                     "target": ref.host}) as span:
            ctx = self.tracer.context_of(span)
            req.service_context = ctx
            # Client-side stub marshalling delay.  freeze_size memoizes the
            # request's wire size, so the network send below reuses it.
            marshal = self.costs.corba_per_byte * freeze_size(req)
            if marshal > 0:
                yield self.sim.timeout(marshal)
            waiter = self.sim.event()
            self._pending[req_id] = waiter
            self.endpoint.send(ref.host, ref.port, req, channel="corba",
                               trace_ctx=ctx)
            try:
                if timeout is None:
                    reply = yield waiter
                else:
                    expiry = self.sim.timeout(timeout)
                    fired = yield AnyOf(self.sim, [waiter, expiry])
                    if waiter not in fired:
                        raise CommFailure(
                            f"invoke {ref.object_key}.{operation} timed out "
                            f"after {timeout}s")
                    reply = fired[waiter]
            finally:
                self._pending.pop(req_id, None)
            return self._unpack_reply(ref, operation, reply)

    def invoke_oneway(self, ref: ObjectRef, operation: str, *args: Any,
                      **kwargs: Any) -> None:
        """Fire-and-forget invocation (no reply, no exceptions back)."""
        req = GiopRequest(next(self._req_seq), ref.object_key, operation,
                          tuple(args), dict(kwargs), oneway=True)
        with self.tracer.span(f"giop.{operation}", plane="orb-client",
                              server=self.host.name,
                              attrs={"object_key": ref.object_key,
                                     "target": ref.host,
                                     "oneway": True}) as span:
            ctx = self.tracer.context_of(span)
            req.service_context = ctx
            self.endpoint.send(ref.host, ref.port, req, channel="corba",
                               trace_ctx=ctx)

    @staticmethod
    def _unpack_reply(ref: ObjectRef, operation: str, reply: GiopReply) -> Any:
        if reply.status == STATUS_OK:
            return reply.result
        if reply.status == STATUS_SYSTEM_EXC:
            exc_cls = _system_exceptions.get(reply.exc_type, OrbError)
            raise exc_cls(f"{ref.object_key}.{operation}: {reply.exc_message}")
        raise RemoteException(reply.exc_type, reply.exc_message)

    # -- dispatcher ------------------------------------------------------------
    def _dispatcher(self):
        from repro.sim import Interrupt
        try:
            while True:
                frame = yield self.endpoint.recv()
                payload = frame.payload
                if isinstance(payload, GiopReply):
                    waiter = self._pending.get(payload.request_id)
                    if waiter is not None and not waiter.triggered:
                        waiter.succeed(payload)
                    # Late replies (after timeout) are dropped silently.
                elif isinstance(payload, GiopRequest):
                    self.sim.spawn(
                        self._serve(payload, frame.size, frame.src_host),
                        name=f"serve-{payload.object_key}.{payload.operation}")
                # Anything else on the ORB port is ignored (port scan etc.)
        except Interrupt:
            return

    def _serve(self, req: GiopRequest, size: int, src_host: str = ""):
        # Server-side dispatch occupies the host CPU.
        cpu_cost = self.costs.corba_cost(size)
        yield from self.host.use_cpu(cpu_cost)
        ctx = RequestContext(PLANE_ORB, request_id=req.request_id,
                             principal=src_host, operation=req.operation,
                             size=size, request=req)
        # Decoded requests lack the slot entirely — it is not a wire field.
        ctx.attrs["trace_parent"] = getattr(req, "service_context", None)
        # modeled CPU charged above, reported for cost attribution
        ctx.attrs["cpu_cost"] = cpu_cost
        result = yield from self.pipeline.execute(ctx,
                                                  self._dispatch_servant)
        if req.oneway:
            return
        if ctx.attrs.get("error_type"):
            reply = ctx.response  # GiopReply built by the error envelope
        else:
            reply = GiopReply(req.request_id, STATUS_OK, result, "", "")
        self.endpoint.send(req.reply_host, req.reply_port, reply,
                           channel="corba",
                           trace_ctx=ctx.attrs.get("trace_ctx"))

    def _dispatch_servant(self, ctx: RequestContext):
        """Pipeline handler: look the servant up and run the operation.

        Returns the operation's outcome (the pipeline drives generator
        operations); every failure propagates to the chain, where the
        error envelope maps it to a CORBA system or user exception."""
        req: GiopRequest = ctx.request
        servant = self.adapter.servant(req.object_key)
        op = getattr(servant, req.operation, None)
        if op is None or req.operation.startswith("_") or not callable(op):
            raise BadOperation(
                f"{type(servant).__name__} has no operation "
                f"{req.operation!r}")
        return op(*req.args, **req.kwargs)
