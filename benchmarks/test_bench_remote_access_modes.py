"""A7 — remote access by middleware relay vs request redirection.

§4.1 lists "request redirection" among the auxiliary handlers next to
"remote application proxy invocations (using CORBA)"; §2.2 argues for the
hybrid architecture where clients always talk to the closest server.
Measured both ways:

- a single steering engineer: the two modes are nearly equivalent — the
  CORBA relay hop and the redirected client's WAN polling cost about the
  same per command;
- a *collaborating group* at the remote site: redirection degenerates to
  the centralized deployment of E4 (every client's every poll crosses the
  WAN), while the relay keeps one update push per server.  This is the
  quantitative case for the paper's hybrid architecture.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import steering_client, update_watching_client
from repro.core.deployment import build_collaboratory
from repro.metrics import LatencyRecorder
from repro.net.costs import LinkSpec

DURATION = 20.0
WAN = 0.030
WATCHERS = 4


def _build(remote_access: str, client_hosts: int = 1):
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=client_hosts,
                                 spec=LinkSpec(wan_latency=WAN),
                                 remote_access=remote_access)
    collab.run_bootstrap()
    from repro.apps import SyntheticApp
    from repro.steering import AppConfig
    app = collab.add_app(
        1, SyntheticApp, "target", acl={"bench": "write"},
        config=AppConfig(steps_per_phase=1, step_time=0.005,
                         interaction_window=0.25,
                         command_service_time=0.002))
    collab.sim.run(until=collab.sim.now + 2.0)
    return collab, app


def _steer_run(remote_access: str) -> dict:
    collab, app = _build(remote_access)
    portal = collab.add_portal(0)
    recorder = LatencyRecorder(collab.sim)
    collab.net.trace.reset()
    collab.sim.spawn(steering_client(
        portal, app.app_id, user="bench", duration=DURATION,
        command_interval=0.5, recorder=recorder, poll_interval=0.05))
    collab.sim.run(until=collab.sim.now + DURATION + 2.0)
    stats = recorder.stats("steer_rtt")
    relayed = sum(s.stats["remote_commands_relayed"]
                  for s in collab.servers.values())
    return {
        "workload": "1 steerer",
        "mode": remote_access,
        "mean_steer_rtt_ms": stats.mean * 1e3,
        "commands": stats.count,
        "corba_relays": relayed,
        "wan_messages": collab.net.trace.wan_messages,
    }


def _watch_run(remote_access: str) -> dict:
    collab, app = _build(remote_access, client_hosts=WATCHERS)
    recorder = LatencyRecorder(collab.sim)
    collab.net.trace.reset()
    for _ in range(WATCHERS):
        portal = collab.add_portal(0)
        collab.sim.spawn(update_watching_client(
            portal, app.app_id, user="bench", duration=DURATION,
            poll_interval=0.25, recorder=recorder))
    collab.sim.run(until=collab.sim.now + DURATION + 2.0)
    return {
        "workload": f"{WATCHERS} watchers",
        "mode": remote_access,
        "mean_steer_rtt_ms": recorder.stats("update_latency").mean * 1e3,
        "commands": recorder.stats("update_latency").count,
        "corba_relays": 0,
        "wan_messages": collab.net.trace.wan_messages,
    }


def test_bench_a7_relay_vs_redirect(benchmark):
    rows = run_once(benchmark, lambda: (
        [_steer_run(m) for m in ("relay", "redirect")]
        + [_watch_run(m) for m in ("relay", "redirect")]))
    steer_relay, steer_redirect, watch_relay, watch_redirect = rows
    print_experiment(
        "A7 (ablation): remote access — middleware relay vs request "
        "redirection",
        "auxiliary services such as ... request redirection, and remote "
        "application proxy invocations (using CORBA)",
        rows,
        ["workload", "mode", "mean_steer_rtt_ms", "commands",
         "corba_relays", "wan_messages"],
        finding=_finding(rows),
    )
    # single steerer: the modes are close (within 30%); the paths differ
    ratio = (steer_redirect["mean_steer_rtt_ms"]
             / steer_relay["mean_steer_rtt_ms"])
    assert 0.7 < ratio < 1.3
    assert steer_relay["corba_relays"] > 0
    assert steer_redirect["corba_relays"] == 0
    # collaborating group: redirection degenerates to centralized access —
    # the hybrid architecture's WAN advantage disappears (cf. E4)
    assert (watch_redirect["wan_messages"]
            > 2 * watch_relay["wan_messages"])


def _finding(rows) -> str:
    steer_relay, steer_redirect, watch_relay, watch_redirect = rows
    return (f"1 steerer: {steer_relay['mean_steer_rtt_ms']:.0f}ms relay vs "
            f"{steer_redirect['mean_steer_rtt_ms']:.0f}ms redirect (a "
            f"wash); {WATCHERS} watchers: redirect puts "
            f"{watch_redirect['wan_messages'] / max(1, watch_relay['wan_messages']):.1f}x "
            f"more messages on the WAN — the case for the hybrid "
            f"architecture")
