"""Tests for topology builders, traffic tracing, and the cost model."""

import pytest

from repro.net import CostModel, TrafficTrace, build_lan, build_multi_domain, build_star
from repro.net.costs import LinkSpec
from repro.net.network import Network
from repro.sim import Simulator


def test_build_star_shape():
    sim = Simulator()
    net, hub, leaves = build_star(sim, n_leaves=5)
    assert hub.name == "hub"
    assert len(leaves) == 5
    assert len(net.links) == 5
    for leaf in leaves:
        assert net.route(leaf.name, "hub") == [leaf.name, "hub"]


def test_build_lan_names_and_links():
    sim = Simulator()
    net = Network(sim)
    dom = build_lan(sim, net, "rutgers", n_app_hosts=2, n_client_hosts=3)
    assert dom.server.name == "rutgers-server"
    assert [h.name for h in dom.app_hosts] == ["rutgers-app0", "rutgers-app1"]
    assert len(dom.client_hosts) == 3
    # every host one LAN hop from the server
    for h in dom.app_hosts + dom.client_hosts:
        assert len(net.route(h.name, dom.server.name)) == 2


def test_build_multi_domain_wan_mesh():
    sim = Simulator()
    net, domains = build_multi_domain(sim, n_domains=3, apps_per_domain=1,
                                      clients_per_domain=1)
    assert len(domains) == 3
    # servers pairwise linked by WAN
    wan_links = [l for l in net.links.values() if l.kind == "wan"]
    assert len(wan_links) == 3
    # cross-domain route goes through the two servers
    path = net.route("d0-client0", "d1-client0")
    assert "d0-server" in path and "d1-server" in path


def test_multi_domain_custom_names():
    sim = Simulator()
    net, domains = build_multi_domain(
        sim, 2, 1, 1, names=["rutgers", "utaustin"])
    assert domains[0].server.name == "rutgers-server"
    assert domains[1].server.name == "utaustin-server"


def test_multi_domain_validates_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_multi_domain(sim, 0, 1, 1)
    with pytest.raises(ValueError):
        build_multi_domain(sim, 2, 1, 1, names=["only-one"])


def test_trace_counts_wan_vs_lan():
    sim = Simulator()
    net, domains = build_multi_domain(sim, 2, 1, 1)
    src = domains[0].client_hosts[0].bind(1)
    local = domains[0].server.bind(80)
    remote = domains[1].server.bind(80)

    def drain(sim, ep, n):
        for _ in range(n):
            yield ep.recv()

    sim.spawn(drain(sim, local, 1))
    sim.spawn(drain(sim, remote, 1))
    src.send(domains[0].server.name, 80, "local-req")
    src.send(domains[1].server.name, 80, "remote-req")
    sim.run()
    t = net.trace
    # local: 1 LAN hop; remote: 1 LAN hop + 1 WAN hop
    assert t.wan_messages == 1
    assert t.lan_messages == 2
    assert t.wan_bytes > 0
    snap = t.snapshot()
    assert snap["total_messages"] == 3


def test_trace_reset():
    trace = TrafficTrace()
    sim = Simulator()
    net = Network(sim, trace=trace)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 0.001)
    src = net.hosts["a"].bind(1)
    net.hosts["b"].bind(2)
    src.send("b", 2, "x")
    sim.run()
    assert trace.total.messages == 1
    trace.reset()
    assert trace.total.messages == 0
    assert trace.wan_messages == 0


def test_cost_model_protocol_asymmetry():
    cm = CostModel()
    size = 512
    # The paper's trade-off: servlet/HTTP handling costs more than the
    # custom TCP channel; CORBA sits in between with marshalling overhead.
    assert cm.http_cost(size) > cm.corba_cost(size) > cm.tcp_cost(size)


def test_cost_model_scales_with_size():
    cm = CostModel()
    assert cm.tcp_cost(10_000) > cm.tcp_cost(10)
    assert cm.http_cost(10_000) > cm.http_cost(10)
    assert cm.corba_cost(10_000) > cm.corba_cost(10)


def test_cost_model_session_surcharge():
    cm = CostModel()
    assert cm.http_cost(100, new_session=True) == pytest.approx(
        cm.http_cost(100) + cm.http_session_setup_cost)


def test_linkspec_defaults_are_sane():
    spec = LinkSpec()
    assert spec.wan_latency > spec.lan_latency
    assert spec.lan_bandwidth > 0
