"""Traffic accounting.

Counts every frame on every hop, split by link kind (LAN/WAN) and by wire
channel.  Experiment E4 reads ``wan_messages`` / ``wan_bytes`` to show the
paper's claim that the peer-to-peer server network sends *one* message to a
remote server instead of one per remote client (§5.2.3).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.network import Frame

#: how many distinct trace ids keep per-trace traffic counters (LRU)
MAX_TRACE_IDS = 256


@dataclass
class LinkCounter:
    """Per-link totals."""

    messages: int = 0
    bytes: int = 0


class TrafficTrace:
    """Aggregates per-link, per-kind, and per-channel traffic totals.

    Frames stamped with a trace context (by the tracer, via
    ``Frame.trace_ctx``) are additionally counted per trace id, so a
    request's hop count and wire bytes can be correlated with its span
    tree.  The per-trace table is LRU-bounded at :data:`MAX_TRACE_IDS` —
    long runs cannot grow it without limit.
    """

    def __init__(self) -> None:
        self.per_link: Dict[Tuple[str, str], LinkCounter] = defaultdict(LinkCounter)
        self.per_kind: Dict[str, LinkCounter] = defaultdict(LinkCounter)
        self.per_channel: Dict[str, LinkCounter] = defaultdict(LinkCounter)
        self.total = LinkCounter()
        #: frames that reached an unbound destination port
        self.dropped = LinkCounter()
        #: per-trace-id hop totals, most recently active last (bounded)
        self.per_trace: "OrderedDict[int, LinkCounter]" = OrderedDict()

    def for_trace(self, trace_id: int) -> LinkCounter:
        """The (possibly evicted → zeroed) hop totals of one trace."""
        return self.per_trace.get(trace_id, LinkCounter())

    def _trace_counter(self, trace_id: int) -> LinkCounter:
        counter = self.per_trace.get(trace_id)
        if counter is None:
            counter = self.per_trace[trace_id] = LinkCounter()
            while len(self.per_trace) > MAX_TRACE_IDS:
                self.per_trace.popitem(last=False)
        else:
            self.per_trace.move_to_end(trace_id)
        return counter

    def record_dropped(self, frame: "Frame") -> None:
        """Count one undeliverable frame (destination port unbound)."""
        self.dropped.messages += 1
        self.dropped.bytes += frame.size

    def record(self, link: "Link", frame: "Frame") -> None:
        """Count one frame crossing one link."""
        key = tuple(sorted(link.ends))
        counters = [self.per_link[key], self.per_kind[link.kind],
                    self.per_channel[frame.channel], self.total]
        if frame.trace_ctx is not None:
            counters.append(self._trace_counter(frame.trace_ctx.trace_id))
        for counter in counters:
            counter.messages += 1
            counter.bytes += frame.size

    # -- convenience views used by the benchmarks -------------------------
    @property
    def wan_messages(self) -> int:
        return self.per_kind["wan"].messages

    @property
    def wan_bytes(self) -> int:
        return self.per_kind["wan"].bytes

    @property
    def lan_messages(self) -> int:
        return self.per_kind["lan"].messages

    @property
    def lan_bytes(self) -> int:
        return self.per_kind["lan"].bytes

    def reset(self) -> None:
        """Zero all counters (between benchmark phases)."""
        self.per_link.clear()
        self.per_kind.clear()
        self.per_channel.clear()
        self.total = LinkCounter()
        self.dropped = LinkCounter()
        self.per_trace.clear()

    def snapshot(self) -> dict:
        """A plain-dict summary for reports."""
        return {
            "traced_trace_ids": len(self.per_trace),
            "total_messages": self.total.messages,
            "total_bytes": self.total.bytes,
            "wan_messages": self.wan_messages,
            "wan_bytes": self.wan_bytes,
            "lan_messages": self.lan_messages,
            "lan_bytes": self.lan_bytes,
            "dropped_messages": self.dropped.messages,
            "dropped_bytes": self.dropped.bytes,
            "by_channel": {ch: (c.messages, c.bytes)
                           for ch, c in sorted(self.per_channel.items())},
        }
