"""A small self-describing binary serializer.

This is the reproduction's stand-in for Java object serialization (the
servlet tier) and CORBA CDR (the server-to-server tier).  It serves two
purposes:

1. **Byte accounting** — every message that crosses the simulated network is
   charged ``encoded_size(msg)`` bytes, so bandwidth and traffic experiments
   (E3, E4, E11) measure something real rather than guessed constants.
2. **A real codec** — ``decode(encode(x)) == x`` round-trips the full value
   model, which property tests verify with hypothesis.

Format: one type tag byte, then a big-endian payload.  Containers carry a
4-byte element count.  Strings are UTF-8 with a 4-byte length.  NumPy arrays
carry dtype + shape + raw bytes.  Registered application types (messages)
carry their registered name and a dict of fields — comparable in framing
overhead to Java serialization's class descriptors.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, Tuple

import numpy as np

# type tag bytes
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_BIGINT = b"J"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"t"
_T_DICT = b"M"
_T_NDARRAY = b"A"
_T_OBJECT = b"O"


class SerializationError(Exception):
    """Raised when a value cannot be encoded or a buffer cannot be decoded."""


# Registered application types: name -> (class, to_fields, from_fields)
_registry: Dict[str, Tuple[type, Callable[[Any], dict], Callable[[dict], Any]]] = {}
_by_class: Dict[type, str] = {}


def register_codec(cls: type, name: str | None = None,
                   to_fields: Callable[[Any], dict] | None = None,
                   from_fields: Callable[[dict], Any] | None = None) -> type:
    """Register ``cls`` so instances can cross the wire.

    Defaults assume a ``__dict__``-backed object reconstructable via
    ``cls.__new__`` + attribute assignment (our message classes).  Usable as
    a decorator.
    """
    key = name or cls.__qualname__
    if to_fields is None:
        to_fields = lambda obj: dict(vars(obj))
    if from_fields is None:
        def from_fields(fields: dict, _cls=cls) -> Any:
            obj = _cls.__new__(_cls)
            obj.__dict__.update(fields)
            return obj
    if key in _registry and _registry[key][0] is not cls:
        raise SerializationError(f"codec name {key!r} already registered")
    _registry[key] = (cls, to_fields, from_fields)
    _by_class[cls] = key
    return cls


def _pack_len(n: int) -> bytes:
    return struct.pack(">I", n)


def encode(value: Any) -> bytes:
    """Encode ``value`` to bytes."""
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _encode_into(value: Any, out: list) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if -(2 ** 63) <= value < 2 ** 63:
            out.append(_T_INT)
            out.append(struct.pack(">q", value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                                 "big", signed=True)
            out.append(_T_BIGINT)
            out.append(_pack_len(len(raw)))
            out.append(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out.append(_pack_len(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out.append(_pack_len(len(value)))
        out.append(bytes(value))
    elif isinstance(value, list):
        out.append(_T_LIST)
        out.append(_pack_len(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out.append(_pack_len(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.append(_pack_len(len(value)))
        for k, v in value.items():
            _encode_into(k, out)
            _encode_into(v, out)
    elif isinstance(value, np.ndarray):
        dtype_name = value.dtype.str.encode("ascii")
        raw = np.ascontiguousarray(value).tobytes()
        out.append(_T_NDARRAY)
        out.append(_pack_len(len(dtype_name)))
        out.append(dtype_name)
        out.append(_pack_len(value.ndim))
        for dim in value.shape:
            out.append(_pack_len(dim))
        out.append(_pack_len(len(raw)))
        out.append(raw)
    elif isinstance(value, (np.integer,)):
        _encode_into(int(value), out)
    elif isinstance(value, (np.floating,)):
        _encode_into(float(value), out)
    elif type(value) in _by_class:
        key = _by_class[type(value)]
        _cls, to_fields, _from = _registry[key]
        raw_key = key.encode("utf-8")
        out.append(_T_OBJECT)
        out.append(_pack_len(len(raw_key)))
        out.append(raw_key)
        _encode_into(to_fields(value), out)
    else:
        raise SerializationError(
            f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode(buffer: bytes) -> Any:
    """Decode bytes produced by :func:`encode` back to a value."""
    value, offset = _decode_from(buffer, 0)
    if offset != len(buffer):
        raise SerializationError(
            f"{len(buffer) - offset} trailing bytes after decoded value")
    return value


def _read_len(buf: bytes, off: int) -> Tuple[int, int]:
    if off + 4 > len(buf):
        raise SerializationError("truncated length field")
    return struct.unpack_from(">I", buf, off)[0], off + 4


def _decode_from(buf: bytes, off: int) -> Tuple[Any, int]:
    if off >= len(buf):
        raise SerializationError("truncated buffer (no tag)")
    tag = buf[off:off + 1]
    off += 1
    if tag == _T_NONE:
        return None, off
    if tag == _T_TRUE:
        return True, off
    if tag == _T_FALSE:
        return False, off
    if tag == _T_INT:
        if off + 8 > len(buf):
            raise SerializationError("truncated int")
        return struct.unpack_from(">q", buf, off)[0], off + 8
    if tag == _T_BIGINT:
        n, off = _read_len(buf, off)
        if off + n > len(buf):
            raise SerializationError("truncated bigint")
        return int.from_bytes(buf[off:off + n], "big", signed=True), off + n
    if tag == _T_FLOAT:
        if off + 8 > len(buf):
            raise SerializationError("truncated float")
        return struct.unpack_from(">d", buf, off)[0], off + 8
    if tag == _T_STR:
        n, off = _read_len(buf, off)
        if off + n > len(buf):
            raise SerializationError("truncated string")
        return buf[off:off + n].decode("utf-8"), off + n
    if tag == _T_BYTES:
        n, off = _read_len(buf, off)
        if off + n > len(buf):
            raise SerializationError("truncated bytes")
        return buf[off:off + n], off + n
    if tag in (_T_LIST, _T_TUPLE):
        n, off = _read_len(buf, off)
        items = []
        for _ in range(n):
            item, off = _decode_from(buf, off)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), off
    if tag == _T_DICT:
        n, off = _read_len(buf, off)
        result = {}
        for _ in range(n):
            k, off = _decode_from(buf, off)
            v, off = _decode_from(buf, off)
            result[k] = v
        return result, off
    if tag == _T_NDARRAY:
        n, off = _read_len(buf, off)
        dtype = np.dtype(buf[off:off + n].decode("ascii"))
        off += n
        ndim, off = _read_len(buf, off)
        shape = []
        for _ in range(ndim):
            dim, off = _read_len(buf, off)
            shape.append(dim)
        nbytes, off = _read_len(buf, off)
        if off + nbytes > len(buf):
            raise SerializationError("truncated ndarray payload")
        arr = np.frombuffer(buf[off:off + nbytes], dtype=dtype).reshape(shape)
        return arr.copy(), off + nbytes
    if tag == _T_OBJECT:
        n, off = _read_len(buf, off)
        key = buf[off:off + n].decode("utf-8")
        off += n
        fields, off = _decode_from(buf, off)
        if key not in _registry:
            raise SerializationError(f"unknown object type {key!r}")
        _cls, _to, from_fields = _registry[key]
        return from_fields(fields), off
    raise SerializationError(f"unknown type tag {tag!r} at offset {off - 1}")


def encoded_size(value: Any) -> int:
    """Number of bytes :func:`encode` would produce for ``value``."""
    return len(encode(value))
