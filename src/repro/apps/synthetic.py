"""A configurable synthetic application for benchmarks.

No science — just a counter, a payload of adjustable size, and steerable
knobs, so experiments can sweep update sizes and compute cadences without
numerical noise.
"""

from __future__ import annotations

from typing import Optional

from repro.steering import (
    Actuator,
    Sensor,
    SteerableApplication,
    SteerableParameter,
)


class SyntheticApp(SteerableApplication):
    """Benchmark workload application.

    ``payload_floats`` controls the size of each periodic update (a list of
    floats), so the wire cost of the MainChannel is a free experimental
    variable.
    """

    def __init__(self, host, name, server_host, *, payload_floats: int = 16,
                 **kwargs) -> None:
        self.payload_floats = payload_floats
        self.counter = 0
        self.marks: list = []
        super().__init__(host, name, server_host, **kwargs)

    def setup(self) -> None:
        self.gain = self.control.add_parameter(SteerableParameter(
            "gain", 1.0, minimum=0.0, maximum=100.0,
            description="multiplier applied to the counter"))
        self.control.add_parameter(SteerableParameter(
            "bias", 0, description="integer offset"))
        self.control.add_sensor(Sensor(
            "counter", lambda: self.counter, monitored=True,
            description="steps taken"))
        self.control.add_sensor(Sensor(
            "signal", self._signal, monitored=True,
            description="gain * counter + bias"))
        self.control.add_actuator(Actuator(
            "mark", self._mark, description="record a mark in the app"))

    def _signal(self) -> float:
        return (self.gain.value * self.counter
                + self.control.parameter("bias").value)

    def _mark(self, label: str = "") -> dict:
        self.marks.append((self.step_index, label))
        return {"marks": len(self.marks)}

    def step(self, index: int) -> None:
        self.counter += 1

    def update_payload(self) -> dict:
        payload = super().update_payload()
        payload["series"] = [float(self.counter + i)
                             for i in range(self.payload_floats)]
        return payload
