"""ORB exception hierarchy (the subset of CORBA system exceptions we need)."""

from __future__ import annotations


class OrbError(Exception):
    """Base class for all ORB-level failures."""


class ObjectNotFound(OrbError):
    """The object key (or name) does not resolve to an active servant."""


class BadOperation(OrbError):
    """The servant has no such operation (CORBA BAD_OPERATION)."""


class CommFailure(OrbError):
    """The invocation could not complete (timeout / unreachable peer)."""


class RemoteException(OrbError):
    """The servant raised; the original error crosses the wire as text.

    CORBA user exceptions would be typed; our mini-ORB forwards the remote
    exception class name and message, which is all the middleware needs.
    """

    def __init__(self, exc_type: str, message: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.message = message
