"""E7 — §7: "We are also measuring the overheads incurred for
application/service discovery" — plus ablation A3, the paper's trader
implemented *on top of* the naming service (§5.2.1).

Measured: (a) a trader query for service-id DISCOVER as the number of
registered servers grows, (b) a naming resolve of one application id, and
(c) an invocation through an already-cached reference.  The shape: trader
cost grows with registry size, naming resolve is flat, cached references
are cheapest — which is why the middleware caches CorbaProxy references.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.core.deployment import build_collaboratory
from repro.metrics import LatencyRecorder

SWEEP = (2, 4, 8, 16)
REPEATS = 20


def _discovery_run(n_domains: int) -> dict:
    collab = build_collaboratory(n_domains, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    from repro.bench.workload import make_app_farm
    apps = make_app_farm(collab, 1, domain_index=0, user="bench")
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    server = collab.server_of(min(1, n_domains - 1))
    recorder = LatencyRecorder(collab.sim)

    def probe():
        from repro.core.server import SERVICE_ID
        # warm resolution so "cached" is truly cached
        ref = yield from server.registry.remote_proxy_ref(app_id)
        for _ in range(REPEATS):
            recorder.start("trader_query", 0)
            yield from server.orb.invoke(server.trader_ref, "query",
                                         SERVICE_ID)
            recorder.stop("trader_query", 0)
            recorder.start("naming_resolve", 0)
            yield from server.orb.invoke(server.naming_ref, "resolve",
                                         app_id)
            recorder.stop("naming_resolve", 0)
            recorder.start("cached_ref_call", 0)
            yield from server.orb.invoke(ref, "get_status")
            recorder.stop("cached_ref_call", 0)

    proc = collab.sim.spawn(probe())
    collab.sim.run(until=proc)
    return {
        "n_servers": n_domains,
        "trader_offers": collab.trader.offer_count(),
        "trader_query_ms": recorder.stats("trader_query").mean * 1e3,
        "naming_resolve_ms": recorder.stats("naming_resolve").mean * 1e3,
        "cached_ref_call_ms": recorder.stats("cached_ref_call").mean * 1e3,
    }


def test_bench_e7_discovery_overhead(benchmark):
    rows = run_once(benchmark,
                    lambda: [_discovery_run(n) for n in SWEEP])
    print_experiment(
        "E7: service-discovery overheads (trader / naming / cached ref)",
        "measuring the overheads incurred for application/service discovery",
        rows,
        ["n_servers", "trader_offers", "trader_query_ms",
         "naming_resolve_ms", "cached_ref_call_ms"],
        finding=_finding(rows),
    )
    first, last = rows[0], rows[-1]
    # trader cost grows with the number of registered offers
    assert last["trader_query_ms"] > first["trader_query_ms"]
    # naming resolve stays roughly flat (hash lookup)
    assert last["naming_resolve_ms"] < first["naming_resolve_ms"] * 1.5
    # cached references beat both discovery paths at every size
    for row in rows:
        assert row["cached_ref_call_ms"] <= row["naming_resolve_ms"] * 1.5


def _finding(rows) -> str:
    f, l = rows[0], rows[-1]
    return (f"trader query {f['trader_query_ms']:.1f}ms→"
            f"{l['trader_query_ms']:.1f}ms from {f['n_servers']} to "
            f"{l['n_servers']} servers; naming flat at "
            f"~{l['naming_resolve_ms']:.1f}ms; cached refs cheapest")
