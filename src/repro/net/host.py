"""Hosts and endpoints.

A :class:`Host` is a named machine with a CPU and a set of ports.  Binding a
port yields an :class:`Endpoint` — the socket-like object all higher layers
(channels, ORB, HTTP) are built on.

The CPU is a fused counted FIFO rather than a :class:`~repro.sim.Resource`:
an uncontended ``use_cpu`` yields exactly one timeout (the service time)
instead of a request-grant round trip followed by a timeout, halving the
process resumptions on the single hottest service point in every scenario.
Queueing behaviour — FIFO grants, ``cpu_capacity`` concurrent slots — is
unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Optional

from repro.sim import SimEvent, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Frame, Network
    from repro.sim import Simulator


class Host:
    """A machine in the simulated network.

    ``cpu_capacity`` is the number of requests the host can service
    concurrently (the paper's servlet engine worker pool); service *times*
    come from the :class:`~repro.net.costs.CostModel`.
    """

    def __init__(self, sim: "Simulator", name: str, cpu_capacity: int = 1,
                 domain: str = "default") -> None:
        self.sim = sim
        self.name = name
        self.domain = domain
        self.cpu_capacity = cpu_capacity
        self._cpu_free = cpu_capacity
        #: FIFO of grant events for jobs waiting on a busy CPU
        self._cpu_waiters: Deque[SimEvent] = deque()
        self.ports: Dict[int, Store] = {}
        self.network: Optional["Network"] = None
        #: cumulative busy-time accounting, for utilisation reports
        self.busy_time = 0.0

    def bind(self, port: int) -> "Endpoint":
        """Reserve ``port`` and return its endpoint."""
        if port in self.ports:
            raise ValueError(f"port {port} already bound on {self.name}")
        inbox = Store(self.sim)
        self.ports[port] = inbox
        return Endpoint(self, port, inbox)

    def unbind(self, port: int) -> None:
        """Release a bound port."""
        self.ports.pop(port, None)

    def use_cpu(self, duration: float):
        """Process: occupy one CPU slot for ``duration`` of service time.

        This is the queueing point that produces the paper's saturation
        behaviour: when offered load exceeds CPU capacity, waiting time —
        and thus client-visible latency — grows without bound.
        """
        if self._cpu_free > 0:
            self._cpu_free -= 1
        else:
            gate = SimEvent(self.sim)
            self._cpu_waiters.append(gate)
            try:
                yield gate
            except BaseException:
                if not gate.triggered:
                    # Interrupted while still queued: withdraw the claim.
                    self._cpu_waiters.remove(gate)
                else:
                    # Interrupted at the grant instant: the slot was already
                    # handed to us, pass it on.
                    self._cpu_release()
                raise
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
            self.busy_time += duration
        finally:
            self._cpu_release()

    def _cpu_release(self) -> None:
        # Hand the slot straight to the next waiter (FIFO) or free it.
        if self._cpu_waiters:
            self._cpu_waiters.popleft().succeed()
        else:
            self._cpu_free += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Host {self.name} domain={self.domain}>"


class Endpoint:
    """A bound (host, port) pair with a receive queue.

    ``send`` is fire-and-forget (delivery is handled by the network);
    ``recv`` blocks the calling process until a frame arrives.
    """

    def __init__(self, host: Host, port: int, inbox: Store) -> None:
        self.host = host
        self.port = port
        self.inbox = inbox

    @property
    def address(self) -> tuple:
        """The ``(host_name, port)`` address of this endpoint."""
        return (self.host.name, self.port)

    def send(self, dst_host: str, dst_port: int, payload: Any,
             channel: str = "main", trace_ctx: Any = None) -> "Frame":
        """Hand ``payload`` to the network for delivery (returns the frame)."""
        if self.host.network is None:
            raise RuntimeError(f"host {self.host.name} is not attached "
                               f"to a network")
        return self.host.network.send(self.host.name, self.port,
                                      dst_host, dst_port, payload, channel,
                                      trace_ctx=trace_ctx)

    def recv(self):
        """Event that fires with the next delivered :class:`Frame`."""
        return self.inbox.get()

    def try_recv(self) -> Optional["Frame"]:
        """Non-blocking receive; ``None`` if nothing is queued."""
        return self.inbox.try_get()

    def pending(self) -> int:
        """Number of frames waiting in the inbox."""
        return len(self.inbox)

    def close(self) -> None:
        """Unbind the port."""
        self.host.unbind(self.port)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Endpoint {self.host.name}:{self.port}>"
