"""SpanStore analysis (trees, critical path, bounding) and exporters."""

import json

from repro.obs import (
    Tracer,
    export_chrome,
    export_jsonl,
    load_jsonl,
    to_chrome_trace,
    tree_signature,
)


def make_clock_tracer():
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], scope=lambda: "p")
    return tracer, clock


def test_tree_reconstruction_orders_children_by_start():
    tracer, clock = make_clock_tracer()
    root = tracer.start_span("root")
    b = tracer.record_span("B", 6.0, 9.0, parent=root.context())
    tracer.record_span("A", 1.0, 4.0, parent=root.context())
    tracer.record_span("g", 6.5, 8.5, parent=b.context())
    clock["now"] = 10.0
    tracer.finish(root)

    (tree,) = tracer.store.tree(root.trace_id)
    assert tree.span.op == "root"
    assert [c.span.op for c in tree.children] == ["A", "B"]
    assert [c.span.op for c in tree.children[1].children] == ["g"]
    walked = [(depth, node.span.op) for depth, node in tree.walk()]
    assert walked == [(0, "root"), (1, "A"), (1, "B"), (2, "g")]


def test_critical_path_attributes_gaps_to_parent():
    tracer, clock = make_clock_tracer()
    root = tracer.start_span("root")
    tracer.record_span("A", 1.0, 4.0, parent=root.context())
    b = tracer.record_span("B", 6.0, 9.0, parent=root.context())
    tracer.record_span("g", 6.5, 8.5, parent=b.context())
    clock["now"] = 10.0
    tracer.finish(root)

    path = tracer.store.critical_path(root.trace_id)
    assert [(seg.span.op, seg.start, seg.end) for seg in path] == [
        ("root", 0.0, 1.0),
        ("A", 1.0, 4.0),
        ("root", 4.0, 6.0),
        ("B", 6.0, 6.5),
        ("g", 6.5, 8.5),
        ("B", 8.5, 9.0),
        ("root", 9.0, 10.0),
    ]
    # segments tile the root's duration exactly
    assert sum(seg.duration for seg in path) == root.duration


def test_trace_of_root_and_servers():
    tracer, clock = make_clock_tracer()
    root = tracer.start_span("portal.command", server="client0")
    tracer.record_span("hop", 0.0, 1.0, parent=root.context(),
                       server="client0->s1")
    tracer.finish(root)
    store = tracer.store
    assert store.trace_of_root("portal.command") == root.trace_id
    assert store.trace_of_root("hop") is None  # not a root op
    assert store.servers(root.trace_id) == ["client0", "client0->s1"]


def test_store_bounds_spans_and_counts_drops():
    tracer = Tracer(clock=lambda: 0.0, scope=lambda: "p", max_spans=3)
    for i in range(5):
        tracer.finish(tracer.start_span(f"op-{i}"))
    assert len(tracer.store) == 3
    assert tracer.store.dropped == 2
    assert tracer.store.snapshot()["dropped"] == 2


def test_jsonl_round_trip_preserves_the_tree(tmp_path):
    tracer, clock = make_clock_tracer()
    root = tracer.start_span("root", plane="http", server="s1",
                             attrs={"request_id": 7})
    b = tracer.record_span("B", 6.0, 9.0, parent=root.context(),
                           plane="orb", server="s2")
    tracer.record_span("g", 6.5, 8.5, parent=b.context(), plane="proxy",
                       server="s2", attrs={"wan": True})
    clock["now"] = 10.0
    tracer.finish(root)

    path = tmp_path / "trace.jsonl"
    assert export_jsonl(tracer.store, str(path)) == 3
    loaded = load_jsonl(str(path))
    assert len(loaded) == 3
    assert (tree_signature(loaded, root.trace_id)
            == tree_signature(tracer.store, root.trace_id))
    # attrs survive the round trip too
    (g,) = [s for s in loaded.spans() if s.op == "g"]
    assert g.attrs == {"wan": True}


def test_chrome_trace_layout(tmp_path):
    tracer, clock = make_clock_tracer()
    root = tracer.start_span("root", plane="http", server="s1")
    tracer.record_span("B", 0.25, 0.75, parent=root.context(),
                       plane="orb", server="s2")
    clock["now"] = 1.0
    tracer.finish(root)

    doc = to_chrome_trace(tracer.store)
    events = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
    assert {ev["name"] for ev in events} == {"root", "B"}
    assert {m["args"]["name"] for m in meta} == {"s1", "s2"}
    # virtual seconds → microseconds
    (b,) = [ev for ev in events if ev["name"] == "B"]
    assert b["ts"] == 0.25e6 and b["dur"] == 0.5e6
    # distinct pids per server; one tid per trace
    assert len({ev["pid"] for ev in events}) == 2
    assert {ev["tid"] for ev in events} == {root.trace_id}

    path = tmp_path / "chrome.json"
    assert export_chrome(tracer.store, str(path)) == 2
    json.loads(path.read_text())  # valid JSON document
