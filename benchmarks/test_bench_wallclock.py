"""Wall-clock performance of the simulator itself (BENCH trajectory).

Unlike every other benchmark in this directory — which reproduces a *paper*
measurement in virtual time — this one measures the real seconds the
reproduction burns on the wire fast path, network delivery, broadcast
fan-out, and the end-to-end scenarios.  It writes ``BENCH_3.json`` at the
repository root so successive PRs leave a perf trajectory, and gates it
against the committed ``BENCH_1.json`` baseline: any shared benchmark more
than 25% slower fails the suite.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_wallclock.py --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

import time

from benchmarks.conftest import run_once

from repro.bench.wallclock import format_report, run_suite, write_report

#: committed baseline (PR 1) and where this PR's trajectory point lands
BASELINE_JSON = Path(__file__).resolve().parents[1] / "BENCH_1.json"
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_3.json"

#: shared benchmarks may not be more than 25% slower than the baseline
REGRESSION_THRESHOLD = 1.25


def test_wallclock_suite(benchmark):
    report = run_once(benchmark, lambda: run_suite(quick=False))
    print()
    print(format_report(report))
    write_report(str(BENCH_JSON), report)
    print(f"wrote {BENCH_JSON}")
    names = {entry["name"] for entry in report["benchmarks"]}
    assert "wire/encoded_size_update_64x64" in names
    assert "collab/broadcast_poll_30_subscribers" in names
    assert "e2e/E1_health_on_n10" in names
    assert "e2e/E1_n1000" in names
    assert all(entry["per_op_us"] > 0 for entry in report["benchmarks"])


def test_no_regression_vs_baseline():
    """The freshly-written BENCH_3.json must hold the BENCH_1.json line.

    Uses the same gate CI runs (``tools/check_bench_regression.py``): every
    benchmark present in both reports must be within the 25% threshold.
    Entries only in one report (new arms like ``e2e/E1_n1000``) are exempt.
    """
    import sys

    sys.path.insert(0, str(BASELINE_JSON.parent / "tools"))
    try:
        from check_bench_regression import main as gate
    finally:
        sys.path.pop(0)
    if not BENCH_JSON.exists():  # bench suite not run in this session
        import pytest
        pytest.skip("BENCH_3.json not generated (run test_wallclock_suite)")
    rc = gate(["--baseline", str(BASELINE_JSON),
               "--candidate", str(BENCH_JSON),
               "--threshold", str(REGRESSION_THRESHOLD)])
    assert rc == 0, "wall-clock regression vs BENCH_1.json (see output)"


def test_health_plane_overhead_under_5_percent(benchmark):
    """The always-on health plane must stay effectively free.

    Same E1 workload with the plane on and off; the on/off ratio of the
    per-arm minima bounds the plane's overhead.  The runs must be long
    enough (~0.7s here) that scheduler noise is small relative to the
    measured quantum — with short runs the fixed jitter alone exceeds
    the 5% ceiling.  The health plane is pure bookkeeping on timer
    events, so 5% is a generous ceiling.
    """
    from repro.bench.scenarios import run_app_scalability

    def one(enabled: bool) -> float:
        t0 = time.perf_counter()
        run_app_scalability(20, duration=30.0, health_enabled=enabled)
        return time.perf_counter() - t0

    def measure():
        # warm both arms first (lazy numpy percentile machinery, import
        # costs) so neither measured minimum carries one-time work, then
        # interleave rounds so drift hits both arms equally.  Minima only
        # converge downward, so keep adding rounds until the ratio settles
        # comfortably under the bound; a genuinely slow health plane stays
        # above it no matter how many rounds run.
        one(True), one(False)
        ons, offs = [], []
        for i in range(12):
            offs.append(one(False))
            ons.append(one(True))
            if i >= 2 and min(ons) / min(offs) < 1.04:
                break
        return min(ons), min(offs)

    with_health, without = run_once(benchmark, measure)
    ratio = with_health / without
    print(f"\nhealth plane wall-clock: on={with_health:.3f}s "
          f"off={without:.3f}s ratio={ratio:.3f}")
    assert ratio < 1.05, (
        f"health plane adds {100 * (ratio - 1):.1f}% wall-clock overhead")


def test_accounting_overhead_under_5_percent(benchmark):
    """The cost-attribution ledger must stay effectively free (ISSUE 10).

    Same interleaved-minima protocol as the health-plane gate: identical
    E1 workload with ``accounting_enabled`` on and off.  The attribution
    path is an interceptor scope, a handful of integer bumps, and a
    bounded sketch add per request — 5% is a generous ceiling.
    """
    from repro.bench.scenarios import run_app_scalability

    def one(enabled: bool) -> float:
        t0 = time.perf_counter()
        run_app_scalability(20, duration=30.0, accounting_enabled=enabled)
        return time.perf_counter() - t0

    def measure():
        one(True), one(False)
        ons, offs = [], []
        for i in range(12):
            offs.append(one(False))
            ons.append(one(True))
            if i >= 2 and min(ons) / min(offs) < 1.04:
                break
        return min(ons), min(offs)

    with_ledger, without = run_once(benchmark, measure)
    ratio = with_ledger / without
    print(f"\ncost ledger wall-clock: on={with_ledger:.3f}s "
          f"off={without:.3f}s ratio={ratio:.3f}")
    assert ratio < 1.05, (
        f"cost ledger adds {100 * (ratio - 1):.1f}% wall-clock overhead")
