"""Object adapter: the servant registry of one ORB."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.orb.errors import ObjectNotFound, OrbError
from repro.orb.reference import ObjectRef

_auto_keys = itertools.count(1)


class ObjectAdapter:
    """Maps object keys to live servant objects.

    A *servant* is any Python object; its public methods are the remotely
    invocable operations.  Methods may be plain (return a value) or
    generator functions (simulation processes that yield, e.g. to forward a
    request onward) — the ORB runs either transparently.
    """

    def __init__(self, host_name: str, port: int) -> None:
        self.host_name = host_name
        self.port = port
        self._servants: Dict[str, Any] = {}

    def activate(self, servant: Any, key: Optional[str] = None,
                 type_id: str = "") -> ObjectRef:
        """Register ``servant`` and return its reference."""
        if key is None:
            key = f"obj-{next(_auto_keys)}"
        if key in self._servants:
            raise OrbError(f"object key {key!r} already active")
        self._servants[key] = servant
        if not type_id:
            type_id = type(servant).__name__
        return ObjectRef(self.host_name, self.port, key, type_id)

    def deactivate(self, key: str) -> None:
        """Remove the servant behind ``key``."""
        if key not in self._servants:
            raise ObjectNotFound(f"no active object {key!r}")
        del self._servants[key]

    def servant(self, key: str) -> Any:
        """Look up the servant for ``key``."""
        try:
            return self._servants[key]
        except KeyError:
            raise ObjectNotFound(f"no active object {key!r}") from None

    def ref_for(self, key: str) -> ObjectRef:
        """Build a fresh reference for an already-active key."""
        servant = self.servant(key)
        return ObjectRef(self.host_name, self.port, key,
                         type(servant).__name__)

    @property
    def active_keys(self) -> list:
        return sorted(self._servants)

    def __contains__(self, key: str) -> bool:
        return key in self._servants

    def __len__(self) -> int:
        return len(self._servants)
