"""End-to-end integration: full client → server → application round trips."""

import pytest

from repro import AppConfig, PortalError, build_collaboratory, build_single_server
from repro.apps import SyntheticApp


def fast_config(**kw):
    """Snappy lifecycle so tests converge quickly in virtual time."""
    defaults = dict(steps_per_phase=2, step_time=0.01,
                    interaction_window=0.05, command_service_time=0.001)
    defaults.update(kw)
    return AppConfig(**defaults)


@pytest.fixture
def single():
    collab = build_single_server()
    collab.run_bootstrap()
    return collab


def run(collab, gen):
    proc = collab.sim.spawn(gen)
    return collab.sim.run(until=proc)


def test_app_registers_and_gets_id(single):
    app = single.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=fast_config())
    single.sim.run(until=2.0)
    assert app.registered
    assert app.app_id == f"{single.domains[0].server.name}#a1"


def test_login_lists_accessible_apps(single):
    single.add_app(0, SyntheticApp, "mine", acl={"alice": "write"},
                   config=fast_config())
    single.add_app(0, SyntheticApp, "not-mine", acl={"bob": "write"},
                   config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        apps = yield from portal.login("alice")
        return apps

    apps = run(single, scenario())
    assert [a["name"] for a in apps] == ["mine"]
    assert apps[0]["privilege"] == "write"


def test_unknown_user_login_rejected(single):
    single.add_app(0, SyntheticApp, "app", acl={"alice": "write"},
                   config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        try:
            yield from portal.login("mallory")
        except PortalError as exc:
            return exc.status

    assert run(single, scenario()) == 401


def test_full_steering_roundtrip(single):
    app = single.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        assert session.privilege == "write"
        lock = yield from session.acquire_lock()
        assert lock == "granted"
        new_value = yield from session.set_param("gain", 3.5)
        read_back = yield from session.get_param("gain")
        counter = yield from session.read_sensor("counter")
        return (new_value, read_back, counter)

    new_value, read_back, counter = run(single, scenario())
    assert new_value == 3.5
    assert read_back == 3.5
    assert counter > 0
    assert app.gain.value == 3.5


def test_read_user_cannot_steer(single):
    app = single.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        yield from portal.login("bob")
        session = yield from portal.open(app.app_id)
        value = yield from session.get_param("gain")  # reads are fine
        try:
            yield from session.set_param("gain", 9.0)
        except PortalError as exc:
            return (value, exc.status)

    value, status = run(single, scenario())
    assert value == 1.0
    assert status == 403  # forbidden without write privilege


def test_steering_without_lock_conflicts(single):
    app = single.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        try:
            yield from session.set_param("gain", 9.0)
        except PortalError as exc:
            return exc.status

    assert run(single, scenario()) == 409  # conflict: no lock held


def test_updates_arrive_via_poll(single):
    app = single.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)
        # Let the app push a few updates, then poll.
        yield portal.sim.timeout(1.0)
        yield from portal.poll(max_items=64)
        return len(portal.updates)

    assert run(single, scenario()) >= 2


def test_pause_and_resume(single):
    app = single.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        yield from session.pause()
        step_at_pause = app.step_index
        yield portal.sim.timeout(2.0)
        stuck = app.step_index
        yield from session.resume()
        yield portal.sim.timeout(1.0)
        return (step_at_pause, stuck, app.step_index)

    at_pause, stuck, after = run(single, scenario())
    assert stuck <= at_pause + 2  # paused: essentially no progress
    assert after > stuck  # resumed: progress again


def test_remote_app_via_peer_servers():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    app = collab.add_app(1, SyntheticApp, "remote-wave",
                         acl={"alice": "write"}, config=fast_config())
    collab.sim.run(until=3.0)
    assert app.registered
    portal = collab.add_portal(0)  # client in domain 0, app in domain 1

    def scenario():
        apps = yield from portal.login("alice")
        assert len(apps) == 1
        assert apps[0]["server"] == collab.domains[1].server.name
        session = yield from portal.open(app.app_id)
        lock = yield from session.acquire_lock()
        value = yield from session.set_param("gain", 7.0)
        # updates from the remote app should flow through the P2P push
        yield portal.sim.timeout(1.5)
        yield from portal.poll(max_items=64)
        return (lock, value, len(portal.updates))

    lock, value, n_updates = run(collab, scenario())
    assert lock == "granted"
    assert value == 7.0
    assert app.gain.value == 7.0
    assert n_updates >= 1


def test_collaboration_group_sees_responses(single):
    app = single.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=fast_config())
    single.sim.run(until=2.0)
    alice = single.add_portal(0)
    bob = single.add_portal(0)

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        yield from bob.open(app.app_id)
        yield from a_sess.acquire_lock()
        yield from a_sess.set_param("gain", 5.0)
        yield alice.sim.timeout(0.5)
        yield from bob.poll(max_items=64)
        # bob's portal saw alice's response through group sharing
        return len(bob._responses) + sum(
            1 for m in bob.notices if m.type_name() == "ResponseMessage")

    assert run(single, scenario()) >= 1


def test_chat_between_clients(single):
    app = single.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=fast_config())
    single.sim.run(until=2.0)
    alice = single.add_portal(0)
    bob = single.add_portal(0)

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        yield from bob.open(app.app_id)
        delivered = yield from a_sess.chat("hello bob")
        yield alice.sim.timeout(0.2)
        yield from bob.poll(max_items=64)
        return (delivered, [(m.author, m.text) for m in bob.chat_log])

    delivered, chats = run(single, scenario())
    assert delivered == 1
    assert chats == [("alice", "hello bob")]


def test_replay_interactions(single):
    app = single.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=fast_config())
    single.sim.run(until=2.0)
    portal = single.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        yield from session.set_param("gain", 2.0)
        yield from session.get_param("gain")
        records = yield from session.replay_interactions()
        return [r["command"] for r in records]

    commands = run(single, scenario())
    assert "set_param" in commands
    assert "get_param" in commands
