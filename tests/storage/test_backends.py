"""Unit tests for the storage media (memory and JSONL-on-disk)."""

import json

import pytest

from repro.storage import JsonlBackend, MemoryBackend, StorageError


@pytest.fixture(params=["memory", "jsonl"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        b = JsonlBackend(tmp_path)
        yield b
        b.close()


# ------------------------- interface contract ------------------------------

def test_append_and_entries_preserve_order(backend):
    for i in range(5):
        backend.append({"lsn": i + 1, "kind": "t", "data": {"i": i}})
    entries = backend.entries()
    assert [e["lsn"] for e in entries] == [1, 2, 3, 4, 5]
    assert backend.wal_len() == 5


def test_reset_wal_replaces_the_region(backend):
    for i in range(4):
        backend.append({"lsn": i + 1})
    backend.reset_wal([{"lsn": 4}])
    assert [e["lsn"] for e in backend.entries()] == [4]
    # still appendable after the rewrite
    backend.append({"lsn": 5})
    assert backend.wal_len() == 2


def test_snapshot_slot_roundtrip(backend):
    assert backend.load_snapshot() is None
    backend.save_snapshot({"lsn": 7, "state": {"locks": {}}})
    doc = backend.load_snapshot()
    assert doc == {"lsn": 7, "state": {"locks": {}}}


def test_clear_wipes_both_regions(backend):
    backend.append({"lsn": 1})
    backend.save_snapshot({"lsn": 1, "state": {}})
    backend.clear()
    assert backend.entries() == []
    assert backend.load_snapshot() is None


# ------------------------- JSONL specifics ---------------------------------

def test_jsonl_reopen_recovers_everything(tmp_path):
    b = JsonlBackend(tmp_path)
    b.append({"lsn": 1, "kind": "db.insert"})
    b.append({"lsn": 2, "kind": "locks.acquire"})
    b.save_snapshot({"lsn": 1, "state": {"db": {}}})
    b.close()
    reopened = JsonlBackend(tmp_path)
    assert [e["lsn"] for e in reopened.entries()] == [1, 2]
    assert reopened.load_snapshot()["lsn"] == 1
    reopened.close()


def test_jsonl_torn_tail_is_dropped(tmp_path):
    b = JsonlBackend(tmp_path)
    b.append({"lsn": 1})
    b.append({"lsn": 2})
    b.close()
    # simulate a crash mid-append: a half-written last line
    with open(tmp_path / JsonlBackend.WAL_NAME, "a",
              encoding="utf-8") as fh:
        fh.write('{"lsn": 3, "kind": "db.ins')
    reopened = JsonlBackend(tmp_path)
    assert [e["lsn"] for e in reopened.entries()] == [1, 2]
    reopened.close()


def test_jsonl_snapshot_replace_is_atomic(tmp_path):
    b = JsonlBackend(tmp_path)
    b.save_snapshot({"lsn": 1, "state": {"a": 1}})
    b.save_snapshot({"lsn": 2, "state": {"a": 2}})
    # no temp file left behind; the slot holds exactly the last doc
    leftovers = [p.name for p in tmp_path.iterdir()]
    assert sorted(leftovers) == [JsonlBackend.SNAPSHOT_NAME,
                                 JsonlBackend.WAL_NAME]
    with open(tmp_path / JsonlBackend.SNAPSHOT_NAME) as fh:
        assert json.load(fh)["lsn"] == 2
    b.close()


def test_jsonl_append_after_close_raises(tmp_path):
    b = JsonlBackend(tmp_path)
    b.close()
    with pytest.raises(StorageError):
        b.append({"lsn": 1})
