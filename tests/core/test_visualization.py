"""Tests for the visualization pool service."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.visualization import (
    VisualizationError,
    VisualizationService,
    ascii_render,
    downsample,
)


def test_downsample_1d_means():
    field = np.array([0.0, 0.0, 10.0, 10.0])
    view = downsample(field, 2)
    assert view.tolist() == [0.0, 10.0]


def test_downsample_1d_clamps_width():
    field = np.arange(4, dtype=float)
    view = downsample(field, 100)
    assert view.size == 4


def test_downsample_2d_shape_and_values():
    field = np.zeros((8, 8))
    field[:4, :4] = 4.0
    view = downsample(field, 2, 2)
    assert view.shape == (2, 2)
    assert view[0, 0] == pytest.approx(4.0)
    assert view[1, 1] == pytest.approx(0.0)


def test_downsample_rejects_3d():
    with pytest.raises(VisualizationError):
        downsample(np.zeros((2, 2, 2)), 2)


@settings(max_examples=100, deadline=None)
@given(st.integers(2, 200), st.integers(1, 40))
def test_downsample_preserves_mean_and_bounds(n, width):
    rng = np.random.default_rng(n)
    field = rng.normal(size=n)
    view = downsample(field, width)
    assert view.size == min(width, n)
    assert field.min() - 1e-9 <= view.min()
    assert view.max() <= field.max() + 1e-9
    if n % view.size == 0:  # equal blocks: mean preserved exactly
        assert view.mean() == pytest.approx(field.mean())


def test_ascii_render_shape_and_palette():
    view = np.array([[0.0, 1.0], [0.5, 0.25]])
    lines = ascii_render(view)
    assert len(lines) == 2
    assert all(len(line) == 2 for line in lines)
    assert lines[0][0] == " "  # minimum maps to the blank end
    assert lines[0][1] == "@"  # maximum maps to the dense end


def test_ascii_render_constant_field():
    lines = ascii_render(np.zeros((2, 3)))
    assert lines == ["   ", "   "]


def test_service_render_summary():
    svc = VisualizationService()
    field = np.linspace(0.0, 1.0, 1000)
    out = svc.render(field, width=10)
    assert out["view"].size == 10
    assert out["min"] == 0.0
    assert out["max"] == 1.0
    assert out["reduction"] == pytest.approx(100.0)
    assert svc.renders == 1


def test_service_render_validates():
    svc = VisualizationService()
    with pytest.raises(VisualizationError):
        svc.render(np.zeros(4), width=0)


def test_render_over_the_orb_saves_bytes():
    """The point of the pool service: the reduced view is much smaller on
    the wire than the full field."""
    from repro import build_single_server
    from repro.orb import ServiceOffer
    from repro.wire import encoded_size

    collab = build_single_server()
    collab.run_bootstrap()
    svc = VisualizationService()
    ref = collab.registry_orb.activate(svc, key="Viz")
    collab.trader.export(ServiceOffer(VisualizationService.SERVICE_ID, ref))
    server = collab.server_of(0)
    field = np.random.default_rng(0).normal(size=(64, 64))

    def scenario():
        out = yield from server.orb.invoke(ref, "render_ascii", field,
                                           width=16, height=8)
        return out

    out = collab.sim.run(until=collab.sim.spawn(scenario()))
    assert len(out["ascii"]) == 8
    assert out["reduction"] == pytest.approx(32.0)
    assert encoded_size(out["view"]) < encoded_size(field) / 20
