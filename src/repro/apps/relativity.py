"""Numerical-relativity stand-in: first-order wave system + constraint.

Real numerical-relativity codes (the Cactus workloads DISCOVER steered)
evolve hyperbolic systems and watch *constraint violations* to judge run
health, steering resolution/dissipation interactively.  This toy does the
same dance on the 1-D wave equation in first-order form (Π = ∂t φ,
Φ = ∂x φ) whose constraint C = Φ - ∂x φ should stay near zero; steerable
Kreiss–Oliger-style dissipation keeps it down.
"""

from __future__ import annotations

import numpy as np

from repro.steering import (
    Actuator,
    Sensor,
    SteerableApplication,
    SteerableParameter,
)


class RelativityApp(SteerableApplication):
    """First-order wave evolution with a monitored constraint."""

    def __init__(self, host, name, server_host, *, points: int = 256,
                 **kwargs) -> None:
        self.points = points
        x = np.linspace(-1.0, 1.0, points)
        self.phi = np.exp(-50.0 * x ** 2)  # gaussian pulse
        self.pi = np.zeros(points)
        self.chi = np.gradient(self.phi, x)
        self.x = x
        self.dx = x[1] - x[0]
        super().__init__(host, name, server_host, **kwargs)

    def setup(self) -> None:
        self.courant = self.control.add_parameter(SteerableParameter(
            "courant", 0.25, minimum=0.01, maximum=0.5,
            description="timestep as a fraction of dx"))
        self.dissipation = self.control.add_parameter(SteerableParameter(
            "dissipation", 0.01, minimum=0.0, maximum=0.2,
            description="Kreiss-Oliger dissipation strength"))
        self.control.add_parameter(SteerableParameter(
            "points", self.points, read_only=True))
        self.control.add_sensor(Sensor(
            "constraint_norm", self._constraint_norm, monitored=True,
            description="L2 norm of C = chi - d(phi)/dx"))
        self.control.add_sensor(Sensor(
            "field_energy", self._energy, monitored=True))
        self.control.add_sensor(Sensor(
            "phi_max", lambda: float(np.abs(self.phi).max()),
            monitored=True))
        self.control.add_sensor(Sensor(
            "phi", lambda: self.phi.copy(), description="full field"))
        self.control.add_actuator(Actuator(
            "perturb", self._perturb,
            description="add a gaussian perturbation"))

    def _deriv(self, f: np.ndarray) -> np.ndarray:
        out = np.zeros_like(f)
        out[1:-1] = (f[2:] - f[:-2]) / (2.0 * self.dx)
        return out

    def step(self, index: int) -> None:
        dt = self.courant.value * self.dx
        eps = self.dissipation.value
        dphi = self.pi
        dpi = self._deriv(self.chi)
        dchi = self._deriv(self.pi)
        self.phi = self.phi + dt * dphi
        self.pi = self.pi + dt * dpi
        self.chi = self.chi + dt * dchi
        if eps > 0:
            for f in (self.pi, self.chi):
                f[1:-1] += eps * (f[2:] - 2.0 * f[1:-1] + f[:-2])
        # reflective boundaries
        for f in (self.phi, self.pi, self.chi):
            f[0] = 0.0
            f[-1] = 0.0

    def _constraint_norm(self) -> float:
        c = self.chi - self._deriv(self.phi)
        return float(np.sqrt(np.mean(c[1:-1] ** 2)))

    def _energy(self) -> float:
        return float(0.5 * np.mean(self.pi ** 2 + self.chi ** 2))

    def _perturb(self, center: float = 0.0, amplitude: float = 0.1,
                 width: float = 0.05) -> dict:
        self.phi += amplitude * np.exp(-((self.x - center) / width) ** 2)
        self.chi = np.gradient(self.phi, self.x)
        return {"amplitude": amplitude, "center": center}
