"""Tests for the two CORBA interface levels over a live server pair."""

import pytest

from repro import AppConfig, build_collaboratory
from repro.apps import SyntheticApp
from repro.orb import ObjectNotFound, RemoteException


def cfg():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


@pytest.fixture
def pair():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=cfg())
    collab.sim.run(until=3.0)
    return collab, app


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def test_ping_and_get_users(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        name = yield from s1.orb.invoke(s1.peers[s0.name], "ping")
        users = yield from s1.orb.invoke(s1.peers[s0.name], "get_users")
        return (name, users)

    name, users = run(collab, probe())
    assert name == s0.name
    assert users == []


def test_authenticate_and_list_filters_by_user(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        alice = yield from s1.orb.invoke(
            s1.peers[s0.name], "authenticate_and_list", "alice")
        eve = yield from s1.orb.invoke(
            s1.peers[s0.name], "authenticate_and_list", "eve")
        return (alice, eve)

    alice, eve = run(collab, probe())
    assert len(alice) == 1
    assert alice[0]["app_id"] == app.app_id
    assert alice[0]["privilege"] == "write"
    assert alice[0]["server"] == s0.name
    assert eve == []


def test_get_active_applications(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        return (yield from s1.orb.invoke(
            s1.peers[s0.name], "get_active_applications"))

    apps = run(collab, probe())
    assert [a["app_id"] for a in apps] == [app.app_id]


def test_get_corba_proxy_unknown_app(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        try:
            yield from s1.orb.invoke(s1.peers[s0.name], "get_corba_proxy",
                                     "ghost#a9")
        except ObjectNotFound:
            return "not-found"

    assert run(collab, probe()) == "not-found"


def test_corba_proxy_interface_and_status(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        ref = yield from s1.orb.invoke(s1.peers[s0.name],
                                       "get_corba_proxy", app.app_id)
        info = yield from s1.orb.invoke(ref, "get_interface", "bob")
        status = yield from s1.orb.invoke(ref, "get_status")
        return (info, status)

    info, status = run(collab, probe())
    assert info["privilege"] == "read"
    assert info["app_id"] == app.app_id
    param_names = [p["name"] for p in info["interface"]["parameters"]]
    assert "gain" in param_names
    assert status["active"] is True


def test_corba_proxy_interface_denies_stranger(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        ref = yield from s1.orb.invoke(s1.peers[s0.name],
                                       "get_corba_proxy", app.app_id)
        try:
            yield from s1.orb.invoke(ref, "get_interface", "eve")
        except RemoteException as exc:
            return exc.exc_type

    assert run(collab, probe()) == "SecurityError"


def test_lock_relay_via_corba_proxy(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        ref = yield from s1.orb.invoke(s1.peers[s0.name],
                                       "get_corba_proxy", app.app_id)
        first = yield from s1.orb.invoke(ref, "acquire_lock", "remote:c1")
        second = yield from s1.orb.invoke(ref, "acquire_lock", "remote:c2")
        holder = yield from s1.orb.invoke(ref, "lock_holder")
        yield from s1.orb.invoke(ref, "release_lock", "remote:c1")
        next_holder = yield from s1.orb.invoke(ref, "lock_holder")
        return (first, second, holder, next_holder)

    first, second, holder, next_holder = run(collab, probe())
    assert first == "granted"
    assert second == "queued"
    assert holder == "remote:c1"
    assert next_holder == "remote:c2"
    # authoritative state lives at the home server (§5.2.4)
    assert s0.locks.holder_of(app.app_id) == "remote:c2"
    assert s1.locks.holder_of(app.app_id) is None


def test_subscribe_server_receives_pushes(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def subscribe():
        ref = yield from s1.orb.invoke(s1.peers[s0.name],
                                       "get_corba_proxy", app.app_id)
        yield from s1.orb.invoke(ref, "subscribe_server", s1.name)

    run(collab, subscribe())
    # a local client session at s1 subscribed to the app receives pushes
    session = s1.collab.create_session("bob")
    s1.collab.subscribe(session.client_id, app.app_id)
    before = len(session.buffer)
    collab.sim.run(until=collab.sim.now + 2.0)
    assert len(session.buffer) > before
    assert s0.stats["remote_update_pushes"] > 0


def test_deliver_to_client_cross_server(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    session = s1.collab.create_session("bob")

    def push():
        from repro.wire import ControlMessage
        note = ControlMessage("custom_event", detail=42)
        ok = yield from s0.orb.invoke(
            s0.peers[s1.name], "deliver_to_client", session.client_id, note)
        return ok

    assert run(collab, push()) is True
    assert len(session.buffer) == 1
