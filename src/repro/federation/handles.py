"""AppHandle: one interface to an application, wherever it lives.

§5.1's two interface levels exist so "clients can access the 'closest'
server and have access to applications and services provided by all the
servers".  An :class:`AppHandle` is the server-side embodiment of that
promise: the :class:`~repro.federation.router.AppRouter` resolves an
``app_id`` to a handle, and every caller drives the same generator
interface — ``open``, ``deliver_command``, the lock protocol,
``get_updates_since``, group publish, and archival replay — without ever
asking whether the application is local.

:class:`LocalAppHandle` wraps the home server's
:class:`~repro.core.proxy.ApplicationProxy` (plus the local security
check); :class:`RemoteAppHandle` wraps the level-two ``CorbaProxy`` stub,
including the §4.1 ``redirect`` remote-access mode.  Every method is a
generator (``result = yield from handle.op(...)``); purely local
operations delegate through ``yield from ()`` so the two variants stay
drop-in interchangeable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.security import SecurityError
from repro.orb import OrbError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.collaboration import ClientSession
    from repro.core.server import DiscoverServer
    from repro.federation.registry import PeerRegistry


class AppHandle:
    """Location-transparent access to one application (abstract)."""

    #: True when the application is homed at this server
    is_local = False

    def __init__(self, server: "DiscoverServer", app_id: str) -> None:
        self.server = server
        self.app_id = app_id

    # -- archival (served from the home server's archive, §5.2.5) ----------
    def replay_interactions(self, user: str, since: float = 0.0,
                            limit: Optional[int] = None):
        """Generator: a user's replayable interaction history (§5.2.5)."""
        records = self.server.archive.replay_interactions(
            self.app_id, user, since, limit)
        yield from self.server.host.use_cpu(
            self.server.costs.log_read_cost * max(1, len(records)))
        return records

    def replay_app_log(self, user: str, since: float = 0.0,
                       limit: Optional[int] = None):
        """Generator: the application's archived history."""
        records = self.server.archive.replay_app_log(
            self.app_id, user, since, limit)
        yield from self.server.host.use_cpu(
            self.server.costs.log_read_cost * max(1, len(records)))
        return records

    def latecomer_catchup(self, user: str, n: int = 20):
        """Generator: recent interactions for a late group joiner."""
        records = self.server.archive.latecomer_catchup(self.app_id, user, n)
        yield from self.server.host.use_cpu(
            self.server.costs.log_read_cost * max(1, len(records)))
        return records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.app_id}>"


class LocalAppHandle(AppHandle):
    """Handle for an application homed at this server."""

    is_local = True

    def _proxy(self):
        return self.server._local_proxy(self.app_id)

    def open(self, user: str):
        """Generator: second-level auth + the customized steering
        interface (§5.2.2) for a local application."""
        privilege = self.server.security.app_privilege(user, self.app_id)
        if privilege is None:
            raise SecurityError(f"{user!r} has no access to "
                                f"{self.app_id!r}")
        proxy = self._proxy()
        yield from self.server.host.use_cpu(
            self.server.costs.auth_check_cost)
        return {"app_id": self.app_id, "name": proxy.app_name,
                "privilege": privilege, "interface": proxy.interface,
                "last_update": proxy.last_update}

    def deliver_command(self, session: "ClientSession", command: str,
                        args: dict):
        """Generator: authoritative command admission at the home server."""
        yield from ()  # no remote hop
        return self.server.submit_local_command(
            session.user, session.client_id, self.app_id, command, args)

    # -- lock protocol (host-server authoritative, §5.2.4) -----------------
    def acquire_lock(self, client_id: str):
        yield from ()  # no remote hop
        self._proxy()  # unknown application → SecurityError
        return self.server.locks.acquire(self.app_id, client_id)

    def release_lock(self, client_id: str):
        yield from ()  # no remote hop
        return self.server.locks.release(self.app_id, client_id)

    def lock_holder(self):
        yield from ()  # no remote hop
        return self.server.locks.holder_of(self.app_id)

    # -- updates / collaboration -------------------------------------------
    def get_updates_since(self, seq: int):
        yield from ()  # no remote hop
        return self._proxy().updates_since(seq)

    def publish_group(self, group: str, msg, exclude: Optional[str] = None):
        """Generator: home-server fan-out of a group message."""
        yield from ()  # no remote hop
        return self.server.publish_local_group(self.app_id, group, msg,
                                               exclude=exclude)


class RemoteAppHandle(AppHandle):
    """Handle relaying to an application's home server over the ORB."""

    def __init__(self, server: "DiscoverServer", registry: "PeerRegistry",
                 app_id: str) -> None:
        super().__init__(server, app_id)
        self.registry = registry
        from repro.directory import home_server_of
        self.home = home_server_of(app_id)

    def _stub(self):
        """Generator: the (cached) level-two stub for the application.

        Fails eagerly when the health model has already marked the home
        server unhealthy — an immediate error the caller (or the router's
        replica failover) can act on, instead of a full call timeout.
        """
        if self.registry.peer_unhealthy(self.home):
            self.server.federation_metrics.count("eager_failfast")
            raise OrbError(f"peer {self.home!r} marked unhealthy "
                           f"(eager failover at {self.server.name})")
        return (yield from self.registry.remote_proxy_stub(self.app_id))

    def _relay(self, op: str, *args, **kwargs):
        """Generator: one stub call, with cache invalidation on failure.

        An :class:`OrbError` means the cached reference (or the peer
        itself) can no longer be trusted — drop both caches so the next
        call re-resolves, then let the error propagate to the pipeline's
        error envelope.
        """
        with self.server.tracer.span(f"federation.relay.{op}",
                                     plane="federation",
                                     server=self.server.name,
                                     attrs={"app_id": self.app_id,
                                            "home": self.home}):
            stub = yield from self._stub()
            try:
                result = yield from getattr(stub, op)(*args, **kwargs)
            except OrbError as exc:
                self.registry.invalidate_app(self.app_id)
                self.registry.invalidate_peer(self.home)
                self.registry._note_peer_exc(self.home, exc)
                raise
            self.registry._note_peer(self.home, True)
            return result

    def open(self, user: str):
        """Generator: relay the §5.2.2 select — or, in the §4.1
        ``redirect`` remote-access mode, send the portal to the
        application's home server instead."""
        if self.server.remote_access == "redirect":
            return {"redirect": self.home, "app_id": self.app_id}
        info = yield from self._relay("get_interface", user)
        yield from self.server.subscriptions.attach(self)
        return info

    def deliver_command(self, session: "ClientSession", command: str,
                        args: dict):
        """Generator: relay a steering command to the home server (§5.1.1).

        Access is gated on the remote summaries gathered at login — the
        home server re-checks authoritatively on arrival.
        """
        remote = getattr(session, "remote_apps", {}).get(self.app_id)
        if remote is None:
            raise SecurityError(f"{session.user!r} has no access to "
                                f"{self.app_id!r}")
        with self.server.tracer.span("federation.deliver_command",
                                     plane="federation",
                                     server=self.server.name,
                                     attrs={"app_id": self.app_id,
                                            "command": command,
                                            "home": self.home}):
            stub = yield from self._stub()
            self.server.stats["remote_commands_relayed"] += 1
            try:
                result = yield from stub.deliver_command(
                    session.user, session.client_id, command, args)
            except OrbError as exc:
                self.registry.invalidate_app(self.app_id)
                self.registry.invalidate_peer(self.home)
                self.registry._note_peer_exc(self.home, exc)
                raise
            self.registry._note_peer(self.home, True)
            return result

    # -- lock protocol (relayed; host server stays authoritative) ----------
    def acquire_lock(self, client_id: str):
        return (yield from self._relay("acquire_lock", client_id))

    def release_lock(self, client_id: str):
        return (yield from self._relay("release_lock", client_id))

    def lock_holder(self):
        return (yield from self._relay("lock_holder"))

    # -- updates / collaboration -------------------------------------------
    def get_updates_since(self, seq: int):
        return (yield from self._relay("get_updates_since", seq))

    def subscribe(self, server_name: str):
        return (yield from self._relay("subscribe_server", server_name))

    def unsubscribe(self, server_name: str):
        return (yield from self._relay("unsubscribe_server", server_name))

    def publish_group(self, group: str, msg, exclude: Optional[str] = None):
        return (yield from self._relay("publish_group_message", group, msg,
                                       exclude=exclude or ""))

    # -- archival (the home server owns the logs; relay the read) ----------
    def replay_interactions(self, user: str, since: float = 0.0,
                            limit: Optional[int] = None):
        return (yield from self._relay("replay_interactions", user, since,
                                       limit))

    def replay_app_log(self, user: str, since: float = 0.0,
                       limit: Optional[int] = None):
        return (yield from self._relay("replay_app_log", user, since, limit))

    def latecomer_catchup(self, user: str, n: int = 20):
        return (yield from self._relay("latecomer_catchup", user, n))
