"""Session archival: the two logs of §5.2.5.

"The session archival handler maintains two types of logs.  The first one
logs all interactions between a client(s) and an application.  This log
enables clients to replay their interactions with the applications.  It
also enables latecomers to a collaboration group to get up to speed.  The
second log maintains all requests, responses, and status messages for each
application."

Client-interaction records are owned by the requesting user; application
records are owned by the application's owner with the app's ACL users as
readers (§6.3's ownership rules) — both stored through
:class:`~repro.core.database.Database`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.database import Database, Record

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

INTERACTION_TABLE = "interactions"
APP_LOG_TABLE = "app_log"


class SessionArchive:
    """The archival handler of one server."""

    def __init__(self, sim: "Simulator", db: Optional[Database] = None) -> None:
        self.sim = sim
        self.db = db or Database()

    # -- appends ------------------------------------------------------------
    def log_interaction(self, app_id: str, user: str, kind: str,
                        detail: dict,
                        readers: Optional[Iterable[str]] = None) -> Record:
        """Record one client↔application interaction (command or response).

        ``readers`` lets collaborative sessions share their replay history
        with the rest of the group.
        """
        return self.db.table(INTERACTION_TABLE).insert(
            owner=user,
            data={"app_id": app_id, "kind": kind, **detail},
            created_at=self.sim.now,
            readers=readers,
        )

    def log_app_record(self, app_id: str, owner: str, kind: str,
                       detail: dict,
                       readers: Optional[Iterable[str]] = None) -> Record:
        """Record one application-side event (update / status / response)."""
        return self.db.table(APP_LOG_TABLE).insert(
            owner=owner,
            data={"app_id": app_id, "kind": kind, **detail},
            created_at=self.sim.now,
            readers=readers,
        )

    # -- replay ------------------------------------------------------------
    def replay_interactions(self, app_id: str, user: str,
                            since: float = 0.0,
                            limit: Optional[int] = None) -> List[dict]:
        """A user's readable interaction history with one application."""
        records = self.db.table(INTERACTION_TABLE).select(
            user,
            predicate=lambda r: (r.data["app_id"] == app_id
                                 and r.created_at >= since),
            limit=limit,
        )
        return [self._export(r) for r in records]

    def replay_app_log(self, app_id: str, user: str,
                       since: float = 0.0,
                       limit: Optional[int] = None) -> List[dict]:
        """The application's full history readable by ``user``."""
        records = self.db.table(APP_LOG_TABLE).select(
            user,
            predicate=lambda r: (r.data["app_id"] == app_id
                                 and r.created_at >= since),
            limit=limit,
        )
        return [self._export(r) for r in records]

    def latecomer_catchup(self, app_id: str, user: str, n: int = 20) -> List[dict]:
        """The most recent ``n`` interaction records for a late joiner."""
        records = self.db.table(INTERACTION_TABLE).tail(
            user, n, predicate=lambda r: r.data["app_id"] == app_id)
        return [self._export(r) for r in records]

    def interaction_count(self, app_id: Optional[str] = None) -> int:
        """How many interactions are archived (optionally for one app)."""
        tbl = self.db.table(INTERACTION_TABLE)
        if app_id is None:
            return len(tbl)
        return tbl.count(lambda r: r.data["app_id"] == app_id)

    @staticmethod
    def _export(record: Record) -> dict:
        return {"record_id": record.record_id, "owner": record.owner,
                "at": record.created_at, **record.data}
