"""The write-ahead log: LSN-stamped records + snapshot/compaction.

A :class:`WriteAheadLog` wraps one :class:`~repro.storage.backends.
StorageBackend` and owns the ordering invariants the medium doesn't:

- every record carries a monotonically increasing **LSN**, resumed from
  whatever the backend already holds (reopening a JSONL directory
  continues the sequence, it doesn't restart it);
- the snapshot document records the LSN it covers, so recovery is always
  ``restore(snapshot.state)`` then ``replay(tail after snapshot.lsn)``;
- :meth:`write_snapshot` **compacts**: records at or below the new
  snapshot LSN are dropped from the WAL in the same atomic rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.storage.backends import StorageBackend


@dataclass(frozen=True)
class WalRecord:
    """One journaled mutation."""

    lsn: int
    kind: str      # "plane.event", e.g. "db.insert", "locks.acquire"
    at: float      # virtual time of the mutation
    data: Dict

    def to_entry(self) -> Dict:
        return {"lsn": self.lsn, "kind": self.kind, "at": self.at,
                "data": self.data}

    @classmethod
    def from_entry(cls, entry: Dict) -> "WalRecord":
        return cls(lsn=entry["lsn"], kind=entry["kind"],
                   at=entry.get("at", 0.0), data=entry.get("data", {}))


class WriteAheadLog:
    """Append-only log with one covering snapshot, over any backend."""

    def __init__(self, backend: StorageBackend) -> None:
        self.backend = backend
        doc = backend.load_snapshot()
        self._snapshot_lsn = int(doc.get("lsn", 0)) if doc else 0
        self._snapshot_state = doc.get("state") if doc else None
        last = self._snapshot_lsn
        for entry in backend.entries():
            last = max(last, int(entry.get("lsn", 0)))
        self._lsn = last

    # -- write path -----------------------------------------------------
    def append(self, kind: str, data: Dict, at: float = 0.0) -> WalRecord:
        self._lsn += 1
        record = WalRecord(self._lsn, kind, at, data)
        self.backend.append(record.to_entry())
        return record

    def write_snapshot(self, state: Dict) -> int:
        """Persist ``state`` as covering everything up to the last LSN,
        then compact the WAL down to the uncovered tail.  Returns the
        number of records compacted away."""
        lsn = self._lsn
        self.backend.save_snapshot({"lsn": lsn, "state": state})
        self._snapshot_lsn = lsn
        self._snapshot_state = state
        before = self.backend.wal_len()
        keep = [e for e in self.backend.entries()
                if int(e.get("lsn", 0)) > lsn]
        self.backend.reset_wal(keep)
        return before - len(keep)

    # -- read path ------------------------------------------------------
    def tail(self, after_lsn: Optional[int] = None) -> List[WalRecord]:
        """Records strictly after ``after_lsn`` (default: the snapshot)."""
        cut = self._snapshot_lsn if after_lsn is None else after_lsn
        return [WalRecord.from_entry(e) for e in self.backend.entries()
                if int(e.get("lsn", 0)) > cut]

    def snapshot_state(self) -> Optional[Dict]:
        return self._snapshot_state

    @property
    def last_lsn(self) -> int:
        return self._lsn

    @property
    def snapshot_lsn(self) -> int:
        return self._snapshot_lsn
