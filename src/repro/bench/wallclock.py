"""Wall-clock performance harness (the BENCH_*.json trajectory).

Every benchmark under ``benchmarks/`` measures *virtual* time — the science
of the paper.  This module measures the *real* seconds the simulator itself
burns, so the repository's own scalability (ROADMAP: "as fast as the
hardware allows") is tracked with numbers instead of folklore.  Each run
produces a JSON report::

    PYTHONPATH=src python -m repro.bench.wallclock --output BENCH_1.json

The suite times the wire fast path (sizing, encoding, the single-encode
broadcast fan-out), raw network delivery, and two end-to-end scenarios
(E1 app scalability, E2 client scalability) in wall seconds.  ``--quick``
runs a reduced version suitable for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

#: report schema version; bump if entry fields change
SCHEMA = 1


def time_op(fn: Callable[[], object], *, repeat: int = 5,
            number: int = 100) -> float:
    """Best-of-``repeat`` wall seconds for one call of ``fn``.

    ``fn`` is called ``number`` times per round; the fastest round is
    reported (standard microbenchmark practice — minimum is the least
    noisy estimator of the true cost).
    """
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / number)
    return best


def _entry(name: str, per_op_s: float, ops: int = 1,
           note: str = "") -> Dict:
    entry = {
        "name": name,
        "per_op_us": per_op_s * 1e6,
        "ops": ops,
    }
    if note:
        entry["note"] = note
    return entry


# ---------------------------------------------------------------------------
# micro: wire layer
# ---------------------------------------------------------------------------

def _update_message():
    from repro.wire import UpdateMessage
    grid = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
    return UpdateMessage(payload={"grid": grid, "label": "bench-step",
                                  "seq": 1}, seq=1, timestamp=2.5)


def bench_wire(quick: bool = False) -> List[Dict]:
    """Sizing and encoding of an array-bearing update message."""
    from repro.wire import encode, encoded_size, freeze_size
    from repro.web.http import HttpResponse

    repeat = 3 if quick else 7
    number = 50 if quick else 500
    msg = _update_message()
    out = [
        _entry("wire/encoded_size_update_64x64",
               time_op(lambda: encoded_size(msg), repeat=repeat,
                       number=number),
               note="size visitor, no bytes materialized"),
        _entry("wire/encode_update_64x64",
               time_op(lambda: encode(msg), repeat=repeat, number=number)),
    ]

    # The broadcast fan-out path: one update frozen once (as
    # CollaborationManager.push_to_client does), then sized as part of 30
    # distinct poll responses — the per-subscriber cost of a broadcast.
    n_subs = 30

    def fanout():
        m = _update_message()
        freeze_size(m)
        total = 0
        for i in range(n_subs):
            total += encoded_size(HttpResponse(i, body=[m]))
        return total

    out.append(_entry(
        f"wire/broadcast_sizing_{n_subs}_subscribers",
        time_op(fanout, repeat=repeat, number=max(1, number // 10)),
        ops=n_subs,
        note="freeze once + size 30 poll responses"))
    return out


# ---------------------------------------------------------------------------
# micro: network delivery
# ---------------------------------------------------------------------------

def bench_network(quick: bool = False) -> List[Dict]:
    """Wall cost of Network.send + delivery, loopback and 3-hop."""
    from repro.net import Network
    from repro.sim import Simulator

    n_frames = 200 if quick else 2000
    results = []
    for label, hops in (("loopback", 0), ("3_hop", 3)):
        sim = Simulator()
        net = Network(sim)
        names = [f"h{i}" for i in range(max(2, hops + 1))]
        for name in names:
            net.add_host(name)
        for a, b in zip(names, names[1:]):
            net.add_link(a, b, latency=0.001)
        src, dst = names[0], (names[0] if hops == 0 else names[-1])
        net.hosts[dst].bind(9)
        payload = {"seq": 1, "data": "x" * 200}

        t0 = time.perf_counter()
        for _ in range(n_frames):
            net.send(src, 1, dst, 9, payload)
        sim.run()
        elapsed = time.perf_counter() - t0
        results.append(_entry(f"net/send_{label}", elapsed / n_frames,
                              ops=n_frames))
    return results


# ---------------------------------------------------------------------------
# macro: collaboration broadcast through real sessions
# ---------------------------------------------------------------------------

def bench_broadcast(quick: bool = False, n_subscribers: int = 30) -> List[Dict]:
    """broadcast_update to N real sessions + sizing their poll batches."""
    from repro.core.collaboration import CollaborationManager
    from repro.sim import Simulator
    from repro.web.http import HttpResponse
    from repro.wire import UpdateMessage, encoded_size

    rounds = 50 if quick else 500
    sim = Simulator()
    mgr = CollaborationManager(sim, "bench-server")
    clients = []
    for _ in range(n_subscribers):
        session = mgr.create_session("bench")
        mgr.subscribe(session.client_id, "bench-server#a1")
        clients.append(session)

    grid = np.arange(32 * 32, dtype=np.float64).reshape(32, 32)

    def one_round(seq: int) -> int:
        msg = UpdateMessage(payload={"grid": grid, "seq": seq}, seq=seq,
                            timestamp=float(seq))
        mgr.broadcast_update("bench-server#a1", msg)
        total = 0
        for session in clients:  # every subscriber polls its buffer
            batch = []
            item = session.buffer.try_get()
            while item is not None:
                batch.append(item)
                item = session.buffer.try_get()
            total += encoded_size(HttpResponse(seq, body=batch))
        return total

    t0 = time.perf_counter()
    for seq in range(rounds):
        one_round(seq)
    elapsed = time.perf_counter() - t0
    return [_entry(f"collab/broadcast_poll_{n_subscribers}_subscribers",
                   elapsed / rounds, ops=rounds,
                   note="broadcast_update + drain + size poll responses")]


# ---------------------------------------------------------------------------
# macro: end-to-end scenarios (virtual experiments, wall seconds)
# ---------------------------------------------------------------------------

def _best_of(fn: Callable[[], Dict], rounds: int) -> (float, Dict):
    """Fastest wall time over ``rounds`` runs of a scenario (the minimum is
    the least noisy estimator — single-shot e2e numbers on a shared box
    carry scheduler jitter larger than real hot-path changes)."""
    best, row = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        row = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, row


def bench_end_to_end(quick: bool = False) -> List[Dict]:
    from repro.bench.scenarios import (
        run_app_scalability,
        run_client_scalability,
    )

    duration = 3.0 if quick else 15.0
    rounds = 1 if quick else 3
    results = []
    best, row = _best_of(lambda: run_app_scalability(10, duration=duration),
                         rounds)
    results.append(_entry("e2e/E1_app_scalability_n10", best,
                          note=f"virtual duration {duration}s, "
                               f"{row['updates_processed']} updates"))
    best, row = _best_of(
        lambda: run_client_scalability(10, duration=duration), rounds)
    results.append(_entry("e2e/E2_client_scalability_n10", best,
                          note=f"virtual duration {duration}s, "
                               f"{row['polls']} polls"))
    if not quick:
        # Fleet-scale arm: 1000 registered applications against one server.
        # Infeasible before the batched simulator core (PR 6); kept at a
        # short virtual duration so the whole suite stays CI-sized.
        best, row = _best_of(lambda: run_app_scalability(1000, duration=5.0),
                             rounds)
        results.append(_entry("e2e/E1_n1000", best,
                              note=f"virtual duration 5.0s, "
                                   f"{row['updates_processed']} updates"))
    return results


def bench_directory(quick: bool = False) -> List[Dict]:
    """Fleet-scale E11: wall seconds for the sharded-directory workload.

    Two fleet sizes at the same shard count, so the pair tracks both the
    absolute cost of the directory plane and how it scales with servers
    (sessions dominate; server count should be near-free).
    """
    from repro.bench.fleet import run_fleet_directory

    rounds = 1 if quick else 3
    sweeps = ((10, 500), (20, 500)) if quick else ((10, 2000), (50, 2000))
    results = []
    for n_servers, n_sessions in sweeps:
        best, row = _best_of(
            lambda n=n_servers, s=n_sessions: run_fleet_directory(
                n, n_sessions=s, directory_shards=4), rounds)
        results.append(_entry(
            f"e2e/E11_directory_n{n_servers}_s{n_sessions}", best,
            note=f"{row['sessions_done']} sessions, "
                 f"p99 {row['lookup_p99_ms']:.1f}ms, "
                 f"flatness {row['shard_load_max_over_mean']:.2f}"))
    return results


def bench_health_overhead(quick: bool = False) -> List[Dict]:
    """E1 with the health plane on vs off — the plane's wall-clock tax.

    The two entries share the workload exactly (same sweep, same virtual
    duration), so their ratio is the health plane's overhead; the
    regression gate in ``benchmarks/test_bench_wallclock.py`` asserts it
    stays under 5%.
    """
    from repro.bench.scenarios import run_app_scalability

    duration = 3.0 if quick else 15.0
    rounds = 1 if quick else 3
    results = []
    for enabled in (True, False):
        best, _row = _best_of(
            lambda: run_app_scalability(10, duration=duration,
                                        health_enabled=enabled), rounds)
        label = "on" if enabled else "off"
        results.append(_entry(f"e2e/E1_health_{label}_n10", best,
                              note=f"virtual duration {duration}s, "
                                   f"health plane {label}"))
    return results


def bench_accounting_overhead(quick: bool = False) -> List[Dict]:
    """E1 with the cost ledger on vs off — the accounting plane's tax.

    Same shape as :func:`bench_health_overhead`: identical workload, one
    knob flipped, so the on/off ratio is the per-request cost of the
    attribution path (interceptor scope + counter deltas + sketch adds).
    The gate in ``benchmarks/test_bench_wallclock.py`` asserts it stays
    under 5%.
    """
    from repro.bench.scenarios import run_app_scalability

    duration = 3.0 if quick else 15.0
    rounds = 1 if quick else 3
    results = []
    for enabled in (True, False):
        best, _row = _best_of(
            lambda: run_app_scalability(10, duration=duration,
                                        accounting_enabled=enabled), rounds)
        label = "on" if enabled else "off"
        results.append(_entry(f"e2e/E1_accounting_{label}_n10", best,
                              note=f"virtual duration {duration}s, "
                                   f"cost ledger {label}"))
    return results


def bench_storage(quick: bool = False) -> List[Dict]:
    """Durable-state-plane costs: WAL append (both backends), snapshot +
    compaction, and the E12 crash-recovery drill end to end.

    The append benches go through the :class:`~repro.storage.StateJournal`
    facade — the exact call every journaled plane mutation makes — so the
    ``storage/append_*`` numbers ARE the per-mutation tax the durable
    state plane adds to the hot path.  The in-memory backend is the
    deployment default; the JSONL numbers price real disk durability.
    """
    import tempfile

    from repro.storage import (
        JsonlBackend,
        MemoryBackend,
        StateJournal,
    )

    repeat = 3 if quick else 7
    number = 200 if quick else 2000
    results = []

    # In-memory append: the default deployment's per-mutation cost.
    mem_journal = StateJournal(MemoryBackend(), snapshot_every=0)
    mem_journal.register_plane(
        "bench", snapshot=dict, restore=lambda s: None,
        apply=lambda e, d, at: None)
    payload = {"table": "session", "record_id": 1, "owner": "bench",
               "data": {"app_id": "d0#a1", "kind": "command"}}
    results.append(_entry(
        "storage/append_memory",
        time_op(lambda: mem_journal.append("db.insert", payload),
                repeat=repeat, number=number),
        note="StateJournal.append, in-memory backend (default)"))

    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp:
        disk_journal = StateJournal(JsonlBackend(tmp), snapshot_every=0)
        disk_journal.register_plane(
            "bench", snapshot=dict, restore=lambda s: None,
            apply=lambda e, d, at: None)
        results.append(_entry(
            "storage/append_jsonl",
            time_op(lambda: disk_journal.append("db.insert", payload),
                    repeat=repeat, number=max(1, number // 4)),
            note="StateJournal.append, JSONL backend, flush per record"))

        # Snapshot + compaction over a WAL tail of fixed length.
        tail = 100 if quick else 500
        state = {"bench": {"rows": list(range(64))}}

        def snap_cycle():
            for i in range(tail):
                disk_journal.append("db.insert", payload)
            disk_journal.take_snapshot()
            return state

        results.append(_entry(
            f"storage/snapshot_compact_tail{tail}",
            time_op(snap_cycle, repeat=repeat, number=1), ops=tail,
            note=f"append {tail} records + snapshot + compact (JSONL)"))

    from repro.bench.scenarios import run_recovery_drill

    rounds = 1 if quick else 3
    best, row = _best_of(
        lambda: run_recovery_drill()[0], rounds)
    results.append(_entry(
        "e2e/E12_recovery_drill", best,
        note=f"{row['recovered_sessions']} sessions recovered, "
             f"{row['wal_replayed']} replayed, "
             f"recovery {row['recovery_wall_ms']:.2f}ms"))
    return results


# ---------------------------------------------------------------------------
# suite + report
# ---------------------------------------------------------------------------

def run_suite(quick: bool = False) -> Dict:
    """Run every wall-clock bench; returns the full report dict."""
    benchmarks: List[Dict] = []
    for group in (bench_wire, bench_network, bench_broadcast,
                  bench_end_to_end, bench_health_overhead,
                  bench_accounting_overhead,
                  bench_directory, bench_storage):
        benchmarks.extend(group(quick=quick))
    return {
        "schema": SCHEMA,
        "quick": quick,
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "benchmarks": benchmarks,
    }


def write_report(path: str, report: Dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=False)
        fh.write("\n")


def format_report(report: Dict) -> str:
    from repro.bench.report import format_table
    rows = [{"benchmark": e["name"], "per_op_us": e["per_op_us"],
             "note": e.get("note", "")} for e in report["benchmarks"]]
    return format_table(rows, ["benchmark", "per_op_us", "note"],
                        title="wall-clock benchmarks (lower is better)")


def export_trace(path: str) -> Dict:
    """Run the traced cross-server scenario and export its spans as JSONL.

    Not part of the timed suite — trace capture is a side artifact (CI
    uploads it for Perfetto inspection), so it must never perturb the
    BENCH_*.json numbers.
    """
    from repro.bench.scenarios import run_traced_remote_command
    from repro.obs import export_jsonl

    row, tracer, _registry = run_traced_remote_command()
    export_jsonl(tracer.store, path)
    return {
        "path": path,
        "spans": len(tracer.store),
        "traces": len(tracer.store.trace_ids()),
        "result": row.get("result"),
    }


def export_log(path: str) -> Dict:
    """Run the fault-injection scenario streaming its structured log.

    Every server's :class:`~repro.obs.StructuredLog` shares one JSONL
    sink, so the file interleaves the whole fleet's records in event
    order — sim-time-stamped, trace-correlated, machine-readable.  Like
    :func:`export_trace`, this is a side artifact, never timed.
    """
    from repro.bench.scenarios import run_fault_injection

    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        def sink(line: str) -> None:
            nonlocal lines
            fh.write(line + "\n")
            lines += 1

        row, _collab = run_fault_injection(duration=15.0, kill_at=5.0,
                                           log_sink=sink)
    return {
        "path": path,
        "records": lines,
        "victim_status": row["victim_status"],
        "detection_latency_s": row["detection_latency_s"],
    }


def export_profile(path: str) -> Dict:
    """cProfile the fleet-scale ``e2e/E1_n1000`` scenario to ``path``.

    The dump is a standard ``pstats`` file (load with
    ``pstats.Stats(path)`` or ``snakeviz``); CI uploads it from the bench
    job so hot-path regressions come with their profile attached.  Run as
    a side artifact only — profiling roughly triples the scenario's wall
    time, so it must never contaminate the BENCH_*.json numbers.
    """
    import cProfile

    from repro.bench.scenarios import run_app_scalability

    profiler = cProfile.Profile()
    profiler.enable()
    row = run_app_scalability(1000, duration=5.0)
    profiler.disable()
    profiler.dump_stats(path)
    return {"path": path, "updates": row["updates_processed"]}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the wall-clock performance suite.")
    parser.add_argument("--output", "-o", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--profile-output", default=None,
                        help="also dump a cProfile (pstats) artifact of "
                             "the e2e/E1_n1000 scenario")
    parser.add_argument("--trace-output", default=None,
                        help="also export a JSONL span trace of the "
                             "cross-server steering scenario")
    parser.add_argument("--log-output", default=None,
                        help="also export the fleet's structured log "
                             "(JSONL) from the fault-injection scenario")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    print(format_report(report))
    if args.output:
        write_report(args.output, report)
        print(f"report written to {args.output}")
    if args.profile_output:
        info = export_profile(args.profile_output)
        print(f"profile written to {info['path']} "
              f"({info['updates']} updates processed)")
    if args.trace_output:
        info = export_trace(args.trace_output)
        print(f"trace written to {info['path']} "
              f"({info['spans']} spans, {info['traces']} traces)")
    if args.log_output:
        info = export_log(args.log_output)
        print(f"structured log written to {info['path']} "
              f"({info['records']} records, victim "
              f"{info['victim_status']})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
