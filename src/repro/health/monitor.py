"""Per-server health monitor: heartbeats, folding, gossip, and queries.

One :class:`HealthMonitor` lives on each
:class:`~repro.core.server.DiscoverServer`.  It runs a heartbeat process
on the simulated clock that folds every liveness signal the server
already produces into the :class:`~repro.health.model.HealthModel`:

- its own pipeline error rate (a tick with a high error fraction counts
  as a missed self-heartbeat),
- each local :class:`~repro.core.proxy.ApplicationProxy` (active →
  heartbeat, stopped → miss),
- peer call outcomes reported passively by the federation layer
  (``note_peer_success`` / ``note_peer_failure`` from `PeerRegistry`
  pings, relays, and `SubscriptionManager` poll rounds — the unified
  feed that fixes the old split-brain between the two subsystems),
- daemon/channel frame drops (``note_channel_failure``).

On the same tick the :class:`~repro.health.slo.SLOEngine` samples its
specs, so SLO windows advance with the heartbeat period.

Peer-health *gossip* — exchanging health views over the existing Control
network so every server converges on a fleet view — is **opt-in**
(``gossip_period=None`` by default): it sends real ORB messages, which
would perturb the golden experiment tables.  Passive observation alone
already marks dead peers unhealthy on every server that talks to them.
The heartbeat itself is pure bookkeeping: timer events only, no wire
messages, no CPU charges, no spans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.health.model import (DEFAULT_DOWN_AFTER, DEFAULT_UP_AFTER,
                                HealthModel, STATUS_HEALTHY, STATUS_UNKNOWN)
from repro.health.slo import AlertLog, SLOEngine, SLOSpec
from repro.sim import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer

#: default heartbeat period (sim seconds)
DEFAULT_PERIOD = 0.5
#: a tick whose pipeline error fraction exceeds this counts as a miss
DEFAULT_ERROR_DEGRADE = 0.5
#: trace exemplars attached per alert
EXEMPLAR_LIMIT = 3

#: default SLO on the request pipeline: 99.9% of requests succeed
DEFAULT_ERROR_OBJECTIVE = 0.999
#: default latency SLO: http-plane p99 stays under this (sim seconds)
DEFAULT_P99_THRESHOLD = 0.5


def default_slos(server: "DiscoverServer", engine: SLOEngine) -> None:
    """Register the standard SLOs for one server's pipeline metrics."""
    metrics = server.pipeline_metrics
    engine.add(
        SLOSpec("request_error_rate",
                kind="error_rate",
                objective=DEFAULT_ERROR_OBJECTIVE,
                description="fraction of pipeline requests that error"),
        lambda: (metrics.requests(), metrics.errors()))
    engine.add(
        SLOSpec("deliver_command_p99",
                kind="latency",
                objective=0.99,
                threshold=DEFAULT_P99_THRESHOLD,
                description="http-plane p99 latency stays under "
                            f"{DEFAULT_P99_THRESHOLD} sim-s"),
        lambda: metrics.latency_stats("http").p99 or None)


class HealthMonitor:
    """Folds liveness signals into statuses; answers routing queries."""

    def __init__(self, server: "DiscoverServer", *,
                 period: float = DEFAULT_PERIOD,
                 down_after: int = DEFAULT_DOWN_AFTER,
                 up_after: int = DEFAULT_UP_AFTER,
                 gossip_period: Optional[float] = None,
                 error_degrade: float = DEFAULT_ERROR_DEGRADE,
                 enabled: bool = True,
                 install_slos=default_slos) -> None:
        self.server = server
        self.period = period
        self.gossip_period = gossip_period
        self.error_degrade = error_degrade
        self.enabled = enabled
        clock = lambda: server.sim.now  # noqa: E731 - tiny closure
        self.model = HealthModel(clock=clock, down_after=down_after,
                                 up_after=up_after)
        self.alerts = AlertLog()
        #: the server's shared time-series registry (None on bare
        #: monitors): SLO window series and health gauges land there
        self.timeseries = getattr(server, "timeseries", None)
        self.slos = SLOEngine(clock=clock, log=self.alerts,
                              exemplar_fn=self._exemplars,
                              timeseries=self.timeseries)
        if install_slos is not None:
            install_slos(server, self.slos)
        #: peer server → (stamp, statuses) from the last gossip exchange
        self._peer_views: Dict[str, Tuple[float, Dict[str, str]]] = {}
        self.counters: Dict[str, int] = {
            "heartbeats": 0, "failovers": 0, "channel_failures": 0,
            "gossip_rounds": 0, "gossip_failures": 0,
        }
        # pipeline totals at the previous tick, for per-tick deltas
        self._last_requests = 0
        self._last_errors = 0
        # statuses at the previous tick, for the transitions counter
        self._last_statuses: Dict[str, str] = {}
        self._procs: List = []
        if enabled:
            self._procs.append(server.sim.spawn(
                self._beat(), name=f"health-beat@{server.name}"))
            if gossip_period is not None:
                self._procs.append(server.sim.spawn(
                    self._gossip(), name=f"health-gossip@{server.name}"))

    # -- component keys ----------------------------------------------------
    @staticmethod
    def server_key(name: str) -> str:
        return f"server:{name}"

    @staticmethod
    def app_key(app_id: str) -> str:
        return f"app:{app_id}"

    # -- heartbeat process -------------------------------------------------
    def _beat(self):
        sim = self.server.sim
        try:
            while True:
                yield sim.timeout(self.period)
                self.tick()
        except Interrupt:
            return

    def tick(self) -> None:
        """One heartbeat: fold local signals, advance the SLO windows."""
        self.counters["heartbeats"] += 1
        self._self_heartbeat()
        for app_id, proxy in list(self.server.local_proxies.items()):
            key = self.app_key(app_id)
            if proxy.active:
                self.model.record_success(key)
            else:
                self.model.record_failure(key)
        if self.timeseries is not None:
            self._record_health_series()
        self.slos.observe()

    def _record_health_series(self) -> None:
        """Status-count gauges and a transitions counter, per tick."""
        ts = self.timeseries
        statuses = self.model.statuses()
        counts: Dict[str, int] = {}
        transitions = 0
        for key, status in statuses.items():
            counts[status] = counts.get(status, 0) + 1
            if self._last_statuses.get(key, status) != status:
                transitions += 1
        self._last_statuses = statuses
        for status, n in sorted(counts.items()):
            ts.set_gauge(f"health.status.{status}", n)
        if transitions:
            ts.inc("health.transitions", transitions)

    def _self_heartbeat(self) -> None:
        """The server's own beat, folding the pipeline error rate.

        A tick in which most pipeline requests errored is treated as a
        missed heartbeat — a server that answers every request with a
        fault is not healthy, even though it is reachable.
        """
        metrics = self.server.pipeline_metrics
        requests, errors = metrics.requests(), metrics.errors()
        d_req = requests - self._last_requests
        d_err = errors - self._last_errors
        self._last_requests, self._last_errors = requests, errors
        key = self.server_key(self.server.name)
        if d_req > 0 and (d_err / d_req) > self.error_degrade:
            self.model.record_failure(key)
        else:
            self.model.record_success(key)

    # -- passive liveness hooks (fed by federation / daemon) ---------------
    def note_peer_success(self, name: str) -> None:
        if self.enabled:
            self.model.record_success(self.server_key(name))

    def note_peer_failure(self, name: str) -> None:
        if self.enabled:
            self.model.record_failure(self.server_key(name))

    def note_channel_failure(self) -> None:
        """A daemon/channel frame was dropped or malformed."""
        self.counters["channel_failures"] += 1

    def note_failover(self) -> None:
        self.counters["failovers"] += 1

    # -- gossip ------------------------------------------------------------
    def _gossip(self):
        sim = self.server.sim
        registry = self.server.registry
        try:
            while True:
                yield sim.timeout(self.gossip_period)
                for peer in registry.known_peers():
                    self.counters["gossip_rounds"] += 1
                    view = yield from registry.exchange_health(
                        peer, self.local_view())
                    if view is None:
                        self.counters["gossip_failures"] += 1
                    else:
                        self.merge_peer_view(peer, view)
        except Interrupt:
            return

    def local_view(self) -> dict:
        """This server's health view, as shared with gossip peers."""
        return {"server": self.server.name,
                "time": self.server.sim.now,
                "statuses": self.model.statuses()}

    def merge_peer_view(self, peer: str, view: dict) -> None:
        stamp = float(view.get("time", self.server.sim.now))
        prev = self._peer_views.get(peer)
        if prev is None or stamp >= prev[0]:
            self._peer_views[peer] = (stamp, dict(view.get("statuses", ())))

    def exchange(self, peer: str, view: dict) -> dict:
        """Servant entry point: a peer pushed its view; answer with ours.

        Receiving gossip from a peer is itself proof of its liveness.
        """
        self.merge_peer_view(peer, view)
        self.note_peer_success(peer)
        return self.local_view()

    def fleet_view(self) -> Dict[str, str]:
        """Eventually-consistent statuses across the fleet.

        Peer-gossiped views are merged oldest-stamp first; components this
        server has observed directly always win (its own observation of a
        dead peer beats the peer's last optimistic self-report).
        """
        merged: Dict[str, str] = {}
        for _peer, (_stamp, statuses) in sorted(
                self._peer_views.items(), key=lambda kv: kv[1][0]):
            merged.update(statuses)
        merged.update(self.model.statuses())
        return merged

    # -- routing queries ---------------------------------------------------
    def status_of(self, key: str) -> str:
        if not self.enabled:
            return STATUS_UNKNOWN
        return self.model.status_of(key)

    def peer_status(self, name: str) -> str:
        return self.status_of(self.server_key(name))

    def is_unhealthy_peer(self, name: str) -> bool:
        """Routing predicate: should calls to this peer be avoided?"""
        return self.enabled and self.model.is_unhealthy(
            self.server_key(name))

    def is_healthy_peer(self, name: str) -> bool:
        return self.peer_status(name) == STATUS_HEALTHY

    def detection_latency(self, name: str, since: float) -> Optional[float]:
        """Sim seconds from ``since`` until peer ``name`` was detected down."""
        return self.model.detection_latency(self.server_key(name), since)

    # -- exemplars ---------------------------------------------------------
    def _exemplars(self, window_start: float) -> List[int]:
        """Trace ids of the worst error spans since ``window_start``."""
        tracer = getattr(self.server, "tracer", None)
        store = getattr(tracer, "store", None)
        if store is None:
            return []
        worst = sorted(
            (s for s in store.spans()
             if s.status == "error" and s.start >= window_start),
            key=lambda s: (-s.duration, s.trace_id))
        out: List[int] = []
        for span in worst:
            if span.trace_id not in out:
                out.append(span.trace_id)
            if len(out) >= EXEMPLAR_LIMIT:
                break
        return out

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict reduction for the metrics registry / status surface."""
        out = dict(self.model.snapshot())
        out["slo"] = self.slos.snapshot()
        out["counters"] = dict(self.counters)
        return out

    def stop(self) -> None:
        """Interrupt the heartbeat/gossip processes (server shutdown)."""
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("health stopped")
        self._procs.clear()
