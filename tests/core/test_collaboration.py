"""Unit tests for sessions, groups, and fan-out."""

import pytest

from repro.core.collaboration import (
    DEFAULT_GROUP,
    CollaborationError,
    CollaborationManager,
)
from repro.sim import Simulator
from repro.wire import ChatMessage, UpdateMessage


@pytest.fixture
def mgr(sim):
    return CollaborationManager(sim, "srv")


def test_client_ids_are_server_scoped(mgr):
    s1 = mgr.create_session("alice")
    s2 = mgr.create_session("bob")
    assert s1.client_id == "srv:c1"
    assert s2.client_id == "srv:c2"
    assert CollaborationManager.owner_server(s1.client_id) == "srv"


def test_owner_server_parses_complex_names():
    assert CollaborationManager.owner_server("rutgers-server:c17") == \
        "rutgers-server"


def test_session_lookup_and_error(mgr):
    s = mgr.create_session("alice")
    assert mgr.session(s.client_id) is s
    with pytest.raises(CollaborationError):
        mgr.session("srv:c999")


def test_subscribe_joins_default_group(mgr):
    s = mgr.create_session("alice")
    mgr.subscribe(s.client_id, "app-1")
    assert mgr.members_of("app-1") == [s.client_id]
    assert "app-1" in s.apps


def test_subgroups(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    for s in (a, b):
        mgr.subscribe(s.client_id, "app-1")
    mgr.join_group(a.client_id, "app-1", "numerics")
    assert mgr.members_of("app-1", "numerics") == [a.client_id]
    mgr.join_group(b.client_id, "app-1", "numerics")
    assert len(mgr.members_of("app-1", "numerics")) == 2
    mgr.leave_group(a.client_id, "app-1", "numerics")
    assert mgr.members_of("app-1", "numerics") == [b.client_id]


def test_join_group_requires_subscription(mgr):
    s = mgr.create_session("alice")
    with pytest.raises(CollaborationError):
        mgr.join_group(s.client_id, "app-1", "g")


def test_cannot_leave_default_group_directly(mgr):
    s = mgr.create_session("alice")
    mgr.subscribe(s.client_id, "app-1")
    with pytest.raises(CollaborationError):
        mgr.leave_group(s.client_id, "app-1", DEFAULT_GROUP)


def test_unsubscribe_leaves_all_groups(mgr):
    s = mgr.create_session("alice")
    mgr.subscribe(s.client_id, "app-1")
    mgr.join_group(s.client_id, "app-1", "g")
    mgr.unsubscribe(s.client_id, "app-1")
    assert mgr.members_of("app-1") == []
    assert mgr.members_of("app-1", "g") == []
    assert s.groups == set()


def test_drop_session_cleans_groups(mgr):
    s = mgr.create_session("alice")
    mgr.subscribe(s.client_id, "app-1")
    mgr.drop_session(s.client_id)
    assert mgr.members_of("app-1") == []
    assert mgr.session_count() == 0
    mgr.drop_session(s.client_id)  # idempotent


def test_broadcast_update_reaches_subscribers_only(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    c = mgr.create_session("carol")
    mgr.subscribe(a.client_id, "app-1")
    mgr.subscribe(b.client_id, "app-1")
    mgr.subscribe(c.client_id, "app-2")
    msg = UpdateMessage(payload={"x": 1}, app_id="app-1")
    assert mgr.broadcast_update("app-1", msg) == 2
    assert len(a.buffer) == 1
    assert len(b.buffer) == 1
    assert len(c.buffer) == 0


def test_broadcast_group_excludes_sender(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    for s in (a, b):
        mgr.subscribe(s.client_id, "app-1")
    msg = ChatMessage("alice", "hi")
    delivered = mgr.broadcast_group("app-1", DEFAULT_GROUP, msg,
                                    exclude=a.client_id)
    assert delivered == 1
    assert len(a.buffer) == 0
    assert len(b.buffer) == 1


def test_deliver_response_shares_with_group_when_enabled(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    for s in (a, b):
        mgr.subscribe(s.client_id, "app-1")
    msg = UpdateMessage(payload="result", app_id="app-1")
    count = mgr.deliver_response(a.client_id, msg, app_id="app-1")
    assert count == 2  # requester + group member
    assert len(a.buffer) == 1 and len(b.buffer) == 1


def test_deliver_response_private_when_collab_disabled(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    for s in (a, b):
        mgr.subscribe(s.client_id, "app-1")
    mgr.set_collaboration(a.client_id, False)
    msg = UpdateMessage(payload="private", app_id="app-1")
    count = mgr.deliver_response(a.client_id, msg, app_id="app-1")
    assert count == 1
    assert len(a.buffer) == 1 and len(b.buffer) == 0


def test_share_view_works_with_collab_disabled(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    for s in (a, b):
        mgr.subscribe(s.client_id, "app-1")
    mgr.set_collaboration(a.client_id, False)
    msg = UpdateMessage(payload="explicit-share", app_id="app-1")
    assert mgr.share_view(a.client_id, "app-1", DEFAULT_GROUP, msg) == 1
    assert len(b.buffer) == 1


def test_push_to_unknown_client_is_noop(mgr):
    msg = UpdateMessage(payload=1)
    assert mgr.push_to_client("srv:c404", msg) is False


def test_bounded_buffers_count_drops(sim):
    mgr = CollaborationManager(sim, "srv", buffer_capacity=2)
    s = mgr.create_session("alice")
    mgr.subscribe(s.client_id, "app-1")
    for i in range(5):
        mgr.broadcast_update("app-1", UpdateMessage(payload=i,
                                                    app_id="app-1"))
    assert len(s.buffer) == 2
    assert s.dropped == 3
    assert mgr.dropped == 3
    assert mgr.delivered == 2


def test_local_subscribers(mgr):
    a = mgr.create_session("alice")
    b = mgr.create_session("bob")
    mgr.subscribe(a.client_id, "app-1")
    mgr.subscribe(b.client_id, "app-1")
    mgr.subscribe(b.client_id, "app-2")
    assert sorted(mgr.local_subscribers("app-1")) == [a.client_id,
                                                      b.client_id]
    assert mgr.local_subscribers("app-2") == [b.client_id]
