"""Steerable parameters: named, typed, range-validated values."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.steering.controlnet import SteeringError


class SteerableParameter:
    """One application knob exposed for interactive steering.

    Parameters carry optional bounds and an optional ``on_change`` callback
    so the owning application reacts immediately (e.g. rebuild a matrix when
    the timestep changes).
    """

    def __init__(self, name: str, value: Any, *, units: str = "",
                 minimum: Optional[float] = None,
                 maximum: Optional[float] = None,
                 read_only: bool = False,
                 description: str = "",
                 on_change: Optional[Callable[[Any], None]] = None) -> None:
        self.name = name
        self.units = units
        self.minimum = minimum
        self.maximum = maximum
        self.read_only = read_only
        self.description = description
        self.on_change = on_change
        self._value = None
        self._type = type(value)
        self._assign(value, initial=True)

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> Any:
        """Validate and assign; returns the new value."""
        if self.read_only:
            raise SteeringError(f"parameter {self.name!r} is read-only")
        return self._assign(value)

    def _assign(self, value: Any, initial: bool = False) -> Any:
        # ints may widen to floats, nothing else changes type
        if not initial:
            if isinstance(self._value, float) and isinstance(value, int):
                value = float(value)
            elif not isinstance(value, self._type):
                raise SteeringError(
                    f"parameter {self.name!r} expects "
                    f"{self._type.__name__}, got {type(value).__name__}")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.minimum is not None and value < self.minimum:
                raise SteeringError(
                    f"{self.name}={value} below minimum {self.minimum}")
            if self.maximum is not None and value > self.maximum:
                raise SteeringError(
                    f"{self.name}={value} above maximum {self.maximum}")
        self._value = value
        if not initial and self.on_change is not None:
            self.on_change(value)
        return value

    def descriptor(self) -> dict:
        """The wire-safe description advertised at registration."""
        return {
            "name": self.name,
            "value": self._value,
            "type": self._type.__name__,
            "units": self.units,
            "min": self.minimum,
            "max": self.maximum,
            "read_only": self.read_only,
            "description": self.description,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SteerableParameter {self.name}={self._value!r}>"
