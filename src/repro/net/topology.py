"""Topology builders for the scenarios the paper deploys.

The paper's deployment (§6.1/§7) is a set of *collaboratory domains* —
Rutgers, UT-Austin (CSM), Caltech (CACR) — each a campus LAN with one
DISCOVER server, applications on local compute hosts, and clients nearby,
joined by WAN links.  :func:`build_multi_domain` reproduces that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.net.costs import LinkSpec
from repro.net.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim import Simulator


@dataclass
class Domain:
    """One collaboratory domain: a server host plus LAN neighbours."""

    name: str
    server: "Host"
    app_hosts: List["Host"] = field(default_factory=list)
    client_hosts: List["Host"] = field(default_factory=list)
    router: Optional["Host"] = None


def build_lan(sim: "Simulator", net: Network, domain: str, n_app_hosts: int,
              n_client_hosts: int, spec: Optional[LinkSpec] = None,
              server_cpus: int = 1) -> Domain:
    """One campus LAN: a server, app hosts, and client hosts on a switch.

    The "switch" is modeled as direct server<->host links at LAN latency —
    campus backbones are never the bottleneck in the paper's story, the
    server CPU is.
    """
    spec = spec or LinkSpec()
    server = net.add_host(f"{domain}-server", cpu_capacity=server_cpus,
                          domain=domain)
    dom = Domain(name=domain, server=server)
    for i in range(n_app_hosts):
        h = net.add_host(f"{domain}-app{i}", domain=domain)
        net.add_link(server.name, h.name, spec.lan_latency,
                     spec.lan_bandwidth, kind="lan")
        dom.app_hosts.append(h)
    for i in range(n_client_hosts):
        h = net.add_host(f"{domain}-client{i}", domain=domain)
        net.add_link(server.name, h.name, spec.lan_latency,
                     spec.lan_bandwidth, kind="lan")
        dom.client_hosts.append(h)
    return dom


def build_multi_domain(sim: "Simulator", n_domains: int, apps_per_domain: int,
                       clients_per_domain: int,
                       spec: Optional[LinkSpec] = None,
                       server_cpus: int = 1,
                       names: Optional[List[str]] = None) -> tuple:
    """Several domains joined pairwise by WAN links (full mesh of servers).

    Returns ``(network, [Domain, ...])``.  Server-to-server links are marked
    ``kind="wan"`` so the traffic trace can isolate inter-domain traffic.
    """
    if n_domains < 1:
        raise ValueError("need at least one domain")
    net = Network(sim)
    if names is None:
        names = [f"d{i}" for i in range(n_domains)]
    if len(names) != n_domains:
        raise ValueError("names must match n_domains")
    spec = spec or LinkSpec()
    domains = [build_lan(sim, net, name, apps_per_domain, clients_per_domain,
                         spec, server_cpus) for name in names]
    for i in range(n_domains):
        for j in range(i + 1, n_domains):
            net.add_link(domains[i].server.name, domains[j].server.name,
                         spec.wan_latency, spec.wan_bandwidth, kind="wan")
    return net, domains


def build_star(sim: "Simulator", n_leaves: int, latency: float = 0.0005,
               bandwidth: float = float("inf"),
               hub_cpus: int = 1) -> tuple:
    """A hub host with ``n_leaves`` leaf hosts — the single-server scenarios.

    Returns ``(network, hub, [leaf, ...])``.
    """
    net = Network(sim)
    hub = net.add_host("hub", cpu_capacity=hub_cpus)
    leaves = []
    for i in range(n_leaves):
        leaf = net.add_host(f"leaf{i}")
        net.add_link("hub", leaf.name, latency, bandwidth, kind="lan")
        leaves.append(leaf)
    return net, hub, leaves
