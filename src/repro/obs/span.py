"""Span and trace-context records (internal to :mod:`repro.obs`).

A :class:`Span` is one timed step of a causal trace: which layer did what,
on which server, over which stretch of *virtual* time.  Spans are plain
bookkeeping objects — they are never scheduled as simulator events and are
never encoded onto the wire, so recording them cannot perturb a
simulation's schedule (the golden-table invariant).

Only :mod:`repro.obs` constructs these classes; every other module goes
through the :class:`~repro.obs.tracer.Tracer` API (enforced by the obs
boundary lint in ``tools/check_pipeline_boundary.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class TraceContext:
    """The compact, propagatable identity of a span: ``(trace_id, span_id)``.

    This is what crosses process and server boundaries — carried by
    reference in frame metadata and GIOP service-context slots, never
    serialized, so wire sizes (and therefore virtual-time schedules) are
    identical with tracing on or off.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def as_tuple(self) -> tuple:
        return (self.trace_id, self.span_id)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceContext {self.trace_id}:{self.span_id}>"


class Span:
    """One timed, attributed step of a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "op", "plane",
                 "server", "start", "end", "status", "error", "attrs")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], op: str, *, plane: str = "",
                 server: str = "", start: float = 0.0,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.op = op
        self.plane = plane
        self.server = server
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error = ""
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        """Virtual seconds covered (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        """JSON-serializable record (the JSONL exporter's row shape)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "op": self.op,
            "plane": self.plane,
            "server": self.server,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["trace_id"], data["span_id"], data.get("parent_id"),
                   data.get("op", ""), plane=data.get("plane", ""),
                   server=data.get("server", ""),
                   start=data.get("start", 0.0),
                   attrs=dict(data.get("attrs") or {}))
        span.end = data.get("end")
        span.status = data.get("status", "ok")
        span.error = data.get("error", "")
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Span {self.trace_id}:{self.span_id} {self.op!r} "
                f"{self.plane}@{self.server} [{self.status}]>")
