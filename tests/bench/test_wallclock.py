"""Smoke tests for the wall-clock performance harness."""

from __future__ import annotations

import json

from repro.bench.wallclock import (
    format_report,
    main,
    run_suite,
    time_op,
    write_report,
)


def test_time_op_measures_positive_time():
    per_op = time_op(lambda: sum(range(50)), repeat=2, number=10)
    assert per_op > 0


def test_quick_suite_report_shape(tmp_path):
    report = run_suite(quick=True)
    assert report["schema"] == 1
    assert report["quick"] is True
    names = [e["name"] for e in report["benchmarks"]]
    assert "wire/encoded_size_update_64x64" in names
    assert "collab/broadcast_poll_30_subscribers" in names
    assert "e2e/E1_app_scalability_n10" in names
    assert all(e["per_op_us"] > 0 for e in report["benchmarks"])
    # the report must survive a JSON round trip (what BENCH_*.json holds)
    path = tmp_path / "bench.json"
    write_report(str(path), report)
    loaded = json.loads(path.read_text())
    assert loaded["benchmarks"] == report["benchmarks"]
    # and render as a table
    text = format_report(report)
    assert "wire/encoded_size_update_64x64" in text


def test_cli_writes_report(tmp_path, capsys):
    out = tmp_path / "bench_cli.json"
    code = main(["--quick", "--output", str(out)])
    assert code == 0
    loaded = json.loads(out.read_text())
    assert loaded["benchmarks"]
    assert "report written" in capsys.readouterr().out
