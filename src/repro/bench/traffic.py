"""Declarative synthetic traffic for fleet-scale scenarios (E11).

Modeled on AsyncFlow's ``SimulationInput``/``requests_generator`` shape:
a scenario is *data* — arrival process, session length, think time, and
app-mix distributions — compiled into a deterministic stream of session
plans by :func:`session_plans`.  Every draw comes from a named
:class:`~repro.sim.rng.DeterministicRNG` child stream, so adding a new
distribution never perturbs existing ones and a (spec, seed) pair always
replays the identical workload.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.sim.rng import DeterministicRNG


@dataclass(frozen=True)
class Dist:
    """One scalar distribution, declared as data.

    ``kind`` ∈ {"constant", "uniform", "exponential", "lognormal"};
    integer draws round via :meth:`sample_int` (minimum 1).
    """

    kind: str
    mean: float = 0.0
    low: float = 0.0
    high: float = 0.0
    sigma: float = 1.0

    def sample(self, rng: DeterministicRNG) -> float:
        if self.kind == "constant":
            return self.mean
        if self.kind == "uniform":
            return rng.uniform(self.low, self.high)
        if self.kind == "exponential":
            return rng.exponential(self.mean)
        if self.kind == "lognormal":
            return rng.lognormal(self.mean, self.sigma)
        raise ValueError(f"unknown distribution kind {self.kind!r}")

    def sample_int(self, rng: DeterministicRNG) -> int:
        return max(1, round(self.sample(rng)))


def constant(value: float) -> Dist:
    return Dist("constant", mean=value)


def exponential(mean: float) -> Dist:
    return Dist("exponential", mean=mean)


def uniform(low: float, high: float) -> Dist:
    return Dist("uniform", low=low, high=high)


@dataclass(frozen=True)
class TrafficSpec:
    """A whole workload, declared as data.

    ``total_sessions`` sessions arrive over ``duration`` virtual seconds
    (Poisson arrivals unless ``arrival`` overrides the gap distribution);
    each session logs in at an edge server, performs ``ops_per_session``
    directory locates separated by ``think_time``, and logs out.  The
    per-op application is drawn from the app population either uniformly
    or Zipf-weighted (``app_mix="zipf"``, skew ``zipf_s``) — popular apps
    concentrating load is exactly what the consistent-hash ring must
    flatten.
    """

    total_sessions: int
    duration: float
    ops_per_session: Dist = field(default_factory=lambda: constant(2))
    think_time: Dist = field(default_factory=lambda: exponential(0.1))
    arrival: Optional[Dist] = None
    app_mix: str = "uniform"
    zipf_s: float = 1.1
    seed: int = 0

    def arrival_gap(self) -> Dist:
        if self.arrival is not None:
            return self.arrival
        return exponential(self.duration / max(1, self.total_sessions))


@dataclass
class SessionPlan:
    """One client's scripted visit, fully drawn up-front."""

    user: str
    edge: str
    apps: List[str]
    thinks: List[float]


class _AppMix:
    """Draws apps uniformly or Zipf-weighted via an inverse CDF."""

    def __init__(self, apps: Sequence[str], mix: str, s: float) -> None:
        self.apps = list(apps)
        self.mix = mix
        self._cdf: List[float] = []
        if mix == "zipf":
            total = 0.0
            for rank in range(1, len(self.apps) + 1):
                total += 1.0 / rank ** s
                self._cdf.append(total)
            self._total = total
        elif mix != "uniform":
            raise ValueError(f"unknown app_mix {mix!r}")

    def draw(self, rng: DeterministicRNG) -> str:
        if self.mix == "uniform":
            return rng.choice(self.apps)
        u = rng.uniform(0.0, self._total)
        return self.apps[min(bisect_left(self._cdf, u),
                             len(self.apps) - 1)]


def session_plans(spec: TrafficSpec, users: Sequence[str],
                  apps: Sequence[str], servers: Sequence[str],
                  rng: Optional[DeterministicRNG] = None,
                  ) -> Iterator[tuple]:
    """Yield ``(inter_arrival_gap, SessionPlan)`` pairs.

    The generator draws everything per-session from independent child
    streams of ``rng`` (default: seeded from ``spec.seed``), so the
    stream is reproducible and independent of consumption timing.
    """
    if not users or not apps or not servers:
        raise ValueError("need users, apps and servers to generate traffic")
    rng = rng or DeterministicRNG(spec.seed, "traffic")
    arrivals = rng.child("arrivals")
    picks = rng.child("users")
    edges = rng.child("edges")
    ops = rng.child("ops")
    thinks = rng.child("thinks")
    mixer = _AppMix(apps, spec.app_mix, spec.zipf_s)
    mix_rng = rng.child("mix")
    gap_dist = spec.arrival_gap()
    for _ in range(spec.total_sessions):
        gap = gap_dist.sample(arrivals)
        n_ops = spec.ops_per_session.sample_int(ops)
        plan = SessionPlan(
            user=picks.choice(users),
            edge=edges.choice(servers),
            apps=[mixer.draw(mix_rng) for _ in range(n_ops)],
            thinks=[spec.think_time.sample(thinks) for _ in range(n_ops)],
        )
        yield gap, plan
