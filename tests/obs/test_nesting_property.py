"""Property: tracer-built trees respect virtual-time nesting invariants.

Random nested workloads driven through the ``tracer.span()`` context
manager on a monotonic clock must always yield trees where every child
starts no earlier than its parent, ends no later, inherits the trace id,
and points at its real parent span.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Tracer

# a workload is a recursive tree: (advance-before, children, advance-inside)
workloads = st.recursive(
    st.tuples(st.floats(min_value=0.0, max_value=5.0,
                        allow_nan=False, allow_infinity=False),
              st.just(()),
              st.floats(min_value=0.0, max_value=5.0,
                        allow_nan=False, allow_infinity=False)),
    lambda children: st.tuples(
        st.floats(min_value=0.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        st.lists(children, max_size=3).map(tuple),
        st.floats(min_value=0.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False)),
    max_leaves=12)


def run_workload(tracer, clock, node, depth=0):
    advance_before, children, advance_inside = node
    clock["now"] += advance_before
    with tracer.span(f"op-d{depth}", plane="test",
                     server=f"srv{depth % 2}"):
        for child in children:
            run_workload(tracer, clock, child, depth + 1)
        clock["now"] += advance_inside


@settings(max_examples=60, deadline=None)
@given(workload=workloads)
def test_nesting_invariants(workload):
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], scope=lambda: "p")
    run_workload(tracer, clock, workload)

    spans = tracer.store.spans()
    assert spans, "workload always produces at least the root span"
    by_id = {span.span_id: span for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1
    (trace_id,) = {span.trace_id for span in spans}

    for span in spans:
        assert span.end is not None
        assert span.start <= span.end
        if span.parent_id is None:
            continue
        parent = by_id[span.parent_id]
        # child virtual window nests inside the parent's
        assert parent.start <= span.start
        assert span.end <= parent.end
        assert span.trace_id == parent.trace_id == trace_id

    # the reconstructed tree has one root and every span appears once
    (tree,) = tracer.store.tree(trace_id)
    walked = [node.span.span_id for _depth, node in tree.walk()]
    assert sorted(walked) == sorted(by_id)

    # critical-path segments tile the root span exactly
    root = roots[0]
    path = tracer.store.critical_path(trace_id)
    if root.duration > 0:
        assert abs(sum(seg.duration for seg in path)
                   - root.duration) < 1e-9
        assert path[0].start == root.start
        assert path[-1].end == root.end
        for a, b in zip(path, path[1:]):
            assert abs(a.end - b.start) < 1e-9
