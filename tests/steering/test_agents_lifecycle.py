"""Tests for the InteractionAgent and the application lifecycle protocol."""

import pytest

from repro import AppConfig, build_single_server
from repro.apps import SyntheticApp
from repro.net import Network
from repro.sim import Simulator
from repro.steering import (
    COMPUTING,
    INTERACTING,
    PAUSED,
    STOPPED,
    InteractionAgent,
    SteeringError,
)
from repro.steering.application import SteerableApplication
from repro.wire import ControlMessage, RegisterMessage, UpdateMessage


def standalone_app(sim=None):
    """An app wired to a host but never started (agent tests)."""
    sim = sim or Simulator()
    net = Network(sim)
    host = net.add_host("apphost")
    net.add_host("srv")
    net.add_link("apphost", "srv", 0.001)
    return SyntheticApp(host, "unit", "srv")


# ------------------------------- agent -------------------------------------

def test_agent_get_set_param():
    app = standalone_app()
    agent = app.agent
    assert agent.handle("get_param", {"name": "gain"}) == 1.0
    assert agent.handle("set_param", {"name": "gain", "value": 2.0}) == 2.0
    assert app.gain.value == 2.0


def test_agent_read_sensor_and_actuate():
    app = standalone_app()
    app.counter = 5
    assert app.agent.handle("read_sensor", {"name": "counter"}) == 5
    result = app.agent.handle("actuate", {"name": "mark", "label": "here"})
    assert result == {"marks": 1}
    assert app.marks == [(0, "here")]


def test_agent_describe_and_list_params():
    app = standalone_app()
    desc = app.agent.handle("describe", {})
    assert {p["name"] for p in desc["parameters"]} == {"gain", "bias"}
    params = app.agent.handle("list_params", {})
    assert len(params) == 2


def test_agent_status():
    app = standalone_app()
    status = app.agent.handle("status", {})
    assert status["name"] == "unit"
    assert status["state"] == "registering"


def test_agent_unknown_command():
    app = standalone_app()
    with pytest.raises(SteeringError):
        app.agent.handle("self_destruct", {})


def test_agent_lifecycle_commands():
    app = standalone_app()
    assert app.agent.handle("pause", {}) == PAUSED
    assert app.agent.handle("resume", {}) == INTERACTING
    assert app.agent.handle("stop", {}) == STOPPED
    with pytest.raises(SteeringError):
        app.agent.handle("pause", {})  # already stopped


def test_agent_counts_commands():
    app = standalone_app()
    app.agent.handle("status", {})
    app.agent.handle("status", {})
    assert app.agent.commands_handled == 2


# ----------------------------- lifecycle protocol ----------------------------

def test_app_cannot_start_twice():
    app = standalone_app()
    app.start()
    with pytest.raises(SteeringError):
        app.start()


def test_registration_timeout_stops_app():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("apphost")
    net.add_host("srv")  # no daemon listening
    net.add_link("apphost", "srv", 0.001)
    app = SyntheticApp(host, "orphan", "srv",
                       config=AppConfig(register_timeout=2.0))
    proc = app.start()
    sim.run(until=proc)
    assert not app.registered
    assert app.state == STOPPED
    assert sim.now >= 2.0


def test_phase_events_reach_server():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "phased", acl={"u": "write"},
                         config=AppConfig(steps_per_phase=2, step_time=0.01,
                                          interaction_window=0.02))
    collab.sim.run(until=2.0)
    proxy = collab.server_of(0).local_proxies[app.app_id]
    # the proxy tracked at least one full compute→interaction round trip
    assert proxy.phase in (COMPUTING, INTERACTING)
    assert proxy.updates_received >= 1


def test_update_payload_contains_monitored_sensors():
    app = standalone_app()
    app.counter = 3
    payload = app.update_payload()
    assert payload["counter"] == 3
    assert payload["_state"] == "registering"
    assert "_step" in payload
    assert len(payload["series"]) == app.payload_floats


def test_register_message_carries_interface_and_acl():
    app = standalone_app()
    reg = RegisterMessage(app.name, app.auth_token,
                          app.control.interface_descriptor(), app.acl)
    assert reg.app_name == "unit"
    assert "parameters" in reg.interface


def test_paused_app_still_serves_interaction():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(
        0, SyntheticApp, "pausable", acl={"alice": "write"},
        config=AppConfig(steps_per_phase=2, step_time=0.01,
                         interaction_window=0.05, paused_poll=0.1))
    collab.sim.run(until=2.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        yield from session.pause()
        assert app.state == PAUSED
        # even paused, queries are served (paused interaction loop)
        value = yield from session.get_param("gain")
        yield from session.resume()
        return value

    value = collab.sim.run(until=collab.sim.spawn(scenario()))
    assert value == 1.0
    assert app.state != PAUSED
