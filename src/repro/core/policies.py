"""Resource-usage accounting and access policies — the paper's §6.3 sketch.

"Currently, the system does not track the use of resources.  It is,
however, possible to add control mechanisms by creating access policies for
each server, and then restricting each server's use of resources according
to that policy.  The access policies ... can be defined in terms of metrics
like number of requests per second, or the data bytes being transferred to
each server per second."

:class:`ResourcePolicy` implements exactly those two metrics as token
buckets (requests/s and bytes/s), and :class:`UsageLedger` does the
tracking the paper says was missing.  The server applies a policy to each
peer's incoming ORB traffic when one is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class PolicyViolation(Exception):
    """A peer exceeded its resource policy (request rejected)."""


@dataclass
class UsageRecord:
    """Cumulative usage by one principal (peer server or client)."""

    requests: int = 0
    bytes: int = 0
    rejected: int = 0


class UsageLedger:
    """Per-principal usage accounting."""

    def __init__(self) -> None:
        self._records: Dict[str, UsageRecord] = {}

    def record(self, principal: str, nbytes: int = 0) -> UsageRecord:
        rec = self._records.setdefault(principal, UsageRecord())
        rec.requests += 1
        rec.bytes += nbytes
        return rec

    def record_rejection(self, principal: str) -> None:
        self._records.setdefault(principal, UsageRecord()).rejected += 1

    def usage(self, principal: str) -> UsageRecord:
        return self._records.get(principal, UsageRecord())

    def principals(self) -> list:
        return sorted(self._records)


class TokenBucket:
    """Standard token bucket over virtual time."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available at virtual time ``now``."""
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    @property
    def available(self) -> float:
        return self._tokens


class ResourcePolicy:
    """Both §6.3 metrics for one principal class.

    ``max_requests_per_s`` / ``max_bytes_per_s`` of ``None`` means
    unlimited on that axis.
    """

    def __init__(self, max_requests_per_s: Optional[float] = None,
                 max_bytes_per_s: Optional[float] = None,
                 burst_seconds: float = 2.0) -> None:
        self._req_bucket = (TokenBucket(max_requests_per_s,
                                        max_requests_per_s * burst_seconds)
                            if max_requests_per_s else None)
        self._byte_bucket = (TokenBucket(max_bytes_per_s,
                                         max_bytes_per_s * burst_seconds)
                             if max_bytes_per_s else None)

    def admit(self, now: float, nbytes: int = 0) -> bool:
        """True if one request of ``nbytes`` is within policy at ``now``."""
        if self._req_bucket is not None:
            if not self._req_bucket.try_take(now, 1.0):
                return False
        if self._byte_bucket is not None and nbytes > 0:
            if not self._byte_bucket.try_take(now, float(nbytes)):
                return False
        return True


class PolicyManager:
    """Installs policies per principal and enforces them with accounting."""

    def __init__(self) -> None:
        self._policies: Dict[str, ResourcePolicy] = {}
        self._default: Optional[ResourcePolicy] = None
        self.ledger = UsageLedger()

    def set_policy(self, principal: str, policy: ResourcePolicy) -> None:
        self._policies[principal] = policy

    def set_default_policy(self, policy: Optional[ResourcePolicy]) -> None:
        self._default = policy

    def check(self, principal: str, now: float, nbytes: int = 0) -> None:
        """Account the request; raise :class:`PolicyViolation` if denied."""
        policy = self._policies.get(principal, self._default)
        if policy is not None and not policy.admit(now, nbytes):
            self.ledger.record_rejection(principal)
            raise PolicyViolation(
                f"{principal!r} exceeded its resource policy")
        self.ledger.record(principal, nbytes)
