"""Crash recovery: kill a server, restart it, rebuild from snapshot + WAL.

Two layers of coverage:

- direct plane rebuild — mutate every journaled plane, drop the server
  object, hand the surviving backend to a replacement, assert the state
  came back (including the on-disk JSONL backend across a reopen);
- the E12 drill — the full kill → restart → recover → latecomer-catchup
  scenario, deterministic across runs.
"""

import pytest

from repro.apps import SyntheticApp
from repro.bench.scenarios import run_recovery_drill
from repro.core.deployment import build_collaboratory
from repro.storage import JsonlBackend


# --------------------- direct plane rebuild --------------------------------

def populate(collab):
    """Mutate every journaled plane of domain 0's server."""
    server = collab.server_of(0)
    app_id = f"{server.name}#a1"
    s1 = server.collab.create_session("alice")
    s2 = server.collab.create_session("bob")
    server.collab.subscribe(s1.client_id, app_id)
    server.collab.subscribe(s2.client_id, app_id)
    server.collab.join_group(s1.client_id, app_id, "scientists")
    server.collab.join_group(s2.client_id, app_id, "scientists")
    server.collab.leave_group(s2.client_id, app_id, "scientists")
    assert server.locks.acquire(app_id, s1.client_id) == "granted"
    assert server.locks.acquire(app_id, s2.client_id) == "queued"
    server.archive.log_interaction(app_id, "alice", "command",
                                   {"command": "set_param"})
    server.db.table("notes").insert("alice", {"v": 1}, created_at=0.0,
                                    readers=["bob"])
    return server, app_id, s1, s2


def assert_recovered(server2, app_id, s1, s2):
    assert sorted(server2.collab._sessions) == sorted([s1.client_id,
                                                       s2.client_id])
    assert server2.collab._sessions[s1.client_id].user == "alice"
    assert app_id in server2.collab._sessions[s1.client_id].apps
    assert server2.collab.members_of(app_id, "scientists") == [s1.client_id]
    assert server2.locks.holder_of(app_id) == s1.client_id
    assert server2.locks.queue_length(app_id) == 1
    assert server2.archive.interaction_count(app_id) == 1
    assert len(server2.db.table("notes").select("bob")) == 1


def test_restart_rebuilds_all_planes_from_wal():
    collab = build_collaboratory(1)
    collab.run_bootstrap()
    server, app_id, s1, s2 = populate(collab)
    server.stop()

    server2, report = collab.restart_server(server.name)
    assert server2 is not server
    assert server2 is collab.server_of(0)
    assert report.replayed > 0
    assert report.snapshot_lsn == 0  # cadence never reached: pure replay
    assert_recovered(server2, app_id, s1, s2)
    collab.stop()


def test_restart_recovers_from_snapshot_plus_tail():
    collab = build_collaboratory(1, storage_snapshot_every=4)
    collab.run_bootstrap()
    server, app_id, s1, s2 = populate(collab)
    server.stop()

    server2, report = collab.restart_server(server.name)
    assert report.snapshot_lsn > 0
    assert report.replayed < report.last_lsn  # most came from the snapshot
    assert_recovered(server2, app_id, s1, s2)
    collab.stop()


def test_restarted_server_continues_counter_sequences():
    """Client/app id counters must not collide with pre-crash ids."""
    collab = build_collaboratory(1)
    collab.run_bootstrap()
    server, app_id, s1, s2 = populate(collab)
    pre_app_id = server.daemon.next_app_id()
    server.stop()

    server2, _report = collab.restart_server(server.name)
    s3 = server2.collab.create_session("carol")
    assert s3.client_id not in (s1.client_id, s2.client_id)
    assert server2.daemon.next_app_id() != pre_app_id
    collab.stop()


def test_recovery_from_reopened_jsonl_directory(tmp_path):
    """The on-disk backend survives a real close: a second backend object
    over the same directory feeds the replacement server."""
    def factory(name):
        return JsonlBackend(tmp_path / name)

    collab = build_collaboratory(1, storage_backend_factory=factory,
                                 storage_snapshot_every=6)
    collab.run_bootstrap()
    server, app_id, s1, s2 = populate(collab)
    server.stop()
    # the process dies: close the file handles, reopen the directory
    collab.storage[server.name].close()
    collab.storage[server.name] = JsonlBackend(tmp_path / server.name)

    server2, report = collab.restart_server(server.name)
    assert (tmp_path / server.name / JsonlBackend.WAL_NAME).exists()
    assert report.snapshot_lsn > 0
    assert_recovered(server2, app_id, s1, s2)
    collab.stop()


def test_journaling_is_zero_event_bookkeeping():
    """Same workload with and without aggressive snapshotting → identical
    virtual time (durability must never perturb the science)."""
    def run(snapshot_every):
        collab = build_collaboratory(1,
                                     storage_snapshot_every=snapshot_every)
        collab.run_bootstrap()
        collab.add_app(0, SyntheticApp, "sim", acl={"alice": "write"})
        collab.sim.run(until=5.0)
        now = collab.sim.now
        collab.stop()
        return now

    assert run(1) == run(10_000)


# --------------------------- the E12 drill ---------------------------------

@pytest.fixture(scope="module")
def drill_run():
    row, collab = run_recovery_drill()
    yield row
    collab.stop()


def test_drill_sessions_and_archive_recover(drill_run):
    row = drill_run
    assert row["recovered_sessions"] == row["pre_sessions"] > 0
    assert row["recovered_interactions"] == row["pre_interactions"] > 0


def test_drill_lock_table_recovers(drill_run):
    assert drill_run["lock_preserved"]
    assert drill_run["queue_preserved"]


def test_drill_group_membership_recovers(drill_run):
    assert drill_run["groups_preserved"]


def test_drill_replays_only_the_tail(drill_run):
    row = drill_run
    assert row["pre_snapshots"] > 0
    assert row["snapshot_lsn"] > 0
    assert 0 < row["wal_replayed"] < row["wal_appends"]


def test_drill_latecomer_catches_up_through_restarted_server(drill_run):
    row = drill_run
    # the remote latecomer reads the recovered archive: every pre-crash
    # command comes back, plus a non-empty app log
    assert row["catchup_records"] == row["pre_interactions"]
    assert row["app_log_records"] > 0


def test_drill_surfaces_storage_counters(drill_run):
    row = drill_run
    assert row["storage_recoveries"] == 1
    assert row["storage_replayed"] == row["wal_replayed"]
    assert row["recovery_wall_ms"] > 0.0


def test_drill_is_deterministic():
    """Same parameters, fresh sim → identical row (modulo wall clock)."""
    row_a, collab_a = run_recovery_drill(n_commands=5, settle=2.0)
    collab_a.stop()
    row_b, collab_b = run_recovery_drill(n_commands=5, settle=2.0)
    collab_b.stop()
    row_a.pop("recovery_wall_ms")
    row_b.pop("recovery_wall_ms")
    assert row_a == row_b
