"""Smoke tests: every shipped example runs to completion.

Each example asserts its own scenario internally (steering took effect,
catch-up delivered history, etc.), so running ``main()`` is a meaningful
integration test, not just an import check.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
