"""Deterministic random-number streams.

Every stochastic element of a scenario (client think time, application
compute phase length, workload arrivals) draws from its own named child
stream so adding a new random consumer never perturbs existing ones — the
standard trick for reproducible parallel-system simulations.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np


class DeterministicRNG:
    """A tree of named, independently-seeded ``numpy`` generators."""

    def __init__(self, seed: int = 0, path: str = "root") -> None:
        self.seed = int(seed)
        self.path = path
        self._gen = np.random.default_rng(self._derive(path))

    def _derive(self, path: str) -> int:
        digest = hashlib.sha256(f"{self.seed}/{path}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def child(self, name: str) -> "DeterministicRNG":
        """An independent stream identified by ``name`` under this one."""
        return DeterministicRNG(self.seed, f"{self.path}/{name}")

    # -- draws ------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def integers(self, low: int, high: Optional[int] = None) -> int:
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("choice() on empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        n = len(seq)
        for i in range(n - 1, 0, -1):
            j = int(self._gen.integers(0, i + 1))
            seq[i], seq[j] = seq[j], seq[i]

    def jitter(self, value: float, fraction: float) -> float:
        """``value`` perturbed uniformly by up to ±``fraction``."""
        return value * self.uniform(1.0 - fraction, 1.0 + fraction)
