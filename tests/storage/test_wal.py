"""Unit tests for the LSN/snapshot/compaction layer."""

from repro.storage import JsonlBackend, MemoryBackend
from repro.storage.wal import WalRecord, WriteAheadLog


def test_lsns_are_monotonic_from_one():
    wal = WriteAheadLog(MemoryBackend())
    records = [wal.append("db.insert", {"i": i}, at=float(i))
               for i in range(3)]
    assert [r.lsn for r in records] == [1, 2, 3]
    assert wal.last_lsn == 3


def test_record_roundtrips_through_entries():
    backend = MemoryBackend()
    wal = WriteAheadLog(backend)
    wal.append("locks.acquire", {"app_id": "d0#a1"}, at=2.5)
    entry = backend.entries()[0]
    record = WalRecord.from_entry(entry)
    assert record == WalRecord(1, "locks.acquire", 2.5,
                               {"app_id": "d0#a1"})


def test_snapshot_compacts_covered_records():
    backend = MemoryBackend()
    wal = WriteAheadLog(backend)
    for i in range(5):
        wal.append("db.insert", {"i": i})
    compacted = wal.write_snapshot({"db": {"rows": 5}})
    assert compacted == 5
    assert backend.wal_len() == 0
    assert wal.snapshot_lsn == 5
    # post-snapshot appends form the new tail
    wal.append("db.insert", {"i": 5})
    assert [r.lsn for r in wal.tail()] == [6]
    assert wal.snapshot_state() == {"db": {"rows": 5}}


def test_tail_after_explicit_lsn():
    wal = WriteAheadLog(MemoryBackend())
    for i in range(4):
        wal.append("db.insert", {"i": i})
    assert [r.lsn for r in wal.tail(after_lsn=2)] == [3, 4]


def test_reopen_resumes_the_lsn_sequence(tmp_path):
    b = JsonlBackend(tmp_path)
    wal = WriteAheadLog(b)
    for i in range(3):
        wal.append("db.insert", {"i": i})
    wal.write_snapshot({"db": {}})
    wal.append("db.insert", {"i": 3})  # lsn 4, the tail
    b.close()

    reopened = JsonlBackend(tmp_path)
    wal2 = WriteAheadLog(reopened)
    assert wal2.last_lsn == 4
    assert wal2.snapshot_lsn == 3
    assert [r.lsn for r in wal2.tail()] == [4]
    # the sequence continues, never restarts
    assert wal2.append("db.insert", {"i": 4}).lsn == 5
    reopened.close()
