"""The simulator: a clock and an event heap.

The heap holds *(time, priority, seq, event)* tuples.  ``seq`` is a
monotonically increasing counter so simultaneous events are processed in
insertion order — this is what makes the whole reproduction deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import SimEvent, Timeout
from repro.sim.process import Process

#: Default priority for ordinary events.
NORMAL = 1
#: Priority used by the kernel for urgent bookkeeping (process resumption).
URGENT = 0


class _ScheduledCall:
    """Adapter turning a zero-arg function into an event callback.

    Used by :meth:`Simulator.call_at` / :meth:`Simulator.call_later` instead
    of a per-call lambda (no closure cell, one slotted instance).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn

    def __call__(self, _event: SimEvent) -> None:
        self.fn()


class Simulator:
    """Discrete-event simulator with virtual time.

    Typical use::

        sim = Simulator()

        def producer(sim, store):
            for i in range(3):
                yield sim.timeout(1.0)
                yield store.put(i)

        store = Store(sim)
        sim.spawn(producer(sim, store))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, int, SimEvent]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event creation -----------------------------------------------------
    def event(self) -> SimEvent:
        """Create a pending event to be triggered manually."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` virtual time units."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator, name=name)

    # alias matching SimPy vocabulary
    process = spawn

    def call_at(self, time: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self._now})")
        ev = self.timeout(time - self._now)
        ev.callbacks.append(_ScheduledCall(fn))
        return ev

    def call_later(self, delay: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` after ``delay`` virtual time units."""
        ev = self.timeout(delay)
        ev.callbacks.append(_ScheduledCall(fn))
        return ev

    # -- scheduling (kernel internal) ----------------------------------------
    def _push_event(self, event: SimEvent, delay: float = 0.0,
                    priority: int = NORMAL) -> None:
        """Put a triggered event on the heap for processing."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    # -- running -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event.ok and not event.defused:
            # A failed event nobody waited on: surface the error.
            exc = event.value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until the schedule is empty, a time, or an event.

        ``until`` may be ``None`` (drain everything), a number (absolute
        virtual time to stop at), or a :class:`SimEvent` (stop when it has
        been processed; its value is returned).
        """
        stop_event: Optional[SimEvent] = None
        if until is None:
            pass
        elif isinstance(until, SimEvent):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_on_event)
        else:
            at = float(until)
            if at < self._now:
                raise SimulationError(
                    f"run(until={at}) is in the past (now={self._now})")
            # A plain marker event at the stop time.
            marker = self.timeout(at - self._now)
            stop_event = marker
            marker.callbacks.append(self._stop_on_event)

        # Inlined step() with locals bound outside the loop — this is the
        # hottest loop in the repository (every event of every scenario).
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                when, _prio, _seq, event = pop(heap)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface the error.
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "run() schedule drained before the `until` event fired")
        return None

    @staticmethod
    def _stop_on_event(event: SimEvent) -> None:
        if not event.ok:
            # Surface the failure (e.g. an exception escaping the process
            # run() was waiting on) instead of silently returning None.
            event.defuse()
            raise event.value
        raise StopSimulation(event.value)
