"""Tests for the IDL layer: interfaces, servant validation, typed stubs."""

import pytest

from repro.core.interfaces import CORBA_PROXY, DISCOVER_CORBA_SERVER
from repro.net import Network
from repro.orb import BadOperation, Orb, OrbError
from repro.orb.idl import Interface, Operation, make_stub, validate_servant
from repro.sim import Simulator
from tests.conftest import drive

CALC = Interface("Calculator", (
    Operation("add", ("a", "b")),
    Operation("notify", ("event",), oneway=True),
))


class GoodCalc:
    def __init__(self):
        self.events = []

    def add(self, a, b):
        return a + b

    def notify(self, event):
        self.events.append(event)


# ------------------------------ interfaces ---------------------------------

def test_interface_lookup():
    op = CALC.operation("add")
    assert op.params == ("a", "b")
    assert not op.oneway
    assert CALC.operation("notify").oneway
    assert "add" in CALC
    assert "divide" not in CALC


def test_interface_unknown_operation():
    with pytest.raises(BadOperation):
        CALC.operation("divide")


def test_interface_inheritance():
    extended = Interface("SciCalc", (Operation("sqrt", ("x",)),),
                         bases=(CALC,))
    assert "add" in extended
    assert "sqrt" in extended
    assert len(extended.operations()) == 3


def test_interface_duplicate_op_rejected():
    with pytest.raises(OrbError):
        Interface("Dup", (Operation("x"), Operation("x")))


# --------------------------- servant validation ------------------------------

def test_validate_good_servant():
    validate_servant(GoodCalc(), CALC)


def test_validate_missing_operation():
    class Partial:
        def add(self, a, b):
            return a + b

    with pytest.raises(OrbError, match="notify"):
        validate_servant(Partial(), CALC)


def test_validate_arity_mismatch():
    class Wrong:
        def add(self, a, b, c):
            return 0

        def notify(self, event):
            pass

    with pytest.raises(OrbError, match="arity"):
        validate_servant(Wrong(), CALC)


def test_validate_defaults_are_generous():
    class Defaulted:
        def add(self, a, b=0):
            return a + b

        def notify(self, event="tick"):
            pass

    validate_servant(Defaulted(), CALC)


def test_validate_varargs_accepted():
    class Var:
        def add(self, *args):
            return sum(args)

        def notify(self, **kwargs):
            pass

    validate_servant(Var(), CALC)


def test_discover_servants_match_their_idl():
    """The shipped servants must satisfy the declared interface levels."""
    from repro.core.corba import CorbaProxyServant, DiscoverCorbaServerServant

    class FakeServer:
        pass

    validate_servant(DiscoverCorbaServerServant(FakeServer()),
                     DISCOVER_CORBA_SERVER)
    validate_servant(CorbaProxyServant(FakeServer(), "x#a1"), CORBA_PROXY)


# ------------------------------- stubs ----------------------------------

def make_pair():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 0.001)
    corb = Orb(net.hosts["a"])
    sorb = Orb(net.hosts["b"])
    servant = GoodCalc()
    ref = sorb.activate(servant, key="calc")
    return sim, corb, ref, servant


def test_stub_twoway_call():
    sim, corb, ref, servant = make_pair()
    stub = make_stub(corb, ref, CALC)

    def caller():
        return (yield from stub.add(2, 3))

    assert drive(sim, caller()) == 5


def test_stub_oneway_call():
    sim, corb, ref, servant = make_pair()
    stub = make_stub(corb, ref, CALC)
    stub.notify("boom")  # plain call, no yield
    sim.run()
    assert servant.events == ["boom"]


def test_stub_rejects_undeclared_operation_locally():
    sim, corb, ref, servant = make_pair()
    stub = make_stub(corb, ref, CALC)
    with pytest.raises(BadOperation):
        stub.divide  # attribute access alone raises — nothing on the wire


def test_stub_timeout_kwarg():
    sim, corb, ref, servant = make_pair()
    stub = make_stub(corb, ref, CALC, timeout=5.0)

    def caller():
        return (yield from stub.add(1, 1, timeout=10.0))

    assert drive(sim, caller()) == 2


def test_stub_exposes_ref_and_interface():
    sim, corb, ref, servant = make_pair()
    stub = make_stub(corb, ref, CALC)
    assert stub.ref == ref
    assert stub.interface is CALC
