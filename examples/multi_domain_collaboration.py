"""Global access across collaboratory domains — the paper's core claim.

Three collaboratory domains (named after the paper's deployment: Rutgers,
UT-Austin/CSM, Caltech/CACR) joined by the peer-to-peer middleware.  A CFD
simulation runs at Rutgers; scientists at all three sites log into their
*local* server, discover the remote application through the server network,
form one collaboration group, chat, and take turns steering under the
distributed lock — with every update crossing the WAN only once per site.

Run:  python examples/multi_domain_collaboration.py
"""

from repro import AppConfig, LinkSpec, build_collaboratory
from repro.apps import Heat2DApp

SITES = ["rutgers", "utaustin", "caltech"]


def main() -> None:
    collab = build_collaboratory(
        3, names=SITES, apps_hosts_per_domain=1, client_hosts_per_domain=2,
        spec=LinkSpec(wan_latency=0.040))  # 40 ms between campuses
    collab.run_bootstrap()
    print(f"server network: {sorted(collab.servers)}")

    cfd = collab.add_app(
        0, Heat2DApp, "cfd-combustor", n=48,
        acl={"vijay": "write", "manish": "write", "visitor": "read"},
        config=AppConfig(steps_per_phase=10, step_time=0.02,
                         interaction_window=0.05))
    collab.sim.run(until=3.0)
    print(f"CFD code registered at rutgers as {cfd.app_id}\n")

    vijay = collab.add_portal(0)      # local to the app
    manish = collab.add_portal(1)     # one WAN hop away
    visitor = collab.add_portal(2)    # another site, read-only

    def vijay_runs():
        yield from vijay.login("vijay")
        session = yield from vijay.open(cfd.app_id)
        yield from session.acquire_lock()
        yield from session.set_param("source_strength", 4.0)
        yield from session.chat("cranked the burner to 4.0 — watch T_max")
        yield vijay.sim.timeout(3.0)
        yield from session.release_lock()
        yield from session.chat("lock released, it's yours Manish")

    def manish_steers_remotely():
        apps = yield from manish.login("manish")
        app_servers = {a["app_id"]: a["server"] for a in apps}
        print(f"manish (utaustin) discovered: {app_servers}")
        session = yield from manish.open(cfd.app_id)
        # wait for vijay to hand over the lock
        outcome = yield from session.wait_lock(timeout=30.0)
        print(f"manish got the steering lock: {outcome} "
              f"(t={manish.sim.now:.1f}s)")
        t_max = yield from session.read_sensor("max_temperature")
        yield from session.set_param("diffusivity", 0.24)
        yield from session.chat(f"T_max was {t_max:.1f}; raised "
                                f"diffusivity to spread the hot spot")
        yield from session.release_lock()

    def visitor_watches():
        yield from visitor.login("visitor")
        yield from visitor.open(cfd.app_id)
        yield visitor.sim.timeout(12.0)
        yield from visitor.poll(max_items=128)
        chats = [(m.author, m.text) for m in visitor.chat_log]
        print(f"\nvisitor (caltech) saw {len(visitor.updates)} updates "
              f"and the whole conversation:")
        for author, text in chats:
            print(f"  <{author}> {text}")

    procs = [collab.sim.spawn(g()) for g in
             (vijay_runs, manish_steers_remotely, visitor_watches)]
    for p in procs:
        collab.sim.run(until=p)

    trace = collab.net.trace.snapshot()
    print(f"\nWAN traffic for the whole session: "
          f"{trace['wan_messages']} messages, "
          f"{trace['wan_bytes'] / 1024:.0f} kB "
          f"(one push per remote site per update — §5.2.3)")
    assert cfd.control.parameter("diffusivity").value == 0.24


if __name__ == "__main__":
    main()
