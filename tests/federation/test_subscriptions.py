"""SubscriptionManager: push unsubscribe lifecycle and poll fallback."""

from repro import build_collaboratory
from repro.apps import SyntheticApp

from tests.federation.conftest import cfg, run


def _open_app(collab, app, domain):
    portal = collab.add_portal(domain)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)

    run(collab, scenario())
    return portal


def test_unsubscribe_when_last_local_subscriber_leaves(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    first = _open_app(collab, app, 1)
    second = _open_app(collab, app, 1)
    proxy = s0.local_proxies[app.app_id]
    assert s1.name in proxy.remote_subscribers

    run(collab, first.logout())
    collab.sim.run(until=collab.sim.now + 1.0)
    # one local subscriber remains → the push subscription stays
    assert s1.name in proxy.remote_subscribers
    assert s1.federation_metrics.get("unsubscribes") == 0

    run(collab, second.logout())
    collab.sim.run(until=collab.sim.now + 1.0)
    # last local subscriber gone → s1 unsubscribed itself at the home
    assert s1.name not in proxy.remote_subscribers
    assert s1.federation_metrics.get("unsubscribes") == 1
    # the home server no longer pushes updates for dead subscribers
    pushed = s0.stats["remote_update_pushes"]
    collab.sim.run(until=collab.sim.now + 2.0)
    assert s0.stats["remote_update_pushes"] == pushed


def test_logout_does_not_unsubscribe_local_apps(pair):
    collab, app = pair
    s0 = collab.server_of(0)
    portal = _open_app(collab, app, 0)  # same domain: app is local
    run(collab, portal.logout())
    collab.sim.run(until=collab.sim.now + 1.0)
    assert s0.federation_metrics.get("unsubscribes") == 0


def test_push_subscribes_counted(pair):
    collab, app = pair
    s1 = collab.server_of(1)
    _open_app(collab, app, 1)
    assert s1.federation_metrics.get("subscribes") >= 1


def test_staleness_recorded_for_pushed_updates(pair):
    collab, app = pair
    s1 = collab.server_of(1)
    _open_app(collab, app, 1)
    collab.sim.run(until=collab.sim.now + 2.0)
    assert app.app_id in s1.federation_metrics.apps_observed()
    stats = s1.federation_metrics.staleness_stats(app.app_id)
    assert stats.mean >= 0.0


def _poll_collab():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 update_mode="poll",
                                 update_poll_interval=0.2)
    for server in collab.servers.values():
        server.peer_call_timeout = 1.0
    collab.run_bootstrap()
    app = collab.add_app(1, SyntheticApp, "polled",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    return collab, app


def test_poll_mode_counts_rounds_and_delivers():
    collab, app = _poll_collab()
    s0 = collab.server_of(0)
    portal = _open_app(collab, app, 0)
    collab.sim.run(until=collab.sim.now + 2.0)
    assert s0.federation_metrics.get("pollers_started") == 1
    assert s0.federation_metrics.get("poll_rounds") >= 2
    assert s0.subscriptions.active_pollers() == 1

    def drain():
        yield from portal.poll(max_items=64)
        return len(portal.updates)

    assert run(collab, drain()) >= 2
    # polled updates record staleness too
    assert app.app_id in s0.federation_metrics.apps_observed()


def test_poll_failover_counted_when_home_dies():
    collab, app = _poll_collab()
    s0 = collab.server_of(0)
    _open_app(collab, app, 0)
    collab.sim.run(until=collab.sim.now + 1.0)
    collab.server_of(1).stop()
    collab.sim.run(until=collab.sim.now + 3.0)
    assert s0.federation_metrics.get("poll_failovers") >= 1


def test_poller_exits_after_idle_rounds():
    collab, app = _poll_collab()
    s0 = collab.server_of(0)
    portal = _open_app(collab, app, 0)
    run(collab, portal.logout())
    # poller exits after three idle rounds once local interest is gone
    collab.sim.run(until=collab.sim.now + 2.0)
    assert s0.subscriptions.active_pollers() == 0
