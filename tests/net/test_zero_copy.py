"""The loopback zero-copy contract (PR 6 tentpole, wire layer).

Payloads cross the simulated wire by reference: ``encode()`` is never
called on the send path, byte accounting comes from the allocation-free
size visitor, and ndarray payloads arrive as the very same object that was
sent.  ``strict_wire=True`` opts back into round-tripping every payload
through the reference codec at hand-off, for codec-parity tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import Network
from repro.sim import Simulator
from repro.wire import UpdateMessage, set_encode_hook


@pytest.fixture
def encode_calls():
    calls = []
    previous = set_encode_hook(calls.append)
    yield calls
    set_encode_hook(previous)


def _loopback_net():
    sim = Simulator()
    net = Network(sim)
    net.add_host("h")
    inbox = net.hosts["h"].bind(9)
    return sim, net, inbox


def test_loopback_send_never_encodes(encode_calls):
    sim, net, inbox = _loopback_net()
    grid = np.arange(16, dtype=np.float64)
    msg = UpdateMessage(payload={"grid": grid, "label": "step"}, seq=1,
                        timestamp=0.0)
    net.send("h", 1, "h", 9, msg)
    sim.run()
    frame = inbox.inbox.try_get()
    assert frame is not None
    assert encode_calls == []          # zero-copy: no bytes materialized
    assert frame.payload is msg        # the payload travels by reference
    assert frame.payload.payload["grid"] is grid  # ndarray zero-copy
    assert frame.size > 0              # ...but byte accounting still real


def test_loopback_fanout_sized_not_encoded(encode_calls):
    sim, net, inbox = _loopback_net()
    msg = UpdateMessage(payload={"x": 1.0}, seq=1, timestamp=0.0)
    frames = [net.send("h", 1, "h", 9, msg) for _ in range(10)]
    sim.run()
    assert encode_calls == []
    # freeze_size memoized: one size, shared by the whole fan-out
    assert len({f.size for f in frames}) == 1


def test_strict_wire_round_trips_bytes(encode_calls):
    sim = Simulator()
    net = Network(sim, strict_wire=True)
    net.add_host("h")
    inbox = net.hosts["h"].bind(9)
    grid = np.arange(16, dtype=np.float64)
    msg = UpdateMessage(payload={"grid": grid, "label": "step"}, seq=7,
                        timestamp=0.0)
    net.send("h", 1, "h", 9, msg)
    sim.run()
    frame = inbox.inbox.try_get()
    assert len(encode_calls) == 1      # the reference codec really ran
    assert frame.payload is not msg    # a decoded copy, not the original
    assert isinstance(frame.payload, UpdateMessage)
    assert frame.payload.seq == 7
    np.testing.assert_array_equal(frame.payload.payload["grid"], grid)
    assert frame.payload.payload["grid"] is not grid


def test_strict_wire_size_matches_reference_codec(encode_calls):
    """Frame.size (visitor) == len(encode(payload)) + overhead, both modes."""
    from repro.wire import encode

    sim = Simulator()
    net = Network(sim, strict_wire=True)
    net.add_host("h")
    net.hosts["h"].bind(9)
    msg = UpdateMessage(payload={"a": [1, 2.5, "three"]}, seq=1,
                        timestamp=1.0)
    frame = net.send("h", 1, "h", 9, msg)
    sim.run()
    set_encode_hook(None)
    assert frame.size == len(encode(msg)) + net.frame_overhead
