"""End-to-end scenario runners — one per experiment family.

Every runner assembles a fresh deployment, drives a workload for a stretch
of *virtual* time, and returns a plain dict of measured quantities (one
table row).  Wall-clock cost is what pytest-benchmark reports; the science
is in the returned rows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.workload import (
    bench_app_config,
    make_app_farm,
    polling_client,
    steering_client,
    update_watching_client,
)
from repro.core.deployment import build_collaboratory, build_single_server
from repro.metrics import LatencyRecorder
from repro.net.costs import CostModel, LinkSpec
from repro.pipeline.core import PLANE_CHANNEL, PLANE_HTTP, PLANE_ORB


def pipeline_counters(servers, tracer=None) -> dict:
    """Aggregate per-plane pipeline counters across ``servers`` into the
    extra row keys every scenario reports (``http_requests``,
    ``orb_requests``, ``channel_requests``, ``pipeline_errors``,
    ``sessions_expired``), plus the federation layer's subscription and
    cache-invalidation totals (``fed_subscribes``, ``fed_unsubscribes``,
    ``fed_invalidations``, ``fed_poll_failovers``), and the health plane's
    fleet summary (``health_healthy`` / ``health_degraded`` /
    ``health_unhealthy`` / ``health_unknown`` status counts plus
    ``alerts_fired`` / ``alerts_resolved`` / ``health_failovers``),
    and the directory plane's client totals (``dir_lookups``,
    ``dir_locates``, ``dir_publishes``, ``dir_read_failovers``,
    ``dir_write_skips``, ``dir_stale_retries``, ``dir_stub_hits``,
    ``dir_stub_misses``) plus ``fed_discovery_skipped``, and the durable
    state plane's totals (``storage_appends``, ``storage_snapshots``,
    ``storage_compacted``, ``storage_recoveries``, ``storage_replayed``).
    Observability totals ride along too: the structured log's retained /
    ring-dropped record counts (``log_records``, ``log_dropped`` — so
    overflow is visible, not silent) and the time-series store's size
    (``ts_series``, ``ts_points``).  The cost-attribution plane's
    fleet totals close the set (``cost_requests``, ``cost_events``,
    ``cost_cpu_us``, ``cost_wan_bytes``, ``cost_dropped_frames``,
    ``cost_dropped_bytes``, ``cost_entries`` — distinct rollup keys —
    and ``cost_top_principal``, the heaviest requester); shared ledgers
    are deduplicated by identity so a deployment-wide ledger counts
    once, and dropped frames are no longer invisible to rollups.
    Passing the deployment's tracer adds the span-store totals
    (``spans_recorded``, ``traces_recorded``, ``spans_dropped``)."""
    http = orb = channel = errors = expired = 0
    subscribes = unsubscribes = invalidations = failovers = 0
    discovery_skipped = 0
    dir_totals = {"lookups": 0, "locates": 0, "publishes": 0,
                  "read_failovers": 0, "write_skips": 0,
                  "stale_epoch_retries": 0, "stub_cache_hits": 0,
                  "stub_cache_misses": 0}
    storage_totals = {"wal_appends": 0, "snapshots": 0,
                      "records_compacted": 0, "recoveries": 0,
                      "records_replayed": 0}
    status_counts = {"healthy": 0, "degraded": 0, "unhealthy": 0,
                     "unknown": 0}
    alerts_fired = alerts_resolved = health_failovers = 0
    log_records = log_dropped = ts_series = ts_points = 0
    ledgers: dict = {}  # id → ledger: shared deployment ledgers count once
    for server in servers:
        metrics = server.pipeline_metrics
        http += metrics.requests(PLANE_HTTP)
        orb += metrics.requests(PLANE_ORB)
        channel += metrics.requests(PLANE_CHANNEL)
        errors += metrics.errors()
        expired += server.container.sessions_expired
        fed = server.federation_metrics
        subscribes += fed.get("subscribes")
        unsubscribes += fed.get("unsubscribes")
        invalidations += (fed.get("app_invalidations")
                          + fed.get("peer_invalidations"))
        failovers += fed.get("poll_failovers")
        discovery_skipped += fed.get("discovery_skipped")
        directory = getattr(server, "directory_metrics", None)
        if directory is not None:
            for key in dir_totals:
                dir_totals[key] += directory.get(key)
        storage = getattr(server, "storage_metrics", None)
        if storage is not None:
            for key in storage_totals:
                storage_totals[key] += storage.get(key)
        health = getattr(server, "health", None)
        if health is not None:
            for status, n in health.model.status_counts().items():
                status_counts[status] = status_counts.get(status, 0) + n
            alert_snap = health.alerts.snapshot()
            alerts_fired += alert_snap["fired"]
            alerts_resolved += alert_snap["resolved"]
            health_failovers += health.counters["failovers"]
        log = getattr(server, "log", None)
        if log is not None:
            log_records += len(log)
            log_dropped += log.dropped
        timeseries = getattr(server, "timeseries", None)
        if timeseries is not None:
            ts_snap = timeseries.snapshot()
            ts_series += ts_snap["series"]
            ts_points += ts_snap["points"]
        ledger = getattr(server, "ledger", None)
        if ledger is not None:
            ledgers[id(ledger)] = ledger
    cost = {"requests": 0, "events": 0, "cpu_us": 0, "wan_bytes": 0,
            "dropped_frames": 0, "dropped_bytes": 0}
    cost_entries = 0
    top_principal = "-"
    top_requests = -1
    for ledger in ledgers.values():
        totals = ledger.total.as_dict()
        for key in cost:
            cost[key] += totals[key]
        cost_entries += len(ledger.entries)
        for principal, count, _err in ledger.top("requests", 1):
            if count > top_requests:
                top_principal, top_requests = principal, count
    row = {
        "http_requests": http,
        "orb_requests": orb,
        "channel_requests": channel,
        "pipeline_errors": errors,
        "sessions_expired": expired,
        "fed_subscribes": subscribes,
        "fed_unsubscribes": unsubscribes,
        "fed_invalidations": invalidations,
        "fed_poll_failovers": failovers,
        "fed_discovery_skipped": discovery_skipped,
        "dir_lookups": dir_totals["lookups"],
        "dir_locates": dir_totals["locates"],
        "dir_publishes": dir_totals["publishes"],
        "dir_read_failovers": dir_totals["read_failovers"],
        "dir_write_skips": dir_totals["write_skips"],
        "dir_stale_retries": dir_totals["stale_epoch_retries"],
        "dir_stub_hits": dir_totals["stub_cache_hits"],
        "dir_stub_misses": dir_totals["stub_cache_misses"],
        "storage_appends": storage_totals["wal_appends"],
        "storage_snapshots": storage_totals["snapshots"],
        "storage_compacted": storage_totals["records_compacted"],
        "storage_recoveries": storage_totals["recoveries"],
        "storage_replayed": storage_totals["records_replayed"],
        "health_healthy": status_counts["healthy"],
        "health_degraded": status_counts["degraded"],
        "health_unhealthy": status_counts["unhealthy"],
        "health_unknown": status_counts["unknown"],
        "alerts_fired": alerts_fired,
        "alerts_resolved": alerts_resolved,
        "health_failovers": health_failovers,
        "log_records": log_records,
        "log_dropped": log_dropped,
        "ts_series": ts_series,
        "ts_points": ts_points,
        "cost_requests": cost["requests"],
        "cost_events": cost["events"],
        "cost_cpu_us": cost["cpu_us"],
        "cost_wan_bytes": cost["wan_bytes"],
        "cost_dropped_frames": cost["dropped_frames"],
        "cost_dropped_bytes": cost["dropped_bytes"],
        "cost_entries": cost_entries,
        "cost_top_principal": top_principal,
    }
    if tracer is not None:
        row["spans_recorded"] = len(tracer.store)
        row["traces_recorded"] = len(tracer.store.trace_ids())
        row["spans_dropped"] = tracer.store.dropped
    return row


def run_app_scalability(n_apps: int, *, duration: float = 30.0,
                        update_period: float = 0.5,
                        cost_model: Optional[CostModel] = None,
                        health_enabled: bool = True,
                        accounting_enabled: bool = True,
                        profiler=None) -> dict:
    """E1: one server, ``n_apps`` applications pushing updates.

    Returns the server-side update-processing lag; the knee past which the
    mean lag grows with offered load marks the capacity the paper reports
    as ">40 simultaneous applications".  ``health_enabled=False`` turns the
    health plane off entirely, ``accounting_enabled=False`` the cost
    ledger — the overhead benches' control arms.  ``profiler`` (a
    :class:`repro.obs.DispatchProfiler`) is installed on the kernel for
    the run; an untagged profiler inherits the deployment's tracer so
    samples carry plane/operation span names.
    """
    collab = build_collaboratory(1,
                                 apps_hosts_per_domain=max(4, n_apps // 4),
                                 cost_model=cost_model,
                                 health_enabled=health_enabled,
                                 accounting_enabled=accounting_enabled)
    collab.run_bootstrap()
    server = collab.server_of(0)
    recorder = LatencyRecorder(collab.sim)
    server.recorder = recorder
    make_app_farm(collab, n_apps, update_period=update_period)
    if profiler is not None:
        if profiler.tracer is None:
            profiler.tracer = collab.tracer
        profiler.install(collab.sim)
    collab.sim.run(until=collab.sim.now + duration)
    if profiler is not None:
        profiler.uninstall()
    stats = recorder.stats("update_lag")
    offered = n_apps / update_period
    return {
        "n_apps": n_apps,
        "offered_updates_per_s": offered,
        "mean_lag_ms": stats.mean * 1e3,
        "p90_lag_ms": stats.p90 * 1e3,
        "max_lag_ms": stats.maximum * 1e3,
        "updates_processed": stats.count,
        "throughput_per_s": stats.count / duration,
        # saturated = the server can no longer keep update lag below one
        # update period (work arrives faster than it drains)
        "saturated": stats.mean > update_period,
        **pipeline_counters(collab.servers.values(),
                            tracer=collab.tracer),
    }


def run_client_scalability(n_clients: int, *, duration: float = 30.0,
                           poll_interval: float = 0.25,
                           cost_model: Optional[CostModel] = None,
                           server_cpus: int = 1) -> dict:
    """E2: one server, one application, ``n_clients`` polling clients.

    Returns client-visible poll round-trip stats; degradation past ~20
    clients reproduces §6.1's client limit.  ``server_cpus`` supports the
    vertical-scaling ablation A6.
    """
    collab = build_single_server(client_hosts=max(4, n_clients // 4),
                                 cost_model=cost_model,
                                 server_cpus=server_cpus)
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, user="bench")
    collab.sim.run(until=collab.sim.now + 2.0)  # app registers
    app_id = apps[0].app_id
    recorder = LatencyRecorder(collab.sim)
    for _ in range(n_clients):
        portal = collab.add_portal(0)
        collab.sim.spawn(polling_client(
            portal, app_id, user="bench", duration=duration,
            poll_interval=poll_interval, recorder=recorder, warmup=2.0))
    collab.sim.run(until=collab.sim.now + duration + 1.0)
    stats = recorder.stats("poll_rtt")
    return {
        "n_clients": n_clients,
        "server_cpus": server_cpus,
        "mean_rtt_ms": stats.mean * 1e3,
        "p90_rtt_ms": stats.p90 * 1e3,
        "p99_rtt_ms": stats.p99 * 1e3,
        "polls": stats.count,
        **pipeline_counters(collab.servers.values(),
                            tracer=collab.tracer),
    }


def run_collab_scenario(*, mode: str, n_domains: int = 3,
                        clients_per_domain: int = 4,
                        duration: float = 20.0,
                        wan_latency: float = 0.030,
                        poll_interval: float = 0.25,
                        update_period: float = 0.5,
                        payload_floats: int = 64) -> dict:
    """E4/E5: a collaboration group spanning domains — P2P vs centralized.

    ``mode="p2p"``: each client polls its *local* server; updates cross the
    WAN once per remote server.  ``mode="central"``: every client polls the
    application's home server directly over the WAN (the pre-middleware
    deployment), so each update crosses the WAN once per remote client.
    Returns WAN traffic totals and client update latency.
    """
    if mode not in ("p2p", "central"):
        raise ValueError(f"unknown mode {mode!r}")
    spec = LinkSpec(wan_latency=wan_latency)
    collab = build_collaboratory(
        n_domains, apps_hosts_per_domain=1,
        client_hosts_per_domain=clients_per_domain, spec=spec)
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, domain_index=0, user="bench",
                         update_period=update_period,
                         payload_floats=payload_floats)
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    home_server = collab.domains[0].server.name

    recorder = LatencyRecorder(collab.sim)
    from repro.client import DiscoverPortal
    for d in range(n_domains):
        for c in range(clients_per_domain):
            host = collab.domains[d].client_hosts[
                c % len(collab.domains[d].client_hosts)]
            target = (home_server if mode == "central"
                      else collab.domains[d].server.name)
            portal = DiscoverPortal(host, target)
            collab.portals.append(portal)
            collab.sim.spawn(update_watching_client(
                portal, app_id, user="bench", duration=duration,
                poll_interval=poll_interval, recorder=recorder))
    collab.net.trace.reset()
    collab.sim.run(until=collab.sim.now + duration + 1.0)
    stats = recorder.stats("update_latency")
    trace = collab.net.trace
    return {
        "mode": mode,
        "n_domains": n_domains,
        "clients": n_domains * clients_per_domain,
        "wan_latency_ms": wan_latency * 1e3,
        "wan_messages": trace.wan_messages,
        "wan_bytes": trace.wan_bytes,
        "lan_messages": trace.lan_messages,
        "mean_update_latency_ms": stats.mean * 1e3,
        "p90_update_latency_ms": stats.p90 * 1e3,
        "updates_seen": stats.count,
        **pipeline_counters(collab.servers.values(),
                            tracer=collab.tracer),
    }


def run_remote_vs_local(*, remote: bool, duration: float = 20.0,
                        command_interval: float = 0.5,
                        wan_latency: float = 0.030) -> dict:
    """E6: steer an application homed locally vs one CORBA hop away."""
    spec = LinkSpec(wan_latency=wan_latency)
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1, spec=spec)
    collab.run_bootstrap()
    # An interaction-dominant application, so command latency measures the
    # middleware path (HTTP + server + optional CORBA relay) rather than
    # compute-phase buffering.
    from repro.apps import SyntheticApp
    from repro.steering import AppConfig
    app = collab.add_app(
        1, SyntheticApp, "steer-target", acl={"bench": "write"},
        config=AppConfig(steps_per_phase=1, step_time=0.005,
                         interaction_window=0.25,
                         command_service_time=0.002))
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = app.app_id
    # local client sits in the app's domain; remote client one WAN hop away
    portal = collab.add_portal(1 if not remote else 0)
    recorder = LatencyRecorder(collab.sim)
    collab.sim.spawn(steering_client(
        portal, app_id, user="bench", duration=duration,
        command_interval=command_interval, recorder=recorder,
        poll_interval=0.02))
    collab.sim.run(until=collab.sim.now + duration + 2.0)
    stats = recorder.stats("steer_rtt")
    return {
        "placement": "remote" if remote else "local",
        "wan_latency_ms": wan_latency * 1e3,
        "mean_steer_rtt_ms": stats.mean * 1e3,
        "p90_steer_rtt_ms": stats.p90 * 1e3,
        "commands": stats.count,
        "throughput_per_s": stats.count / duration,
        **pipeline_counters(collab.servers.values(),
                            tracer=collab.tracer),
    }


def run_traced_remote_command(*, wan_latency: float = 0.060,
                              sampling="always"):
    """Observability scenario: one cross-server steering command, traced.

    Two domains; the application is homed in domain 1, the client's portal
    in domain 0, so a single ``get_param`` steer crosses the WAN through
    the full stack — portal → HTTP plane → router → federation relay →
    GIOP client → home server's ORB plane → proxy — and the tracer
    reconstructs it as one span tree spanning both servers.

    Returns ``(row, tracer, registry)``: the scenario row, the shared
    :class:`~repro.obs.Tracer` (its store holds the trace), and the
    deployment's :class:`~repro.obs.MetricsRegistry`.
    """
    spec = LinkSpec(wan_latency=wan_latency)
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1, spec=spec,
                                 trace_sampling=sampling)
    collab.run_bootstrap()
    from repro.apps import SyntheticApp
    from repro.steering import AppConfig
    app = collab.add_app(
        1, SyntheticApp, "traced-target", acl={"bench": "write"},
        config=AppConfig(steps_per_phase=1, step_time=0.005,
                         interaction_window=0.25,
                         command_service_time=0.002))
    collab.sim.run(until=collab.sim.now + 2.0)
    portal = collab.add_portal(0)
    result = {}

    def scenario():
        yield from portal.login("bench")
        session = yield from portal.open(app.app_id)
        result["value"] = yield from session.steer("get_param",
                                                   {"name": "gain"})

    proc = collab.sim.spawn(scenario(), name="traced-steer")
    collab.sim.run(until=proc)
    tracer = collab.tracer
    row = {
        "wan_latency_ms": wan_latency * 1e3,
        "virtual_time_s": collab.sim.now,
        "result": result.get("value"),
        **pipeline_counters(collab.servers.values(), tracer=tracer),
    }
    return row, tracer, collab.metrics_registry()


def run_fault_injection(*, duration: float = 30.0, kill_at: float = 10.0,
                        wan_latency: float = 0.030,
                        heartbeat_period: float = 0.25,
                        gossip_period: float = 0.5,
                        peer_call_timeout: float = 0.5,
                        command_interval: float = 0.5,
                        response_timeout: float = 5.0,
                        log_sink=None):
    """E10: kill a server mid-run; measure detection, failover, alerting.

    Three domains; the steered application is homed in domain 1 with a
    same-named replica in domain 2.  A resilient client in domain 0 steers
    through its local server the whole run.  At ``kill_at`` the domain-1
    server is stopped cold (its ports unbind, so in-flight and later
    frames are dropped like TCP RSTs).  The health plane on the surviving
    servers must (a) mark ``server:srvB`` unhealthy within the hysteresis
    bound, (b) fail the client's commands over to the replica, (c) fire an
    SLO burn-rate alert on the client-facing server with trace exemplars,
    and (d) resolve the alert once failover restores the error budget.

    Returns ``(row, collab)`` — the measured row plus the live deployment
    so callers (the status CLI, the CI artifact exporter) can scrape
    ``GET /status?format=prom`` from it afterwards.
    """
    from repro.apps import SyntheticApp
    from repro.bench.workload import resilient_steering_client
    from repro.steering import AppConfig

    spec = LinkSpec(wan_latency=wan_latency)
    collab = build_collaboratory(3, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1, spec=spec,
                                 health_period=heartbeat_period,
                                 health_gossip_period=gossip_period,
                                 log_sink=log_sink)
    for server in collab.servers.values():
        server.peer_call_timeout = peer_call_timeout
    collab.run_bootstrap()
    interactive = AppConfig(steps_per_phase=1, step_time=0.005,
                            interaction_window=0.25,
                            command_service_time=0.002)
    primary = collab.add_app(1, SyntheticApp, "fault-target",
                             acl={"bench": "write"}, config=interactive)
    collab.add_app(2, SyntheticApp, "fault-target",
                   acl={"bench": "write"}, config=interactive)
    collab.sim.run(until=collab.sim.now + 2.0)  # apps register

    victim = collab.server_of(1)
    client_server = collab.server_of(0)
    portal = collab.add_portal(0)
    counts: dict = {}
    t0 = collab.sim.now
    collab.sim.spawn(resilient_steering_client(
        portal, primary.app_id, user="bench", duration=duration,
        command_interval=command_interval, counts=counts,
        response_timeout=response_timeout))
    kill_time = {}

    def killer():
        yield collab.sim.timeout(kill_at)
        kill_time["t"] = collab.sim.now
        victim.stop()

    collab.sim.spawn(killer(), name="fault-injector")
    collab.sim.run(until=t0 + duration + 2.0)

    victim_key = client_server.health.server_key(victim.name)
    detection = client_server.health.detection_latency(
        victim.name, kill_time.get("t", t0 + kill_at))
    survivors = [s for s in collab.servers.values() if s is not victim]
    exemplars = sorted({tid for a in client_server.health.alerts.history()
                        for tid in a.exemplars})
    row = {
        "duration_s": duration,
        "kill_at_s": kill_at,
        "victim": victim.name,
        "victim_status": client_server.health.status_of(victim_key),
        "detection_latency_s": detection,
        "commands_ok": counts.get("ok", 0),
        "commands_failed": counts.get("failed", 0),
        "alert_exemplars": len(exemplars),
        **pipeline_counters(survivors, tracer=collab.tracer),
    }
    return row, collab


def run_recovery_drill(*, n_commands: int = 10,
                       command_interval: float = 0.5,
                       outage: float = 1.0, settle: float = 4.0,
                       wan_latency: float = 0.030,
                       snapshot_every: int = 32,
                       storage_backend_factory=None):
    """E12: kill a server mid-collaboration, restart it, recover its planes.

    Two domains; the steered application is homed in domain 1.  A driver
    client joins a sub-group, takes the steering lock, and issues
    ``n_commands`` mutating commands; a second client queues behind the
    lock.  Then the domain-1 server is stopped cold and — after
    ``outage`` virtual seconds — replaced via
    :meth:`~repro.core.deployment.Collaboratory.restart_server`, which
    rebuilds sessions, proxies, lock tables, group membership, and the
    archive from the surviving backend's ``snapshot + WAL tail``.
    Finally a latecomer in domain 0 logs in as a read-only ACL user and
    catches up from the recovered archive across the WAN.

    ``storage_backend_factory`` selects the medium (default in-memory;
    CI passes :class:`~repro.storage.JsonlBackend` directories so the
    compacted snapshot survives as an artifact).  Returns
    ``(row, collab)``; every row value is deterministic except
    ``recovery_wall_ms`` (real time, reported not asserted).
    """
    from repro.apps import SyntheticApp
    from repro.steering import AppConfig

    spec = LinkSpec(wan_latency=wan_latency)
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1, spec=spec,
                                 storage_backend_factory=storage_backend_factory,
                                 storage_snapshot_every=snapshot_every)
    collab.run_bootstrap()
    interactive = AppConfig(steps_per_phase=1, step_time=0.005,
                            interaction_window=0.25,
                            command_service_time=0.002)
    primary = collab.add_app(1, SyntheticApp, "recovery-target",
                             acl={"bench": "write", "observer": "read"},
                             config=interactive)
    collab.sim.run(until=collab.sim.now + 2.0)  # app registers
    app_id = primary.app_id
    victim = collab.server_of(1)
    victim_name = victim.name

    driver = collab.add_portal(1)
    waiter = collab.add_portal(1)
    state: dict = {}

    def driver_setup():
        yield from driver.login("bench")
        session = yield from driver.open(app_id)
        yield from session.join_group("scientists")
        state["driver_lock"] = yield from session.acquire_lock()
        state["driver"] = session

    proc = collab.sim.spawn(driver_setup(), name="driver-setup")
    collab.sim.run(until=proc)

    def waiter_setup():
        yield from waiter.login("bench")
        session = yield from waiter.open(app_id)
        yield from session.join_group("scientists")
        state["waiter_lock"] = yield from session.acquire_lock()

    proc = collab.sim.spawn(waiter_setup(), name="waiter-setup")
    collab.sim.run(until=proc)

    def drive_commands():
        session = state["driver"]
        for i in range(n_commands):
            yield collab.sim.timeout(command_interval)
            yield from session.set_param("gain", float(i))

    proc = collab.sim.spawn(drive_commands(), name="driver-commands")
    collab.sim.run(until=proc)

    pre = {
        "sessions": victim.collab.session_count(),
        "holder": victim.locks.holder_of(app_id),
        "queue": victim.locks.queue_length(app_id),
        "members_all": victim.collab.members_of(app_id),
        "members_sci": victim.collab.members_of(app_id, "scientists"),
        "interactions": victim.archive.interaction_count(app_id),
    }
    wal_appends = victim.storage_metrics.get("wal_appends")
    pre_snapshots = victim.storage_metrics.get("snapshots")

    # -- crash, outage, restart, recovery ---------------------------------
    victim.stop()
    collab.sim.run(until=collab.sim.now + outage)
    server2, report = collab.restart_server(victim_name)
    collab.run_bootstrap()
    collab.sim.run(until=collab.sim.now + settle)

    post = {
        "sessions": server2.collab.session_count(),
        "holder": server2.locks.holder_of(app_id),
        "queue": server2.locks.queue_length(app_id),
        "members_all": server2.collab.members_of(app_id),
        "members_sci": server2.collab.members_of(app_id, "scientists"),
        "interactions": server2.archive.interaction_count(app_id),
    }

    # -- latecomer catch-up across the WAN from the recovered archive -----
    late = collab.add_portal(0)
    records: dict = {}

    def latecomer():
        yield from late.login("observer")
        session = yield from late.open(app_id)
        records["catchup"] = yield from session.catchup(n=100)
        records["app_log"] = yield from session.replay_app_log()

    proc = collab.sim.spawn(latecomer(), name="latecomer")
    collab.sim.run(until=proc)

    row = {
        "victim": victim_name,
        "outage_s": outage,
        "snapshot_every": snapshot_every,
        "pre_sessions": pre["sessions"],
        "recovered_sessions": post["sessions"],
        "pre_interactions": pre["interactions"],
        "recovered_interactions": post["interactions"],
        "lock_preserved": post["holder"] == pre["holder"],
        "queue_preserved": post["queue"] == pre["queue"],
        "groups_preserved": (post["members_all"] == pre["members_all"]
                             and post["members_sci"] == pre["members_sci"]),
        "wal_appends": wal_appends,
        "pre_snapshots": pre_snapshots,
        "wal_replayed": report.replayed,
        "snapshot_lsn": report.snapshot_lsn,
        "recovery_wall_ms": round(report.wall_ms, 3),
        "catchup_records": len(records.get("catchup", ())),
        "app_log_records": len(records.get("app_log", ())),
        **pipeline_counters(collab.servers.values(), tracer=collab.tracer),
    }
    return row, collab


def run_telemetry_drill(*, duration: float = 30.0, kill_at: float = 10.0,
                        outage: float = 2.0, settle: float = 5.0,
                        wan_latency: float = 0.030,
                        heartbeat_period: float = 0.25,
                        gossip_period: float = 0.5,
                        peer_call_timeout: float = 0.5,
                        command_interval: float = 0.5,
                        response_timeout: float = 2.0,
                        bucket_width: float = 1.0,
                        breach_threshold: float = 0.01,
                        warmup: float = 2.0):
    """E13: kill-and-recover, observed entirely through the telemetry plane.

    The E10 fault shape (three domains, replica app, resilient client)
    plus the E12 recovery (the victim restarts after ``outage`` and
    rejoins), but every headline number is *queried from the time-series
    store* rather than read off live collectors — the drill that proves
    the plane supports post-hoc fleet-wide analysis:

    - **detection**: the fleet-merged per-bucket error rate
      (``pipeline.errors.http`` over ``pipeline.requests.http``) first
      breaches ``breach_threshold`` — the default is the request SLO's
      fast burn threshold, 10x a 0.1% error budget — within one bucket
      width of the kill instant.
    - **recovery**: the fleet-merged ``pipeline.latency.http`` p99 over
      the post-recovery window returns to within one log-bucket
      (~9.05% < 10%) of the pre-kill baseline.  The baseline window
      starts ``warmup`` seconds in, so the one-off login/open setup
      requests don't inflate the steady-state tail being compared.

    The merge includes the dead victim's registry (captured before the
    restart replaces it), so pre-kill history survives the crash in the
    fleet view.  Buckets are ``bucket_width`` (1 s) wide so the windows
    are legible in the E13 table.  Returns ``(row, collab, merged)`` —
    ``merged`` is the fleet-merged
    :class:`~repro.obs.TimeSeriesRegistry` for further queries.
    """
    from repro.apps import SyntheticApp
    from repro.bench.workload import resilient_steering_client
    from repro.core.deployment import reset_runtime_ids
    from repro.steering import AppConfig

    # id-counter digits feed wire sizes, so the ledger's byte totals are
    # only run-deterministic if every drill starts from the same seeds
    reset_runtime_ids()
    spec = LinkSpec(wan_latency=wan_latency)
    collab = build_collaboratory(3, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1, spec=spec,
                                 health_period=heartbeat_period,
                                 health_gossip_period=gossip_period,
                                 timeseries_bucket_width=bucket_width)
    for server in collab.servers.values():
        server.peer_call_timeout = peer_call_timeout
    collab.run_bootstrap()
    interactive = AppConfig(steps_per_phase=1, step_time=0.005,
                            interaction_window=0.25,
                            command_service_time=0.002)
    primary = collab.add_app(1, SyntheticApp, "drill-target",
                             acl={"bench": "write"}, config=interactive)
    collab.add_app(2, SyntheticApp, "drill-target",
                   acl={"bench": "write"}, config=interactive)
    collab.sim.run(until=collab.sim.now + 2.0)  # apps register

    victim = collab.server_of(1)
    victim_name = victim.name
    portal = collab.add_portal(0)
    counts: dict = {}
    t0 = collab.sim.now
    collab.sim.spawn(resilient_steering_client(
        portal, primary.app_id, user="bench", duration=duration,
        command_interval=command_interval, counts=counts,
        response_timeout=response_timeout))
    kill_time = {}

    def killer():
        yield collab.sim.timeout(kill_at)
        kill_time["t"] = collab.sim.now
        victim.stop()

    collab.sim.spawn(killer(), name="telemetry-drill-killer")

    # crash → outage → restart → recovery, with the client steering
    # through all of it; the victim's pre-kill series are captured before
    # restart_server swaps in a fresh registry
    collab.sim.run(until=t0 + kill_at + outage)
    victim_history = victim.timeseries
    collab.restart_server(victim_name)
    collab.run_bootstrap()
    collab.sim.run(until=t0 + duration + 2.0)
    end = collab.sim.now

    merged = collab.merged_timeseries(extra=[victim_history])
    kill_t = kill_time.get("t", t0 + kill_at)

    # detection: first bucket whose fleet error fraction breaches the
    # fast-burn threshold
    requests = {p["t"]: p["value"]
                for p in merged.query("pipeline.requests.http", "points",
                                      start=t0, end=end)}
    try:
        errors = merged.query("pipeline.errors.http", "points",
                              start=t0, end=end)
    except KeyError:
        errors = []
    breach_start = None
    for point in errors:
        total = requests.get(point["t"], 0.0)
        if total > 0 and point["value"] / total >= breach_threshold:
            breach_start = point["t"]
            break

    # recovery: merged p99 over the post-recovery window vs the pre-kill
    # baseline, both straight from quantile queries over the store.  The
    # baseline ends at the last bucket boundary at or before the kill:
    # the straddling bucket also holds post-kill timeout latencies.
    recover_t = kill_t + outage + settle
    baseline_end = (kill_t // bucket_width) * bucket_width
    p99_baseline = merged.query("pipeline.latency.http", "quantile",
                                start=t0 + warmup, end=baseline_end, q=0.99)
    p99_recovered = merged.query("pipeline.latency.http", "quantile",
                                 start=recover_t, end=end, q=0.99)
    snap = merged.snapshot()
    row = {
        "duration_s": duration,
        "bucket_width_s": bucket_width,
        "kill_at_s": round(kill_t - t0, 3),
        "outage_s": outage,
        "victim": victim_name,
        "breach_delay_s": (None if breach_start is None
                           else round(breach_start - kill_t, 3)),
        "p99_baseline_ms": round(p99_baseline * 1e3, 3),
        "p99_recovered_ms": round(p99_recovered * 1e3, 3),
        "p99_ratio": round(p99_recovered / p99_baseline, 4),
        "commands_ok": counts.get("ok", 0),
        "commands_failed": counts.get("failed", 0),
        "merged_series": snap["series"],
        "merged_points": snap["points"],
        **pipeline_counters(collab.servers.values(), tracer=collab.tracer),
    }
    return row, collab, merged


def scrape_status(collab, *, domain_index: int = 0, path: str = "/status",
                  params: Optional[dict] = None):
    """Issue one in-sim ``GET`` against a server's status servlet.

    Drives the live deployment a little further so the request flows
    through the real interceptor pipeline (the scrape itself is metered
    and traced, like a production Prometheus pull).  Returns the response
    body — a dict for the JSON views, the raw exposition text for
    ``params={"format": "prom"}``.
    """
    from repro.web.client import HttpClient

    domain = collab.domains[domain_index]
    host = (domain.client_hosts or [domain.server])[0]
    client = HttpClient(host, domain.server.name)
    result = {}

    def scrape():
        result["body"] = yield from client.get(path, params)

    proc = collab.sim.spawn(scrape(), name="status-scrape")
    collab.sim.run(until=proc)
    client.close()
    return result["body"]
