"""Property tests: ndarray round-trips across dtypes and shapes.

The steering path ships NumPy fields (wavefields, saturation profiles)
through the serializer, so shape/dtype/value fidelity is load-bearing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import decode, encode, encoded_size

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.int16, np.uint8,
          np.bool_, np.complex128]


@settings(max_examples=150, deadline=None)
@given(
    dtype=st.sampled_from(DTYPES),
    shape=st.one_of(
        st.tuples(st.integers(0, 40)),
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
    ),
    seed=st.integers(0, 2 ** 16),
)
def test_ndarray_roundtrip_any_dtype_shape(dtype, shape, seed):
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 100, size=shape)
    arr = raw.astype(dtype)
    out = decode(encode(arr))
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


def test_non_contiguous_array_roundtrips():
    base = np.arange(64, dtype=np.float64).reshape(8, 8)
    view = base[::2, ::2]  # strided view
    assert not view.flags["C_CONTIGUOUS"]
    out = decode(encode(view))
    assert np.array_equal(out, view)


def test_fortran_ordered_array_roundtrips():
    arr = np.asfortranarray(np.arange(12, dtype=np.int32).reshape(3, 4))
    out = decode(encode(arr))
    assert np.array_equal(out, arr)


def test_decoded_array_is_writable_copy():
    arr = np.zeros(4)
    out = decode(encode(arr))
    out[0] = 1.0  # frombuffer results are read-only unless copied
    assert arr[0] == 0.0


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 2000))
def test_encoded_size_tracks_payload(n):
    small = encoded_size(np.zeros(n, dtype=np.float64))
    double = encoded_size(np.zeros(2 * n, dtype=np.float64))
    assert double - small == 8 * n  # pure payload growth, fixed framing


def test_array_inside_message_roundtrips():
    from repro.wire import UpdateMessage
    field = np.linspace(0, 1, 37).reshape(1, 37)
    msg = UpdateMessage(payload={"field": field}, seq=3)
    out = decode(encode(msg))
    assert np.array_equal(out.payload["field"], field)
    assert out.seq == 3
