"""Trace exporters: JSONL (lossless, reloadable) and Chrome trace-event
JSON (drop the file into Perfetto / ``chrome://tracing``).

Virtual-time convention: span timestamps are virtual seconds; the Chrome
exporter emits them as microseconds (``ts`` / ``dur``), so one simulated
second reads as one second on the Perfetto timeline.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Union

from repro.obs.span import Span
from repro.obs.store import SpanStore


def _spans_of(source: Union[SpanStore, Iterable[Span]]) -> List[Span]:
    if isinstance(source, SpanStore):
        return source.spans()
    return list(source)


# -- JSONL (lossless round-trip) -------------------------------------------

def to_jsonl_lines(source: Union[SpanStore, Iterable[Span]]) -> List[str]:
    """One compact JSON object per span."""
    return [json.dumps(span.to_dict(), sort_keys=True)
            for span in _spans_of(source)]


def export_jsonl(source: Union[SpanStore, Iterable[Span]],
                 path: str) -> int:
    """Write spans to ``path`` as JSONL; returns the span count."""
    lines = to_jsonl_lines(source)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def load_jsonl(path: str) -> SpanStore:
    """Reload a JSONL export into a fresh (unbounded-enough) store."""
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    store = SpanStore(max_spans=max(len(spans), 1))
    for span in spans:
        store.add(span)
    return store


def tree_signature(store: SpanStore, trace_id: int) -> tuple:
    """A comparable fingerprint of one trace tree (export round-trip
    checks): nested ``(op, plane, server, start, end, status, children)``
    tuples, child order by start time."""
    def node_sig(node) -> tuple:
        span = node.span
        return (span.op, span.plane, span.server, span.start, span.end,
                span.status, tuple(node_sig(c) for c in node.children))
    return tuple(node_sig(root) for root in store.tree(trace_id))


# -- Chrome trace-event JSON (Perfetto) ------------------------------------

def to_chrome_trace(source: Union[SpanStore, Iterable[Span]]) -> dict:
    """The trace-event ``{"traceEvents": [...]}`` document.

    Each finished span becomes one complete ("X") event; servers map to
    pids (with ``process_name`` metadata) and traces to tids, so Perfetto
    lays a cross-server trace out as one row group per server.
    """
    spans = _spans_of(source)
    pids = {}
    events = []
    for span in spans:
        server = span.server or "(client)"
        pid = pids.setdefault(server, len(pids) + 1)
        end = span.end if span.end is not None else span.start
        events.append({
            "ph": "X",
            "name": span.op,
            "cat": span.plane or "span",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": pid,
            "tid": span.trace_id,
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
                "error": span.error,
                **span.attrs,
            },
        })
    meta = [{"ph": "M", "name": "process_name", "pid": pid,
             "args": {"name": server}}
            for server, pid in sorted(pids.items(), key=lambda kv: kv[1])]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def export_chrome(source: Union[SpanStore, Iterable[Span]],
                  path: str) -> int:
    """Write the Chrome trace-event document; returns the span count."""
    doc = to_chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
    return sum(1 for ev in doc["traceEvents"] if ev["ph"] == "X")
