"""ORB-plane admission via the request pipeline (§6.3 enforcement point)."""

from repro.core.policies import PolicyManager, ResourcePolicy
from repro.net import Network
from repro.orb import Orb, RemoteException
from repro.pipeline import AdmissionInterceptor, Interceptor
from repro.sim import Simulator
from tests.conftest import drive


class Echo:
    def echo(self, x):
        return x


class Recording(Interceptor):
    name = "recording"

    def __init__(self):
        self.seen = []

    def before(self, ctx):
        self.seen.append((ctx.principal, ctx.operation, ctx.size))


def make_pair():
    sim = Simulator()
    net = Network(sim)
    net.add_host("caller")
    net.add_host("callee")
    net.add_link("caller", "callee", 0.001)
    corb = Orb(net.hosts["caller"])
    sorb = Orb(net.hosts["callee"])
    ref = sorb.activate(Echo(), key="echo")
    return sim, corb, sorb, ref


def test_interceptor_sees_principal_operation_size():
    sim, corb, sorb, ref = make_pair()
    rec = Recording()
    sorb.pipeline = sorb.pipeline.extended(rec)

    def caller():
        return (yield from corb.invoke(ref, "echo", 42))

    assert drive(sim, caller()) == 42
    assert len(rec.seen) == 1
    principal, op, size = rec.seen[0]
    assert principal == "caller"
    assert op == "echo"
    assert size > 0


def test_rejection_becomes_remote_exception():
    sim, corb, sorb, ref = make_pair()

    class Denied(Exception):
        pass

    class Deny(Interceptor):
        def before(self, ctx):
            raise Denied(f"{ctx.principal} not welcome")

    sorb.pipeline = sorb.pipeline.extended(Deny())

    def caller():
        try:
            yield from corb.invoke(ref, "echo", 1)
        except RemoteException as exc:
            return exc.exc_type

    assert drive(sim, caller()) == "Denied"


def test_admission_applies_to_oneway_too():
    # The pre-pipeline ORB only guarded two-way calls via its admission
    # attribute; both paths now dispatch through the same chain, so token
    # buckets drain on oneway traffic as well.
    sim, corb, sorb, ref = make_pair()
    policies = PolicyManager()
    policies.set_policy("caller", ResourcePolicy(max_requests_per_s=1.0,
                                                 burst_seconds=1.0))
    sorb.pipeline = sorb.pipeline.extended(AdmissionInterceptor(policies))
    for _ in range(5):
        corb.invoke_oneway(ref, "echo", 1)
    sim.run()
    usage = policies.ledger.usage("caller")
    assert usage.requests + usage.rejected == 5
    assert usage.requests >= 1
    assert usage.rejected >= 1


def test_oneway_and_twoway_share_the_same_chain():
    sim, corb, sorb, ref = make_pair()
    rec = Recording()
    sorb.pipeline = sorb.pipeline.extended(rec)
    corb.invoke_oneway(ref, "echo", 1)

    def caller():
        return (yield from corb.invoke(ref, "echo", 2))

    assert drive(sim, caller()) == 2
    assert [op for _, op, _ in rec.seen] == ["echo", "echo"]


def test_default_pipeline_admits_everything():
    sim, corb, sorb, ref = make_pair()
    assert sorb.pipeline.find(AdmissionInterceptor) is None

    def caller():
        return (yield from corb.invoke(ref, "echo", "ok"))

    assert drive(sim, caller()) == "ok"
