"""Tests for §4.1 request redirection (remote_access="redirect")."""

import pytest

from repro import AppConfig, PortalError, build_collaboratory
from repro.apps import SyntheticApp


def cfg():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


@pytest.fixture
def redirected():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 remote_access="redirect")
    collab.run_bootstrap()
    app = collab.add_app(1, SyntheticApp, "far-app",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    return collab, app


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def test_redirect_mode_validation():
    with pytest.raises(ValueError):
        build_collaboratory(1, apps_hosts_per_domain=1,
                            client_hosts_per_domain=1,
                            remote_access="teleport")


def test_open_follows_redirect_and_steers(redirected):
    collab, app = redirected
    portal = collab.add_portal(0)
    home = collab.domains[1].server.name

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        # the session now speaks to the home server directly
        assert session.http.server_host == home
        assert session.client_id.startswith(home)
        lock = yield from session.acquire_lock()
        value = yield from session.set_param("gain", 6.0)
        return (lock, value)

    lock, value = run(collab, scenario())
    assert lock == "granted"
    assert value == 6.0
    assert app.gain.value == 6.0
    # nothing was relayed over the middleware command path
    for server in collab.servers.values():
        assert server.stats["remote_commands_relayed"] == 0


def test_redirect_local_apps_unaffected(redirected):
    collab, app = redirected
    local_app = collab.add_app(0, SyntheticApp, "near-app",
                               acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=collab.sim.now + 2.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(local_app.app_id)
        assert session.http is portal.http  # no redirect for local apps
        yield from session.acquire_lock()
        return (yield from session.set_param("gain", 2.0))

    assert run(collab, scenario()) == 2.0


def test_redirect_updates_flow_through_merged_poll(redirected):
    collab, app = redirected
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)
        yield portal.sim.timeout(2.0)
        yield from portal.poll(max_items=64)
        return len(portal.updates)

    assert run(collab, scenario()) >= 2


def test_redirect_connection_reused_for_second_app(redirected):
    collab, app = redirected
    app2 = collab.add_app(1, SyntheticApp, "far-app-2",
                          acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=collab.sim.now + 2.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        s1 = yield from portal.open(app.app_id)
        s2 = yield from portal.open(app2.app_id)
        return (s1.http is s2.http, s1.client_id == s2.client_id,
                len(portal._connections))

    same_http, same_cid, n_conns = run(collab, scenario())
    assert same_http and same_cid
    assert n_conns == 1


def test_redirect_close_releases_secondary_connections(redirected):
    collab, app = redirected
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)

    run(collab, scenario())
    assert len(portal._connections) == 1
    portal.close()
    assert portal._connections == {}
