"""The ORB's wire protocol (GIOP, abridged).

Two message types with request-id correlation.  Replies carry one of three
status codes, mirroring GIOP's NO_EXCEPTION / USER_EXCEPTION /
SYSTEM_EXCEPTION trichotomy.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.wire.serialize import register_codec

STATUS_OK = "ok"
STATUS_USER_EXC = "user_exception"
STATUS_SYSTEM_EXC = "system_exception"

# Wire field order of the two message types.  GIOP messages are the per-call
# hot path, so the classes use __slots__; the codec functions below replicate
# exactly what the default ``dict(vars(obj))`` codec produced before, keeping
# the encoding byte-for-byte identical.
_REQUEST_FIELDS = ("request_id", "object_key", "operation", "args", "kwargs",
                   "reply_host", "reply_port", "oneway")
_REPLY_FIELDS = ("request_id", "status", "result", "exc_type", "exc_message")


class GiopRequest:
    """One remote invocation: target object key, operation, arguments.

    ``service_context`` mirrors GIOP's service-context list, carrying the
    caller's trace context.  It is a slot but deliberately *not* a wire
    field (absent from ``_REQUEST_FIELDS``), so encoded size — and every
    golden experiment table — is identical with tracing on or off; decoded
    instances simply lack the attribute (read with ``getattr``).
    """

    __slots__ = _REQUEST_FIELDS + ("service_context", "__weakref__")

    def __init__(self, request_id: int, object_key: str, operation: str,
                 args: tuple = (), kwargs: Optional[dict] = None,
                 reply_host: str = "", reply_port: int = 0,
                 oneway: bool = False, service_context: Any = None) -> None:
        self.request_id = request_id
        self.object_key = object_key
        self.operation = operation
        self.args = args
        self.kwargs = kwargs if kwargs is not None else {}
        self.reply_host = reply_host
        self.reply_port = reply_port
        self.oneway = oneway
        self.service_context = service_context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<GiopRequest #{self.request_id} "
                f"{self.object_key}.{self.operation}>")


class GiopReply:
    """The reply to a request: status + result (or error description)."""

    __slots__ = _REPLY_FIELDS + ("__weakref__",)

    def __init__(self, request_id: int, status: str = STATUS_OK,
                 result: Any = None, exc_type: str = "",
                 exc_message: str = "") -> None:
        self.request_id = request_id
        self.status = status
        self.result = result
        self.exc_type = exc_type
        self.exc_message = exc_message

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GiopReply #{self.request_id} {self.status}>"


def _slots_codec(cls: type, fields: tuple) -> None:
    """Register a ``__slots__`` class with an explicit field-order codec."""
    def to_fields(obj: Any, _fields=fields) -> dict:
        return {name: getattr(obj, name) for name in _fields}

    def from_fields(data: dict, _cls=cls) -> Any:
        obj = _cls.__new__(_cls)
        for name, value in data.items():
            setattr(obj, name, value)
        return obj

    register_codec(cls, to_fields=to_fields, from_fields=from_fields)


_slots_codec(GiopRequest, _REQUEST_FIELDS)
_slots_codec(GiopReply, _REPLY_FIELDS)
