"""Property-based tests: Store behaves like a FIFO queue model.

The Store underlies every message queue in the system (link buffers,
inboxes, per-client FIFO buffers), so we check it against a plain
``collections.deque`` model over arbitrary operation sequences.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PriorityStore, Simulator, Store

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 100)),
        st.tuples(st.just("get"), st.just(0)),
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_store_matches_fifo_model(sequence):
    sim = Simulator()
    store = Store(sim)
    model = deque()
    got_real = []
    got_model = []

    for op, value in sequence:
        if op == "put":
            store.put(value)
            model.append(value)
        else:
            item = store.try_get()
            got_real.append(item)
            got_model.append(model.popleft() if model else None)
    sim.run()
    assert got_real == got_model
    assert list(store.items) == list(model)


@settings(max_examples=100, deadline=None)
@given(ops, st.integers(min_value=1, max_value=5))
def test_bounded_store_never_exceeds_capacity(sequence, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    for op, value in sequence:
        if op == "put":
            store.try_put(value)
        else:
            store.try_get()
        assert len(store) <= capacity
    sim.run()
    assert len(store) <= capacity


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 1000)),
                max_size=50))
def test_priority_store_always_pops_minimum(items):
    sim = Simulator()
    store = PriorityStore(sim)
    for item in items:
        store.put(item)
    sim.run()
    popped = []
    while True:
        item = store.try_get()
        if item is None:
            break
        popped.append(item)
    assert popped == sorted(items)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_blocking_getters_receive_everything_in_order(values):
    """N waiting getters + N later puts: items delivered FIFO to FIFO."""
    sim = Simulator()
    store = Store(sim)
    received = []

    def getter(tag):
        item = yield store.get()
        received.append((tag, item))

    for i in range(len(values)):
        sim.spawn(getter(i))

    def producer():
        for v in values:
            yield sim.timeout(1.0)
            yield store.put(v)

    sim.spawn(producer())
    sim.run()
    assert received == list(enumerate(values))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=10))
def test_cancel_preserves_items_for_later_getters(n_cancelled):
    """Cancelled get() events must never consume items (the timed-wait
    correctness requirement of the interaction phase)."""
    sim = Simulator()
    store = Store(sim)
    events = [store.get() for _ in range(n_cancelled)]
    for ev in events:
        store.cancel(ev)
    store.put("survivor")
    sim.run()
    assert store.try_get() == "survivor"
