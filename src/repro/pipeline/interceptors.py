"""The standard cross-cutting interceptors shared by all three planes.

Each class wraps code that previously lived inline in one dispatch path:

- :class:`SecurityInterceptor` — first-level authentication at the
  dispatch boundary (the daemon's pre-assigned application token check,
  §4.1) and the seam for per-plane ACL enforcement (§5.2.2).
- :class:`AdmissionInterceptor` — §6.3 resource policies: per-principal
  token buckets (requests/s, bytes/s) plus :class:`UsageLedger`
  accounting, formerly the ORB-only ``admission`` attribute.
- :class:`ErrorEnvelopeInterceptor` — one error envelope per plane,
  absorbing the per-servlet ``_error`` helpers and the ad-hoc try/except
  blocks the planes used to carry.
- :class:`MetricsInterceptor` — per-plane request counts and latency
  samples into :class:`repro.metrics.PipelineMetrics`.

Causal tracing joins the chain as :class:`repro.obs.TracingInterceptor`
(between the envelope and security), opening one span per dispatched
request on every plane; end-to-end traffic correlation now rides on the
per-frame trace ids the tracer stamps, not on request-id tagging.

Dispatch modules (``repro.web.container``, ``repro.orb.core``,
``repro.core.daemon``) must not import ``repro.core.security`` or
``repro.core.policies`` directly — policy and auth code reaches a plane
only through this module (enforced by ``tools/check_pipeline_boundary.py``
in CI).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.collaboration import CollaborationError
from repro.core.locking import LockError
from repro.core.policies import PolicyManager
from repro.core.security import SecurityError, SecurityManager
from repro.metrics import PipelineMetrics
from repro.orb.errors import BadOperation, CommFailure, ObjectNotFound, OrbError
from repro.orb.giop import STATUS_SYSTEM_EXC, STATUS_USER_EXC, GiopReply
from repro.pipeline.core import (
    PLANE_CHANNEL,
    PLANE_HTTP,
    PLANE_ORB,
    Interceptor,
    Pipeline,
    RequestContext,
)
from repro.web.http import (
    BAD_REQUEST,
    CONFLICT,
    FORBIDDEN,
    NOT_FOUND,
    SERVER_ERROR,
)
from repro.wire import AckMessage, RegisterMessage


class SecurityInterceptor(Interceptor):
    """First-level auth at the dispatch boundary (two-level security, §5.2.2).

    On the channel plane it authenticates registering applications against
    their pre-assigned tokens (§4.1) before any proxy state is created.
    The HTTP and ORB planes authenticate at the session/servant layer
    (login and per-app ACLs); this interceptor is their seam for future
    transport-level checks.
    """

    name = "security"

    def __init__(self, security: SecurityManager) -> None:
        self.security = security

    def before(self, ctx: RequestContext) -> None:
        if ctx.plane == PLANE_CHANNEL and isinstance(ctx.request,
                                                     RegisterMessage):
            msg = ctx.request
            if not self.security.authenticate_application(msg.app_name,
                                                          msg.auth_token):
                raise SecurityError("authentication failed")


class AdmissionInterceptor(Interceptor):
    """§6.3 resource policies at every plane's front door.

    Accounts each request against the principal's :class:`UsageLedger`
    record and rejects it with :class:`PolicyViolation` when a token
    bucket (requests/s or bytes/s) is exhausted.  Replaces the ORB-only
    ``admission`` attribute, so oneway ORB calls, HTTP requests, and
    channel messages all drain the same buckets.
    """

    name = "admission"

    def __init__(self, policies: PolicyManager,
                 planes: Optional[Iterable[str]] = None) -> None:
        self.policies = policies
        self.planes = frozenset(planes) if planes is not None else None

    def before(self, ctx: RequestContext) -> None:
        if self.planes is not None and ctx.plane not in self.planes:
            return
        now = ctx.started_at if ctx.started_at is not None else 0.0
        self.policies.check(ctx.principal or "anonymous", now, ctx.size)


class ErrorEnvelopeInterceptor(Interceptor):
    """Uniform error envelopes for all three planes.

    Absorbs any exception escaping the handler (or a ``before`` hook
    further in) and converts it to the plane's reply shape, recording the
    exception class name in ``ctx.attrs["error_type"]`` so the same
    failure is observable identically on every plane:

    - HTTP: a ``(status, {"error": message})`` body — the mapping the
      per-servlet ``_error`` helpers used to duplicate (SecurityError→403,
      LockError→409, CollaborationError→404, OrbError→502-ish 500,
      KeyError/ValueError→400, anything else→500).
    - ORB: a :class:`GiopReply` — CORBA system exceptions for the ORB's
      own failures, user exceptions for everything a servant raised.
    - channel: a negative :class:`AckMessage` for registrations; other
      channel messages have no reply path, so the error is absorbed
      silently (the daemon listener must never die on a bad message).
    """

    name = "error-envelope"

    def on_error(self, ctx: RequestContext) -> None:
        exc = ctx.error
        if exc is None:
            return
        ctx.attrs["error_type"] = type(exc).__name__
        if ctx.plane == PLANE_ORB:
            system = isinstance(exc, (ObjectNotFound, BadOperation,
                                      CommFailure))
            status = STATUS_SYSTEM_EXC if system else STATUS_USER_EXC
            request_id = getattr(ctx.request, "request_id", ctx.request_id)
            ctx.response = GiopReply(request_id, status, None,
                                     type(exc).__name__, str(exc))
        elif ctx.plane == PLANE_CHANNEL:
            if isinstance(ctx.request, RegisterMessage):
                ctx.response = AckMessage(ctx.request.msg_id, ok=False,
                                          info=str(exc))
        else:
            ctx.response = (self.http_status(exc),
                            {"error": self.http_message(exc)})
        ctx.error = None

    @staticmethod
    def http_status(exc: BaseException) -> int:
        """The HTTP status one middleware exception maps to."""
        if isinstance(exc, SecurityError):
            return FORBIDDEN
        if isinstance(exc, LockError):
            return CONFLICT
        if isinstance(exc, CollaborationError):
            return NOT_FOUND
        if isinstance(exc, (KeyError, ValueError)):
            return BAD_REQUEST
        return SERVER_ERROR

    @staticmethod
    def http_message(exc: BaseException) -> str:
        """The HTTP error-body message for one middleware exception."""
        if isinstance(exc, (SecurityError, LockError, CollaborationError)):
            return str(exc)
        if isinstance(exc, OrbError):
            return f"peer failure: {exc}"
        if isinstance(exc, KeyError):
            return f"missing parameter {exc}"
        if isinstance(exc, ValueError):
            return f"bad parameters: {exc}"
        return f"{type(exc).__name__}: {exc}"


class MetricsInterceptor(Interceptor):
    """Per-plane request counters and latency histograms (ROADMAP: make the
    middleware observable before scaling it further).

    Feeds a shared :class:`repro.metrics.PipelineMetrics`.  When tracing
    is on, the request's span id rides along as the latency histogram's
    bucket exemplar, so a time-series latency spike links back to a
    concrete :class:`~repro.obs.SpanStore` trace.
    """

    name = "metrics"

    def __init__(self, metrics: PipelineMetrics,
                 plane: Optional[str] = None) -> None:
        self.metrics = metrics
        self.plane = plane
        # deferred: repro.obs imports the pipeline package
        from repro.obs import TRACE_CTX_KEY
        self._trace_key = TRACE_CTX_KEY

    def _observe(self, ctx: RequestContext, error_type: Optional[str]) -> None:
        span_ctx = ctx.attrs.get(self._trace_key)
        self.metrics.observe(self.plane or ctx.plane, latency=ctx.elapsed,
                             error_type=error_type,
                             exemplar=(span_ctx.span_id
                                       if span_ctx is not None else None))

    def after(self, ctx: RequestContext) -> None:
        self._observe(ctx, ctx.attrs.get("error_type"))

    def on_error(self, ctx: RequestContext) -> None:
        # an error nothing further in absorbed: still count the request
        self._observe(ctx, type(ctx.error).__name__)


def default_pipeline(plane: str, *,
                     clock: Optional[Callable[[], float]] = None,
                     metrics: Optional[PipelineMetrics] = None,
                     security: Optional[SecurityManager] = None,
                     policies: Optional[PolicyManager] = None,
                     tracer=None, server: str = "",
                     accounting=None) -> Pipeline:
    """The standard chain for one plane: metrics → envelope → tracing →
    accounting → security → admission → handler (tracing/accounting/
    security/admission only when a tracer / ledger / the managers are
    given).

    Tracing sits inside the envelope so its ``on_error`` sees the raw
    exception before the envelope absorbs it into a reply shape.
    Accounting (``accounting`` is a :class:`repro.obs.RequestCostLedger`)
    sits right after tracing — the request's trace context is minted and
    bindable — but before security/admission, so rejected and shed
    requests are still attributed to their principal.

    Bare components (a :class:`~repro.web.ServletContainer` or
    :class:`~repro.orb.Orb` outside a :class:`DiscoverServer`) call this
    with just a clock; :class:`~repro.core.server.DiscoverServer` passes
    its shared managers so all three planes report into one place.
    """
    chain = [MetricsInterceptor(metrics if metrics is not None
                                else PipelineMetrics(), plane),
             ErrorEnvelopeInterceptor()]
    if tracer is not None:
        from repro.obs import TracingInterceptor
        chain.append(TracingInterceptor(tracer, server))
    if accounting is not None:
        from repro.obs import AccountingInterceptor
        chain.append(AccountingInterceptor(accounting))
    if security is not None:
        chain.append(SecurityInterceptor(security))
    if policies is not None:
        chain.append(AdmissionInterceptor(policies))
    return Pipeline(chain, clock=clock)
