"""Point-to-point duplex links with latency and bandwidth.

Transmission time (``size / bandwidth``) serializes on the link — frames
queue behind one another per direction — while propagation latency is
pipelined, the standard store-and-forward model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.sim import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


class Link:
    """A duplex link between two hosts.

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth:
        Bytes per second.  ``inf`` models an uncontended abstraction.
    kind:
        ``"lan"`` or ``"wan"`` — used by :class:`~repro.net.trace.TrafficTrace`
        to separate intra-domain from inter-domain traffic (experiment E4).
    """

    def __init__(self, sim: "Simulator", a: str, b: str, latency: float,
                 bandwidth: float = float("inf"), kind: str = "lan") -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if a == b:
            raise ValueError("link endpoints must differ")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.kind = kind
        # One transmit queue per direction.
        self._tx = {a: Resource(sim, capacity=1), b: Resource(sim, capacity=1)}

    @property
    def ends(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, host: str) -> str:
        """The opposite endpoint of ``host``."""
        if host == self.a:
            return self.b
        if host == self.b:
            return self.a
        raise ValueError(f"{host!r} is not an endpoint of {self!r}")

    def transfer_time(self, size: int) -> float:
        """Pure transmission time for ``size`` bytes (no queueing)."""
        if self.bandwidth == float("inf"):
            return 0.0
        return size / self.bandwidth

    def transmit(self, src: str, size: int):
        """Process: occupy the ``src``-side transmitter for the transfer,
        then wait the propagation latency.  Yields; returns at delivery time.
        """
        tx = self._tx[src]  # KeyError doubles as endpoint validation
        req = tx.request()
        yield req
        try:
            t = self.transfer_time(size)
            if t > 0:
                yield self.sim.timeout(t)
        finally:
            tx.release(req)
        if self.latency > 0:
            yield self.sim.timeout(self.latency)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Link {self.a}<->{self.b} {self.kind} "
                f"lat={self.latency * 1e3:.1f}ms>")
