"""E11 at reduced scale: flat shards, size-independent p99, kill drill.

The full-scale sweep lives in EXPERIMENTS.md / the CLI; these runs keep
the same acceptance shape (two fleet sizes compared, one replica killed
mid-run) at a few hundred sessions so the suite stays CI-sized.
"""

from repro.bench.fleet import run_fleet_directory


def run(n_servers, **kw):
    kw.setdefault("n_sessions", 400)
    kw.setdefault("directory_shards", 4)
    return run_fleet_directory(n_servers, **kw)


def test_flat_load_and_p99_independent_of_fleet_size():
    # 1000 sessions over a 64-app/400-user population: enough keys and
    # reads per shard that flatness measures the ring, not sampling noise
    small = run(6, n_sessions=1000, n_apps=64, n_users=400)
    large = run(12, n_sessions=1000, n_apps=64, n_users=400)
    for row in (small, large):
        assert row["sessions_done"] == row["sessions"], row
        assert row["sessions_failed"] == 0, row
        assert row["locate_misses"] == 0, row
        assert row["shard_load_max_over_mean"] <= 1.5, row
    # doubling the fleet must not move the lookup tail: the p99 is set by
    # the two-WAN-hop path to a shard, not by how many servers share it
    ratio = large["lookup_p99_ms"] / small["lookup_p99_ms"]
    assert 0.75 <= ratio <= 1.25, (small, large)


def test_kill_replica_mid_run_is_absorbed_by_failover():
    row = run(8, directory_replicas=2, kill_shard_at=5.0)
    assert row["sessions_done"] == row["sessions"], row
    assert row["sessions_failed"] == 0, row
    assert row["dir_read_failovers"] > 0, row
    # the dead replica stays on the ring: no membership change happened
    assert row["ring_epoch"] == row["n_shards"], row


def test_kill_drill_is_deterministic():
    a = run(6, n_sessions=200, directory_replicas=2, kill_shard_at=3.0,
            seed=7)
    b = run(6, n_sessions=200, directory_replicas=2, kill_shard_at=3.0,
            seed=7)
    assert a == b
