"""Demonstration scientific applications (the paper's §6.1 workloads).

DISCOVER "is being used to provide interaction capabilities to a number of
scientific and engineering applications, including oil reservoir
simulations, computational fluid dynamics, seismic modeling, and numerical
relativity."  Each module here is a small NumPy implementation of one of
those codes, instrumented with the :mod:`repro.steering` control network:

- :class:`OilReservoirApp` — 1-D Buckley–Leverett waterflood (IPARS-like).
- :class:`Heat2DApp` — 2-D heat/advection-diffusion CFD kernel.
- :class:`SeismicApp` — 1-D acoustic wave propagation with shot sources.
- :class:`RelativityApp` — wave-equation toy with a constraint monitor
  (the numerical-relativity stand-in).
- :class:`SyntheticApp` — a configurable no-science application used by the
  benchmark harness (payload size and compute time are free parameters).
"""

from repro.apps.heat2d import Heat2DApp
from repro.apps.relativity import RelativityApp
from repro.apps.reservoir import OilReservoirApp
from repro.apps.seismic import SeismicApp
from repro.apps.synthetic import SyntheticApp

__all__ = [
    "Heat2DApp",
    "OilReservoirApp",
    "RelativityApp",
    "SeismicApp",
    "SyntheticApp",
]
