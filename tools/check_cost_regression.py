#!/usr/bin/env python
"""Gate the per-operation cost trajectory: drill vs committed baseline.

``check_bench_regression.py`` catches "the suite got slower"; this gate
catches *why*-class regressions one level down: "the modeled middleware
got fatter per operation".  It re-runs the deterministic quick
noisy-neighbor drill (E14, fixed seed — every cost below is virtual and
bit-for-bit reproducible), rolls the ledger up by (plane, operation),
and compares each operation's deterministic cost dimensions (requests,
sim events, modeled CPU µs, wire bytes, WAL appends — never wall-µs)
against the committed ``COSTS_BASELINE.json``.

Because the workload is deterministic, the expected ratio is exactly
1.0: any drift means a code change altered modeled costs.  The default
threshold still allows 10% so intentional small reshapes (an extra
control message, a header field) don't demand a baseline refresh, while
"locate_app got 20% more expensive" fails CI with the operation named.

Operations present in only one report are listed but never fail the
gate (new planes must be free to appear).  After an intentional cost
change, refresh the baseline with::

    PYTHONPATH=src python tools/check_cost_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: dimensions that are deterministic functions of the workload (wall_us
#: is real time and spans can depend on sampling — both excluded)
GATED_DIMENSIONS = ("requests", "events", "cpu_us", "lan_bytes",
                    "wan_bytes", "wal_appends", "errors",
                    "dropped_frames", "dropped_bytes")

#: committed baseline, at the repository root
BASELINE = Path(__file__).resolve().parents[1] / "COSTS_BASELINE.json"


def measured_costs() -> dict:
    """Per-(plane/operation) deterministic cost dims from the quick drill."""
    from repro.bench.fleet import run_noisy_neighbor_drill

    row, fleet = run_noisy_neighbor_drill(
        10, n_sessions=300, directory_shards=4, duration=20.0,
        flood_start=5.0, flood_rate=100.0)
    ops = {}
    for op, dims in fleet.ledger.by_operation().items():
        ops[op] = {d: dims.get(d, 0) for d in GATED_DIMENSIONS}
    fleet.stop()
    return {
        "scenario": "E14 quick (10 servers, 300 sessions, seed 0)",
        "dimensions": list(GATED_DIMENSIONS),
        "operations": ops,
        "drill": {"partition_exact": row["partition_exact"],
                  "flooder_top_all_dims": row["flooder_top_all_dims"]},
    }


def compare(baseline: dict, candidate: dict, threshold: float) -> int:
    base_ops = baseline["operations"]
    cand_ops = candidate["operations"]
    shared = sorted(set(base_ops) & set(cand_ops))
    if not shared:
        print("error: no shared operations between baseline and candidate")
        return 1

    failures = []
    width = max(len(op) for op in shared)
    for op in shared:
        for dim in GATED_DIMENSIONS:
            base = base_ops[op].get(dim, 0)
            cand = cand_ops[op].get(dim, 0)
            if base == cand:
                continue
            ratio = cand / base if base else float("inf")
            line = (f"{op:<{width}}  {dim:<14} {base:>12} -> {cand:>12} "
                    f"({ratio:.2f}x)")
            if ratio > threshold or ratio < 1 / threshold:
                failures.append(f"{line}  REGRESSED")
            else:
                print(f"{line}  drift within threshold")
    for op in sorted(set(cand_ops) - set(base_ops)):
        print(f"{op:<{width}}  new operation (not gated)")
    for op in sorted(set(base_ops) - set(cand_ops)):
        print(f"{op:<{width}}  retired operation (not gated)")

    if failures:
        print(f"\nFAIL: per-operation cost moved more than "
              f"{(threshold - 1) * 100:.0f}% vs {BASELINE.name}:")
        for line in failures:
            print(f"  {line}")
        print("intentional? refresh with: "
              "PYTHONPATH=src python tools/check_cost_regression.py --update")
        return 1
    print(f"OK: {len(shared)} operations' cost vectors within "
          f"{(threshold - 1) * 100:.0f}% of {BASELINE.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument("--threshold", type=float, default=1.10,
                        help="fail when candidate/baseline leaves "
                             "[1/t, t] (default 1.10 = ±10%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    candidate = measured_costs()
    if not candidate["drill"]["partition_exact"]:
        print("error: drill attribution no longer partitions exactly")
        return 1
    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(candidate, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {args.baseline} "
              f"({len(candidate['operations'])} operations)")
        return 0
    if not Path(args.baseline).exists():
        print(f"error: {args.baseline} missing — generate with --update")
        return 1
    with open(args.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    return compare(baseline, candidate, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
