"""Tests for ORB invocation, dispatch, errors, and timing."""

import pytest

from repro.net import Network
from repro.orb import (
    BadOperation,
    CommFailure,
    ObjectNotFound,
    Orb,
    OrbError,
    RemoteException,
)
from repro.sim import Simulator
from tests.conftest import drive


class Calculator:
    """A simple servant."""

    def __init__(self):
        self.calls = 0

    def add(self, a, b):
        self.calls += 1
        return a + b

    def fail(self):
        raise ValueError("deliberate")

    def slow_echo(self, value, delay, sim=None):
        # plain method; slowness is modeled by the generator variant below
        return value

    def _private(self):
        return "secret"


class SlowServant:
    """Servant whose operation is a simulation process (generator)."""

    def __init__(self, sim):
        self.sim = sim

    def compute(self, x):
        yield self.sim.timeout(0.5)
        return x * 2


def make_pair(latency=0.001):
    sim = Simulator()
    net = Network(sim)
    net.add_host("client-host")
    net.add_host("server-host")
    net.add_link("client-host", "server-host", latency)
    client_orb = Orb(net.hosts["client-host"])
    server_orb = Orb(net.hosts["server-host"])
    return sim, net, client_orb, server_orb


def test_basic_invocation():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")

    def caller(corb, ref):
        result = yield from corb.invoke(ref, "add", 2, 3)
        return result

    assert drive(sim, caller(corb, ref)) == 5


def test_invocation_with_kwargs():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")

    def caller():
        return (yield from corb.invoke(ref, "add", a=10, b=20))

    assert drive(sim, caller()) == 30


def test_invocation_takes_network_and_cpu_time():
    sim, net, corb, sorb = make_pair(latency=0.010)
    ref = sorb.activate(Calculator(), key="calc")

    def caller():
        result = yield from corb.invoke(ref, "add", 1, 1)
        return (result, sim.now)

    result, elapsed = drive(sim, caller())
    assert result == 2
    # at least 2 network hops (20ms) plus server dispatch cost
    assert elapsed > 0.020 + sorb.costs.corba_call_cost


def test_generator_servant_operation():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(SlowServant(sim), key="slow")

    def caller():
        result = yield from corb.invoke(ref, "compute", 21)
        return (result, sim.now)

    result, elapsed = drive(sim, caller())
    assert result == 42
    assert elapsed > 0.5


def test_servant_exception_becomes_remote_exception():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")

    def caller():
        try:
            yield from corb.invoke(ref, "fail")
        except RemoteException as exc:
            return (exc.exc_type, exc.message)

    assert drive(sim, caller()) == ("ValueError", "deliberate")


def test_unknown_object_raises_object_not_found():
    sim, net, corb, sorb = make_pair()
    from repro.orb import ObjectRef
    bogus = ObjectRef("server-host", sorb.port, "ghost")

    def caller():
        try:
            yield from corb.invoke(bogus, "anything")
        except ObjectNotFound:
            return "not-found"

    assert drive(sim, caller()) == "not-found"


def test_unknown_operation_raises_bad_operation():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")

    def caller():
        try:
            yield from corb.invoke(ref, "divide", 1, 2)
        except BadOperation:
            return "bad-op"

    assert drive(sim, caller()) == "bad-op"


def test_private_operations_hidden():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")

    def caller():
        try:
            yield from corb.invoke(ref, "_private")
        except BadOperation:
            return "hidden"

    assert drive(sim, caller()) == "hidden"


def test_invoke_timeout_raises_comm_failure():
    sim, net, corb, sorb = make_pair()
    # Deactivate the server ORB so no reply ever comes.
    sorb.shutdown()
    from repro.orb import ObjectRef
    ref = ObjectRef("server-host", 683, "calc")

    def caller():
        try:
            yield from corb.invoke(ref, "add", 1, 2, timeout=1.0)
        except CommFailure:
            return ("timeout", sim.now)

    result, t = drive(sim, caller())
    assert result == "timeout"
    assert t >= 1.0


def test_oneway_invocation_no_reply():
    sim, net, corb, sorb = make_pair()
    calc = Calculator()
    ref = sorb.activate(calc, key="calc")
    corb.invoke_oneway(ref, "add", 5, 5)
    sim.run()
    assert calc.calls == 1


def test_oneway_swallows_errors():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")
    corb.invoke_oneway(ref, "fail")
    sim.run()  # no exception surfaces


def test_concurrent_invocations_correlate_correctly():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")
    results = {}

    def caller(tag, a, b):
        results[tag] = yield from corb.invoke(ref, "add", a, b)

    for i in range(5):
        sim.spawn(caller(i, i, 100))
    sim.run()
    assert results == {i: i + 100 for i in range(5)}


def test_adapter_duplicate_key_rejected():
    sim, net, corb, sorb = make_pair()
    sorb.activate(Calculator(), key="calc")
    with pytest.raises(OrbError):
        sorb.activate(Calculator(), key="calc")


def test_deactivate_then_invoke_fails():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")
    sorb.deactivate("calc")

    def caller():
        try:
            yield from corb.invoke(ref, "add", 1, 2)
        except ObjectNotFound:
            return "gone"

    assert drive(sim, caller()) == "gone"


def test_initial_references():
    sim, net, corb, sorb = make_pair()
    ref = sorb.activate(Calculator(), key="calc")
    corb.initial_references["Calc"] = ref
    assert corb.resolve_initial("Calc") == ref
    with pytest.raises(ObjectNotFound):
        corb.resolve_initial("Nope")


def test_refs_can_cross_the_wire():
    """A servant can hand out references to other servants."""
    sim, net, corb, sorb = make_pair()

    class Directory:
        def __init__(self, orb):
            self.orb = orb

        def get_calc(self):
            return self.orb.adapter.ref_for("calc")

    sorb.activate(Calculator(), key="calc")
    dref = sorb.activate(Directory(sorb), key="dir")

    def caller():
        calc_ref = yield from corb.invoke(dref, "get_calc")
        return (yield from corb.invoke(calc_ref, "add", 7, 8))

    assert drive(sim, caller()) == 15


def test_server_cpu_serializes_dispatch():
    """Two simultaneous calls to a 1-CPU server queue behind each other."""
    sim, net, corb, sorb = make_pair(latency=0.0)
    ref = sorb.activate(Calculator(), key="calc")
    finish_times = []

    def caller():
        yield from corb.invoke(ref, "add", 1, 1)
        finish_times.append(sim.now)

    sim.spawn(caller())
    sim.spawn(caller())
    sim.run()
    # Second completion is roughly one dispatch-cost later than the first.
    gap = finish_times[1] - finish_times[0]
    assert gap >= sorb.costs.corba_call_cost * 0.9


def test_orb_shutdown_releases_port():
    sim, net, corb, sorb = make_pair()
    sorb.shutdown()
    sim.run()
    assert 683 not in net.hosts["server-host"].ports
    # idempotent
    sorb.shutdown()
