"""Collaboration: client sessions, groups, and update fan-out.

§4.1: "All clients connected to a particular application form a
collaboration group by default.  Global updates ... are automatically
broadcast to this group.  Clients can form or join (or leave) collaboration
sub-groups within the application group.  Clients can also disable all
collaboration so that their requests/responses are not broadcast to the
entire collaboration group.  Individual views can still be explicitly
shared in this mode."

Because clients reach the server over HTTP (request/response only), every
client session owns a server-side **FIFO buffer** that fan-out writes into
and the client's poll requests drain (§6.2) — including the paper's caveat
that these buffers exist "to support slow clients" and cost memory, which
ablation A2 measures by bounding them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.sim import Store
from repro.storage import NULL_JOURNAL
from repro.wire import Message, freeze_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

#: the default (whole-application) collaboration group name
DEFAULT_GROUP = "all"


class CollaborationError(Exception):
    """Unknown session/group, or an invalid membership operation."""


class ClientSession:
    """One logged-in client at one server."""

    def __init__(self, sim: "Simulator", client_id: str, user: str,
                 buffer_capacity: float = float("inf")) -> None:
        self.client_id = client_id
        self.user = user
        self.buffer: Store = Store(sim, capacity=buffer_capacity)
        self.apps: Set[str] = set()
        self.groups: Set[Tuple[str, str]] = set()
        self.collab_enabled = True
        #: remote application summaries gathered at login (app_id → summary)
        self.remote_apps: Dict[str, dict] = {}
        #: messages dropped because the FIFO buffer was full (slow client)
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ClientSession {self.client_id} user={self.user}>"


class CollaborationManager:
    """The collaboration handler of one server (local fan-out only).

    Client ids are globally unique — ``<server>:cN`` — so any server in the
    network can tell which server owns a client (the routing key for
    cross-server response delivery).
    """

    def __init__(self, sim: "Simulator", server_name: str,
                 buffer_capacity: float = float("inf"),
                 journal=NULL_JOURNAL) -> None:
        self.sim = sim
        self.server_name = server_name
        self.buffer_capacity = buffer_capacity
        self.journal = journal
        self._sessions: Dict[str, ClientSession] = {}
        #: (app_id, group) → set of client_ids
        self._groups: Dict[Tuple[str, str], Set[str]] = {}
        self._client_count = 0
        #: total messages pushed into client buffers
        self.delivered = 0
        #: total messages dropped on full buffers
        self.dropped = 0

    @staticmethod
    def owner_server(client_id: str) -> str:
        """The server a client id belongs to."""
        return client_id.rsplit(":", 1)[0]

    # -- sessions ------------------------------------------------------------
    def create_session(self, user: str) -> ClientSession:
        self._client_count += 1
        client_id = f"{self.server_name}:c{self._client_count}"
        session = ClientSession(self.sim, client_id, user,
                                self.buffer_capacity)
        self._sessions[client_id] = session
        self.journal.append("collab.session", {
            "client_id": client_id, "user": user,
            "seq": self._client_count})
        return session

    def _restore_session(self, client_id: str, user: str,
                         seq: int = 0) -> ClientSession:
        """Rebuild a session under its original id (recovery path).

        The FIFO buffer comes back empty — poll state is transient; a
        recovered client catches up through the session archive instead.
        """
        session = ClientSession(self.sim, client_id, user,
                                self.buffer_capacity)
        self._sessions[client_id] = session
        self._client_count = max(self._client_count, seq)
        return session

    def session(self, client_id: str) -> ClientSession:
        try:
            return self._sessions[client_id]
        except KeyError:
            raise CollaborationError(f"no session {client_id!r}") from None

    def drop_session(self, client_id: str) -> Optional[ClientSession]:
        """End a session; returns it (apps still populated) so the caller
        can release interest the client held — e.g. unsubscribing from
        remote applications it was the last local subscriber of."""
        session = self._sessions.pop(client_id, None)
        if session is None:
            return None
        for key in list(session.groups):
            members = self._groups.get(key)
            if members:
                members.discard(client_id)
                if not members:
                    del self._groups[key]
        self.journal.append("collab.drop", {"client_id": client_id})
        return session

    def session_count(self) -> int:
        return len(self._sessions)

    # -- membership ----------------------------------------------------------
    def subscribe(self, client_id: str, app_id: str) -> None:
        """Join the application's default collaboration group."""
        session = self.session(client_id)
        session.apps.add(app_id)
        self._join(session, app_id, DEFAULT_GROUP)
        self.journal.append("collab.subscribe",
                            {"client_id": client_id, "app_id": app_id})

    def unsubscribe(self, client_id: str, app_id: str) -> None:
        session = self.session(client_id)
        session.apps.discard(app_id)
        for key in [k for k in session.groups if k[0] == app_id]:
            self._leave(session, *key)
        self.journal.append("collab.unsubscribe",
                            {"client_id": client_id, "app_id": app_id})

    def join_group(self, client_id: str, app_id: str, group: str) -> None:
        """Join (creating if needed) a sub-group of an application group."""
        session = self.session(client_id)
        if app_id not in session.apps:
            raise CollaborationError(
                f"{client_id} is not subscribed to {app_id}")
        self._join(session, app_id, group)
        self.journal.append("collab.join", {
            "client_id": client_id, "app_id": app_id, "group": group})

    def leave_group(self, client_id: str, app_id: str, group: str) -> None:
        if group == DEFAULT_GROUP:
            raise CollaborationError(
                "leave the default group by unsubscribing from the app")
        self._leave(self.session(client_id), app_id, group)
        self.journal.append("collab.leave", {
            "client_id": client_id, "app_id": app_id, "group": group})

    def _join(self, session: ClientSession, app_id: str, group: str) -> None:
        key = (app_id, group)
        self._groups.setdefault(key, set()).add(session.client_id)
        session.groups.add(key)

    def _leave(self, session: ClientSession, app_id: str, group: str) -> None:
        key = (app_id, group)
        members = self._groups.get(key)
        if members:
            members.discard(session.client_id)
            if not members:
                del self._groups[key]
        session.groups.discard(key)

    def members_of(self, app_id: str, group: str = DEFAULT_GROUP) -> List[str]:
        return sorted(self._groups.get((app_id, group), ()))

    def local_subscribers(self, app_id: str) -> List[str]:
        """Client ids of local sessions subscribed to ``app_id``."""
        return [s.client_id for s in self._sessions.values()
                if app_id in s.apps]

    def set_collaboration(self, client_id: str, enabled: bool) -> None:
        """Enable/disable sharing of this client's requests and responses."""
        self.session(client_id).collab_enabled = bool(enabled)
        self.journal.append("collab.mode", {
            "client_id": client_id, "enabled": bool(enabled)})

    # -- durable state plane hooks -------------------------------------------
    def snapshot_state(self) -> dict:
        """Serialize sessions + memberships to a JSON-safe document.

        FIFO buffers and remote-app summaries are deliberately absent:
        both are transient poll state, re-established by the client after
        recovery (the archive serves the catch-up).
        """
        return {
            "seq": self._client_count,
            "sessions": [{
                "client_id": s.client_id,
                "user": s.user,
                "collab_enabled": s.collab_enabled,
                "apps": sorted(s.apps),
                "groups": sorted(list(k) for k in s.groups),
            } for s in self._sessions.values()],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild sessions + memberships from :meth:`snapshot_state`."""
        self._client_count = max(self._client_count,
                                 state.get("seq", 0))
        for doc in state.get("sessions", ()):
            session = self._restore_session(doc["client_id"], doc["user"])
            session.collab_enabled = doc.get("collab_enabled", True)
            session.apps = set(doc.get("apps", ()))
            for app_id, group in doc.get("groups", ()):
                self._join(session, app_id, group)

    def apply_event(self, event: str, data: dict, at: float) -> None:
        """Replay one journaled mutation (public paths; the journal's
        ``recovering`` flag keeps them from re-journaling)."""
        if event == "session":
            self._restore_session(data["client_id"], data["user"],
                                  data.get("seq", 0))
        elif event == "drop":
            self.drop_session(data["client_id"])
        elif event == "subscribe":
            self.subscribe(data["client_id"], data["app_id"])
        elif event == "unsubscribe":
            self.unsubscribe(data["client_id"], data["app_id"])
        elif event == "join":
            self.join_group(data["client_id"], data["app_id"], data["group"])
        elif event == "leave":
            self.leave_group(data["client_id"], data["app_id"], data["group"])
        elif event == "mode":
            self.set_collaboration(data["client_id"], data["enabled"])

    # -- fan-out ------------------------------------------------------------
    def push_to_client(self, client_id: str, msg: Message) -> bool:
        """Append to one client's FIFO buffer; False if dropped (full).

        The message's wire size is frozen (memoized) here: a message fanned
        out to N subscribers is sized once, not once per poll response it
        later rides in.  Messages must not be mutated after this point.
        """
        session = self._sessions.get(client_id)
        if session is None:
            return False
        freeze_size(msg)
        if not session.buffer.try_put(msg):
            session.dropped += 1
            self.dropped += 1
            return False
        self.delivered += 1
        return True

    def broadcast_update(self, app_id: str, msg: Message) -> int:
        """Global update to every local subscriber; returns deliveries."""
        count = 0
        for client_id in self.local_subscribers(app_id):
            if self.push_to_client(client_id, msg):
                count += 1
        return count

    def broadcast_group(self, app_id: str, group: str, msg: Message,
                        exclude: Optional[str] = None) -> int:
        """Deliver to a (sub-)group's local members."""
        count = 0
        for client_id in self.members_of(app_id, group):
            if client_id == exclude:
                continue
            if self.push_to_client(client_id, msg):
                count += 1
        return count

    def deliver_response(self, client_id: str, msg: Message,
                         app_id: Optional[str] = None) -> int:
        """Deliver a command response to its requester — and, if the
        requester has collaboration enabled, share it with the rest of the
        application group (collaborative steering)."""
        count = 1 if self.push_to_client(client_id, msg) else 0
        session = self._sessions.get(client_id)
        if (session is not None and session.collab_enabled
                and app_id is not None):
            count += self.broadcast_group(app_id, DEFAULT_GROUP, msg,
                                          exclude=client_id)
        return count

    def share_view(self, from_client: str, app_id: str, group: str,
                   msg: Message) -> int:
        """Explicit share — works even with collaboration disabled (§4.1)."""
        self.session(from_client)  # validate
        return self.broadcast_group(app_id, group, msg, exclude=from_client)
