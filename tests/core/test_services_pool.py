"""Tests for the pool-of-services model and the CORBA CoG kit (§3/§7)."""

import pytest

from repro import AppConfig, build_collaboratory
from repro.apps import SyntheticApp
from repro.core.services import (
    CorbaCoGKit,
    MonitoringService,
    ServicePool,
    deploy_pool_services,
    pool_for_server,
)
from repro.orb import ObjectNotFound


@pytest.fixture
def grid():
    collab = build_collaboratory(2, apps_hosts_per_domain=2,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    services = deploy_pool_services(collab, staging_time=0.5,
                                    heartbeat_period=2.0)
    services["cog"].register_application_type("synthetic", SyntheticApp)
    return collab, services


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def test_pool_discovery_via_trader(grid):
    collab, services = grid
    pool = pool_for_server(collab.server_of(0))

    def probe():
        mon = yield from pool.discover(MonitoringService.SERVICE_ID)
        cog = yield from pool.discover(CorbaCoGKit.SERVICE_ID)
        nothing = yield from pool.discover("NONEXISTENT")
        return (len(mon), len(cog), len(nothing))

    assert run(collab, probe()) == (1, 1, 0)


def test_pool_bind_first_skips_dead_offers(grid):
    collab, services = grid
    pool = pool_for_server(collab.server_of(0))

    def probe():
        ref = yield from pool.bind_first(CorbaCoGKit.SERVICE_ID)
        return ref.object_key

    assert run(collab, probe()) == "CorbaCoGKit"


def test_pool_bind_first_missing_service(grid):
    collab, services = grid
    pool = pool_for_server(collab.server_of(0))

    def probe():
        try:
            yield from pool.bind_first("GHOST_SERVICE")
        except ObjectNotFound:
            return "missing"

    assert run(collab, probe()) == "missing"


def test_monitoring_receives_heartbeats(grid):
    collab, services = grid
    collab.sim.run(until=collab.sim.now + 7.0)
    monitoring = services["monitoring"]
    assert monitoring.servers_seen() == sorted(collab.servers)
    status = monitoring.network_status()
    for server_name, entry in status.items():
        assert "logins" in entry["stats"]
        assert entry["at"] > 0


def test_cog_submit_and_steer_end_to_end(grid):
    """§7's composition: allocate+stage via the CoG kit, steer via the
    DISCOVER portal."""
    collab, services = grid
    cog_ref = services["cog_ref"]
    s0 = collab.server_of(0)
    portal = collab.add_portal(0)

    def scenario():
        job = yield from s0.orb.invoke(
            cog_ref, "submit_job", "synthetic", "cog-launched", 0,
            {"alice": "write"},
            {"steps_per_phase": 2, "step_time": 0.01,
             "interaction_window": 0.05})
        # wait for the app to register with its DISCOVER server
        app_id = None
        for _ in range(20):
            yield collab.sim.timeout(0.5)
            status = yield from s0.orb.invoke(cog_ref, "job_status",
                                              job["job_id"])
            if status["app_id"] is not None:
                app_id = status["app_id"]
                break
        assert app_id is not None
        # now steer it through the ordinary portal path
        yield from portal.login("alice")
        session = yield from portal.open(app_id)
        yield from session.acquire_lock()
        value = yield from session.set_param("gain", 9.0)
        return (job["state"], value)

    state, value = run(collab, scenario())
    assert state == "running"
    assert value == 9.0


def test_cog_unknown_app_type(grid):
    collab, services = grid
    s0 = collab.server_of(0)

    def scenario():
        try:
            yield from s0.orb.invoke(services["cog_ref"], "submit_job",
                                     "fortran-iv", "x", 0, {})
        except ObjectNotFound:
            return "rejected"

    assert run(collab, scenario()) == "rejected"


def test_cog_staging_takes_time(grid):
    collab, services = grid
    s0 = collab.server_of(0)

    def scenario():
        t0 = collab.sim.now
        yield from s0.orb.invoke(
            services["cog_ref"], "submit_job", "synthetic", "slow-stage", 0,
            {"u": "write"})
        return collab.sim.now - t0

    assert run(collab, scenario()) >= 0.5  # the staging delay


def test_cog_allocates_least_loaded_host(grid):
    collab, services = grid
    cog = services["cog"]
    s0 = collab.server_of(0)

    def scenario():
        hosts = []
        for i in range(3):
            job = yield from s0.orb.invoke(
                services["cog_ref"], "submit_job", "synthetic",
                f"spread-{i}", 0, {"u": "write"})
            hosts.append(job["host"])
        return hosts

    hosts = run(collab, scenario())
    # two app hosts in domain 0: the first two jobs land on distinct hosts
    assert hosts[0] != hosts[1]
    assert hosts[2] in (hosts[0], hosts[1])


def test_cog_cancel_job(grid):
    collab, services = grid
    s0 = collab.server_of(0)

    def scenario():
        job = yield from s0.orb.invoke(
            services["cog_ref"], "submit_job", "synthetic", "doomed", 0,
            {"u": "write"},
            {"steps_per_phase": 2, "step_time": 0.01,
             "interaction_window": 0.05})
        yield collab.sim.timeout(3.0)
        cancelled = yield from s0.orb.invoke(services["cog_ref"],
                                             "cancel_job", job["job_id"])
        yield collab.sim.timeout(2.0)
        jobs = yield from s0.orb.invoke(services["cog_ref"], "list_jobs")
        return (cancelled["state"], jobs)

    state, jobs = run(collab, scenario())
    assert state == "cancelled"
    assert any(j["state"] == "cancelled" for j in jobs)
    # the application really stopped
    doomed = [a for a in collab.apps if a.name == "doomed"][0]
    assert doomed.state == "stopped"
