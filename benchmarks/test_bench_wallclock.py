"""Wall-clock performance of the simulator itself (BENCH trajectory).

Unlike every other benchmark in this directory — which reproduces a *paper*
measurement in virtual time — this one measures the real seconds the
reproduction burns on the wire fast path, network delivery, broadcast
fan-out, and two end-to-end scenarios.  It writes ``BENCH_1.json`` at the
repository root so successive PRs leave a perf trajectory.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_wallclock.py --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

import time

from benchmarks.conftest import run_once

from repro.bench.wallclock import format_report, run_suite, write_report

#: where the committed perf trajectory lives
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_1.json"


def test_wallclock_suite(benchmark):
    report = run_once(benchmark, lambda: run_suite(quick=False))
    print()
    print(format_report(report))
    write_report(str(BENCH_JSON), report)
    print(f"wrote {BENCH_JSON}")
    names = {entry["name"] for entry in report["benchmarks"]}
    assert "wire/encoded_size_update_64x64" in names
    assert "collab/broadcast_poll_30_subscribers" in names
    assert "e2e/E1_health_on_n10" in names
    assert all(entry["per_op_us"] > 0 for entry in report["benchmarks"])


def test_health_plane_overhead_under_5_percent(benchmark):
    """The always-on health plane must stay effectively free.

    Same E1 workload with the plane on and off; the on/off ratio of the
    per-arm minima bounds the plane's overhead.  The runs must be long
    enough (~0.7s here) that scheduler noise is small relative to the
    measured quantum — with short runs the fixed jitter alone exceeds
    the 5% ceiling.  The health plane is pure bookkeeping on timer
    events, so 5% is a generous ceiling.
    """
    from repro.bench.scenarios import run_app_scalability

    def one(enabled: bool) -> float:
        t0 = time.perf_counter()
        run_app_scalability(20, duration=30.0, health_enabled=enabled)
        return time.perf_counter() - t0

    def measure():
        # warm both arms first (lazy numpy percentile machinery, import
        # costs) so neither measured minimum carries one-time work, then
        # interleave rounds so drift hits both arms equally.  Minima only
        # converge downward, so keep adding rounds until the ratio settles
        # comfortably under the bound; a genuinely slow health plane stays
        # above it no matter how many rounds run.
        one(True), one(False)
        ons, offs = [], []
        for i in range(12):
            offs.append(one(False))
            ons.append(one(True))
            if i >= 2 and min(ons) / min(offs) < 1.04:
                break
        return min(ons), min(offs)

    with_health, without = run_once(benchmark, measure)
    ratio = with_health / without
    print(f"\nhealth plane wall-clock: on={with_health:.3f}s "
          f"off={without:.3f}s ratio={ratio:.3f}")
    assert ratio < 1.05, (
        f"health plane adds {100 * (ratio - 1):.1f}% wall-clock overhead")
