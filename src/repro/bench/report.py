"""Table formatting for benchmark output.

Every benchmark prints its regenerated paper table through these helpers so
``pytest benchmarks/ --benchmark-only -s`` reads like the evaluation
section, and EXPERIMENTS.md can quote the rows directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Render dict-rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    rule = "-" * len(header)
    lines = [title, rule, header, rule] if title else [header, rule]
    for cells in rendered:
        lines.append("  ".join(cell.rjust(widths[c])
                               for cell, c in zip(cells, columns)))
    lines.append(rule)
    return "\n".join(lines)


#: extra row keys added by ``repro.bench.scenarios.pipeline_counters``
PIPELINE_KEYS = ("http_requests", "orb_requests", "channel_requests",
                 "pipeline_errors", "sessions_expired")

#: federation-layer totals, also added by ``pipeline_counters``
FEDERATION_KEYS = ("fed_subscribes", "fed_unsubscribes",
                   "fed_invalidations", "fed_poll_failovers")

#: health-plane totals, also added by ``pipeline_counters``
HEALTH_KEYS = ("health_healthy", "health_degraded", "health_unhealthy",
               "health_unknown", "alerts_fired", "alerts_resolved",
               "health_failovers")

#: sharded-directory totals, also added by ``pipeline_counters``
DIRECTORY_KEYS = ("dir_lookups", "dir_locates", "dir_publishes",
                  "dir_read_failovers", "dir_write_skips",
                  "dir_stale_retries", "dir_stub_hits", "dir_stub_misses")

#: durable-state-plane totals, also added by ``pipeline_counters``
STORAGE_KEYS = ("storage_appends", "storage_snapshots", "storage_compacted",
                "storage_recoveries", "storage_replayed")

#: observability totals (structured log + time-series store), also
#: added by ``pipeline_counters``
OBS_KEYS = ("log_records", "log_dropped", "ts_series", "ts_points")

#: cost-attribution totals, also added by ``pipeline_counters``
COST_KEYS = ("cost_requests", "cost_events", "cost_cpu_us",
             "cost_wan_bytes", "cost_dropped_frames", "cost_dropped_bytes",
             "cost_entries")


def format_pipeline_summary(rows: Sequence[Dict]) -> str:
    """Footer lines aggregating the per-plane pipeline counters and the
    federation layer's subscription/invalidation totals.

    Returns "" when the rows carry no pipeline keys (e.g. rows loaded
    from a pre-pipeline results file)."""
    if not rows or not any(k in row for row in rows for k in PIPELINE_KEYS):
        return ""
    totals = {k: sum(row.get(k, 0) for row in rows) for k in PIPELINE_KEYS}
    out = (f"pipeline: http={totals['http_requests']} "
           f"orb={totals['orb_requests']} "
           f"channel={totals['channel_requests']} "
           f"errors={totals['pipeline_errors']} "
           f"sessions_expired={totals['sessions_expired']}")
    if any(k in row for row in rows for k in FEDERATION_KEYS):
        fed = {k: sum(row.get(k, 0) for row in rows)
               for k in FEDERATION_KEYS}
        out += (f"\nfederation: subscribes={fed['fed_subscribes']} "
                f"unsubscribes={fed['fed_unsubscribes']} "
                f"invalidations={fed['fed_invalidations']} "
                f"poll_failovers={fed['fed_poll_failovers']}")
    if any(k in row for row in rows for k in HEALTH_KEYS):
        hk = {k: sum(row.get(k, 0) for row in rows) for k in HEALTH_KEYS}
        out += (f"\nhealth: healthy={hk['health_healthy']} "
                f"degraded={hk['health_degraded']} "
                f"unhealthy={hk['health_unhealthy']} "
                f"unknown={hk['health_unknown']} "
                f"alerts_fired={hk['alerts_fired']} "
                f"alerts_resolved={hk['alerts_resolved']} "
                f"failovers={hk['health_failovers']}")
        latencies = [row["detection_latency_s"] for row in rows
                     if row.get("detection_latency_s") is not None]
        if latencies:
            out += (f" detection_latency_s="
                    f"{max(latencies):.2f}")
    if any(k in row for row in rows for k in DIRECTORY_KEYS):
        dk = {k: sum(row.get(k, 0) for row in rows) for k in DIRECTORY_KEYS}
        out += (f"\ndirectory: lookups={dk['dir_lookups']} "
                f"locates={dk['dir_locates']} "
                f"publishes={dk['dir_publishes']} "
                f"read_failovers={dk['dir_read_failovers']} "
                f"write_skips={dk['dir_write_skips']} "
                f"stale_retries={dk['dir_stale_retries']} "
                f"stub_hits={dk['dir_stub_hits']} "
                f"stub_misses={dk['dir_stub_misses']}")
    if any(k in row for row in rows for k in STORAGE_KEYS):
        sk = {k: sum(row.get(k, 0) for row in rows) for k in STORAGE_KEYS}
        out += (f"\nstorage: appends={sk['storage_appends']} "
                f"snapshots={sk['storage_snapshots']} "
                f"compacted={sk['storage_compacted']} "
                f"recoveries={sk['storage_recoveries']} "
                f"replayed={sk['storage_replayed']}")
    if any(k in row for row in rows for k in OBS_KEYS):
        ok = {k: sum(row.get(k, 0) for row in rows) for k in OBS_KEYS}
        out += (f"\nobs: log_records={ok['log_records']} "
                f"log_dropped={ok['log_dropped']} "
                f"ts_series={ok['ts_series']} "
                f"ts_points={ok['ts_points']}")
    if any(k in row for row in rows for k in COST_KEYS):
        ck = {k: sum(row.get(k, 0) for row in rows) for k in COST_KEYS}
        out += (f"\ncosts: requests={ck['cost_requests']} "
                f"events={ck['cost_events']} "
                f"cpu_us={ck['cost_cpu_us']} "
                f"wan_bytes={ck['cost_wan_bytes']} "
                f"dropped_frames={ck['cost_dropped_frames']} "
                f"dropped_bytes={ck['cost_dropped_bytes']} "
                f"entries={ck['cost_entries']}")
        top = [row.get("cost_top_principal") for row in rows
               if row.get("cost_top_principal") not in (None, "-")]
        if top:
            out += f" top_principal={top[0]}"
    return out


def format_registry(registry) -> str:
    """Text exposition of a :class:`repro.obs.MetricsRegistry` snapshot.

    One ``source.dotted.key value`` line per leaf, sorted, so the unified
    metrics surface (pipeline + federation + traffic + spans) reads the
    same way regardless of which collectors the deployment registered.
    """
    lines = []
    for key, value in registry.flattened():
        if isinstance(value, float):
            lines.append(f"{key} {value:.3f}")
        else:
            lines.append(f"{key} {value}")
    return "\n".join(lines)


def print_experiment(exp_id: str, claim: str, rows: Sequence[Dict],
                     columns: Sequence[str], finding: str = "") -> None:
    """Print one experiment block: id, the paper's claim, rows, finding."""
    print()
    print(f"=== {exp_id} ===")
    print(f"paper: {claim}")
    print(format_table(rows, columns))
    summary = format_pipeline_summary(rows)
    if summary:
        print(summary)
    if finding:
        print(f"measured: {finding}")
    print()
