"""repro.obs — causal tracing and unified metrics over simulated time.

The observability layer for the collaboratory: a :class:`Tracer` mints
spans stamped with virtual time (``sim.now``), context propagates
in-process through the interceptor pipeline and across servers through
frame metadata / GIOP service contexts, and the :class:`SpanStore`
reconstructs cross-server request trees and their critical paths.

Everything outside this package goes through this facade — the obs
boundary lint (``tools/check_pipeline_boundary.py``) rejects imports of
the submodules and direct span construction elsewhere.
"""

from repro.obs.accounting import (COST_DIMENSIONS, AccountingInterceptor,
                                  DispatchProfiler, RequestCostLedger,
                                  format_cost_report)
from repro.obs.export import (export_chrome, export_jsonl, load_jsonl,
                              to_chrome_trace, to_jsonl_lines,
                              tree_signature)
from repro.obs.interceptor import (TRACE_CTX_KEY, TRACE_PARENT_KEY,
                                   TracingInterceptor)
from repro.obs.log import StructuredLog
from repro.obs.registry import MetricsRegistry
from repro.obs.render import (format_critical_path, format_trace_summary,
                              format_trace_tree)
from repro.obs.span import Span, TraceContext
from repro.obs.store import PathSegment, SpanNode, SpanStore
from repro.obs.timeseries import TimeSeriesRegistry, to_chrome_counters
from repro.obs.tracer import SAMPLE_ALWAYS, SAMPLE_OFF, Tracer

__all__ = [
    "AccountingInterceptor",
    "COST_DIMENSIONS",
    "DispatchProfiler",
    "MetricsRegistry",
    "PathSegment",
    "RequestCostLedger",
    "SAMPLE_ALWAYS",
    "SAMPLE_OFF",
    "Span",
    "SpanNode",
    "SpanStore",
    "StructuredLog",
    "TRACE_CTX_KEY",
    "TRACE_PARENT_KEY",
    "TimeSeriesRegistry",
    "TraceContext",
    "Tracer",
    "TracingInterceptor",
    "export_chrome",
    "export_jsonl",
    "format_cost_report",
    "format_critical_path",
    "format_trace_summary",
    "format_trace_tree",
    "load_jsonl",
    "to_chrome_counters",
    "to_chrome_trace",
    "to_jsonl_lines",
    "tree_signature",
]
