"""Tests for the scenario builders."""

import pytest

from repro import AppConfig, build_collaboratory, build_single_server
from repro.apps import SyntheticApp
from repro.core.server import SERVICE_ID


def test_single_server_shape():
    collab = build_single_server(app_hosts=2, client_hosts=3)
    assert len(collab.servers) == 1
    assert len(collab.domains) == 1
    assert len(collab.domains[0].app_hosts) == 2
    assert len(collab.domains[0].client_hosts) == 3
    assert "registry" in collab.net.hosts


def test_bootstrap_publishes_and_discovers():
    collab = build_collaboratory(3, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    assert collab.trader.offer_count(SERVICE_ID) == 3
    for server in collab.servers.values():
        assert len(server.peers) == 2
        assert server.name not in server.peers


def test_custom_domain_names():
    collab = build_collaboratory(2, names=["rutgers", "caltech"],
                                 apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    assert set(collab.servers) == {"rutgers-server", "caltech-server"}


def test_add_app_round_robin_hosts():
    collab = build_single_server(app_hosts=2)
    collab.run_bootstrap()
    cfg = AppConfig(steps_per_phase=1, step_time=0.01)
    a1 = collab.add_app(0, SyntheticApp, "a1", acl={"u": "write"},
                        config=cfg)
    a2 = collab.add_app(0, SyntheticApp, "a2", acl={"u": "write"},
                        config=cfg)
    a3 = collab.add_app(0, SyntheticApp, "a3", acl={"u": "write"},
                        config=cfg)
    assert a1.host.name != a2.host.name
    assert a1.host.name == a3.host.name  # wrapped around


def test_add_app_without_start():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "lazy", acl={"u": "write"},
                         start=False)
    collab.sim.run(until=2.0)
    assert not app.registered
    app.start()
    collab.sim.run(until=4.0)
    assert app.registered


def test_apps_bound_in_network_naming():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "named", acl={"u": "write"},
                         config=AppConfig(steps_per_phase=1, step_time=0.01))
    collab.sim.run(until=2.0)
    # §5.1.2: CorbaProxy binds itself to the naming service under the app id
    assert app.app_id in collab.naming
    ref = collab.naming.resolve(app.app_id)
    assert ref.object_key == f"CorbaProxy/{app.app_id}"


def test_server_of_and_portal_targets():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    portal = collab.add_portal(1)
    assert portal.server_host == collab.domains[1].server.name
    assert collab.server_of(1).name == collab.domains[1].server.name


def test_stop_shuts_everything_down():
    collab = build_single_server()
    collab.run_bootstrap()
    collab.stop()
    collab.sim.run()
    server_host = collab.domains[0].server
    assert 80 not in server_host.ports
    assert 683 not in server_host.ports
