#!/usr/bin/env python
"""CI artifact exporter for the health plane (E10 fault injection).

Runs the E10 kill-a-server scenario, scrapes the surviving server's
``GET /status?format=prom`` endpoint through the real HTTP pipeline, and
writes:

- ``e10_status.prom``  — the Prometheus exposition at end of run
- ``e10_alerts.jsonl`` — every alert fire/resolve record, one per line
- ``e10_row.json``     — the scenario's measured row (detection latency,
  failover and command counts)

The exposition is round-tripped through :func:`repro.health.
parse_prometheus` before writing — an exporter that emits text the
parser rejects (or that loses samples) fails the build.

Usage: PYTHONPATH=src python tools/export_health_artifacts.py [outdir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def main(argv) -> int:
    outdir = Path(argv[1]) if len(argv) > 1 else Path("health-artifacts")
    outdir.mkdir(parents=True, exist_ok=True)

    from repro.health import parse_prometheus
    from repro.bench.scenarios import run_fault_injection, scrape_status

    row, collab = run_fault_injection(duration=15.0, kill_at=5.0)
    text = scrape_status(collab, params={"format": "prom"})

    samples = parse_prometheus(text)
    if not samples:
        print("exposition parsed to zero samples", file=sys.stderr)
        return 1
    reparsed = parse_prometheus(text)
    if reparsed != samples:
        print("exposition parse is not deterministic", file=sys.stderr)
        return 1
    health_samples = {k: v for k, v in samples.items()
                      if k[0] == "repro_health_status"}
    if not health_samples:
        print("no repro_health_status gauges in exposition",
              file=sys.stderr)
        return 1
    if row["victim_status"] != "unhealthy":
        print(f"victim ended {row['victim_status']!r}, expected unhealthy",
              file=sys.stderr)
        return 1
    if row["detection_latency_s"] is None:
        print("no unhealthy transition recorded for the victim",
              file=sys.stderr)
        return 1

    (outdir / "e10_status.prom").write_text(text, encoding="utf-8")
    alerts = scrape_status(collab, path="/status/alerts")
    with open(outdir / "e10_alerts.jsonl", "w", encoding="utf-8") as fh:
        for record in alerts["history"]:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    with open(outdir / "e10_row.json", "w", encoding="utf-8") as fh:
        json.dump(row, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    print(f"health artifacts written to {outdir}/ "
          f"({len(samples)} prom samples, "
          f"{len(alerts['history'])} alert records, "
          f"detection {row['detection_latency_s']:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
