"""E3 — §6.1: "The fact that the system is able to support more simultaneous
applications than simultaneous clients, illustrates the design trade off
between high performance and wide spread deployment when using commodity
technologies."

Measure each protocol's sustainable per-server message ceiling: the custom
TCP application channel vs HTTP+servlets vs CORBA.  The shape to reproduce:
TCP > CORBA > HTTP in messages/second, explaining why apps outnumber
clients.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import run_app_scalability, run_client_scalability
from repro.net import CostModel, Network
from repro.orb import Orb
from repro.sim import Simulator

DURATION = 15.0


class _Echo:
    def echo(self, x):
        return x


def _corba_ceiling(duration: float, concurrency: int = 8) -> float:
    """Saturate one ORB server with concurrent invocations; return calls/s."""
    sim = Simulator()
    net = Network(sim)
    net.add_host("caller")
    net.add_host("callee")
    net.add_link("caller", "callee", 0.0005)
    corb = Orb(net.hosts["caller"])
    sorb = Orb(net.hosts["callee"])
    ref = sorb.activate(_Echo(), key="echo")
    done = {"calls": 0}

    def caller():
        while sim.now < duration:
            yield from corb.invoke(ref, "echo", 42)
            done["calls"] += 1

    for _ in range(concurrency):
        sim.spawn(caller())
    sim.run(until=duration)
    return done["calls"] / duration


def test_bench_e3_protocol_asymmetry(benchmark):
    costs = CostModel()

    def scenario():
        # TCP ceiling: push the app channel into saturation and read the
        # measured message throughput (3 channel messages per update).
        tcp_row = run_app_scalability(70, duration=DURATION)
        tcp_ceiling = tcp_row["throughput_per_s"] * 3
        # HTTP ceiling: saturated polling clients.
        http_row = run_client_scalability(40, duration=DURATION,
                                          poll_interval=0.05)
        http_ceiling = http_row["polls"] / DURATION
        corba_ceiling = _corba_ceiling(DURATION)
        return [
            {"protocol": "custom TCP (app channel)",
             "model_cost_ms": costs.tcp_cost(512) * 1e3,
             "measured_ceiling_msgs_per_s": tcp_ceiling},
            {"protocol": "CORBA (server-to-server)",
             "model_cost_ms": costs.corba_cost(512) * 1e3,
             "measured_ceiling_msgs_per_s": corba_ceiling},
            {"protocol": "HTTP+servlet (clients)",
             "model_cost_ms": costs.http_cost(512) * 1e3,
             "measured_ceiling_msgs_per_s": http_ceiling},
        ]

    rows = run_once(benchmark, scenario)
    print_experiment(
        "E3: protocol cost asymmetry",
        "more simultaneous applications than clients — performance vs "
        "wide deployment trade-off",
        rows,
        ["protocol", "model_cost_ms", "measured_ceiling_msgs_per_s"],
        finding=(f"TCP sustains "
                 f"{rows[0]['measured_ceiling_msgs_per_s']:.0f} msg/s vs "
                 f"HTTP {rows[2]['measured_ceiling_msgs_per_s']:.0f} req/s "
                 f"on the same server"),
    )
    tcp, corba, http = rows
    assert (tcp["measured_ceiling_msgs_per_s"]
            > corba["measured_ceiling_msgs_per_s"]
            > http["measured_ceiling_msgs_per_s"])
    assert tcp["model_cost_ms"] < corba["model_cost_ms"] < http["model_cost_ms"]
