"""Tests for the deterministic RNG tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DeterministicRNG


def test_same_seed_same_stream():
    a = DeterministicRNG(7)
    b = DeterministicRNG(7)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_differ():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_children_are_independent_of_sibling_consumption():
    root1 = DeterministicRNG(0)
    a1 = root1.child("clients")
    _ = [root1.child("apps").exponential(1.0) for _ in range(10)]
    root2 = DeterministicRNG(0)
    a2 = root2.child("clients")
    assert [a1.uniform() for _ in range(5)] == [a2.uniform() for _ in range(5)]


def test_child_path_distinguishes_names():
    root = DeterministicRNG(0)
    x = root.child("x").uniform()
    y = root.child("y").uniform()
    assert x != y


def test_nested_children():
    rng = DeterministicRNG(0).child("a").child("b")
    assert rng.path == "root/a/b"


def test_integers_bounds():
    rng = DeterministicRNG(3)
    draws = [rng.integers(0, 10) for _ in range(200)]
    assert all(0 <= d < 10 for d in draws)
    assert len(set(draws)) > 3


def test_choice():
    rng = DeterministicRNG(3)
    seq = ["a", "b", "c"]
    assert all(rng.choice(seq) in seq for _ in range(20))
    with pytest.raises(ValueError):
        rng.choice([])


def test_shuffle_is_permutation():
    rng = DeterministicRNG(3)
    items = list(range(20))
    shuffled = items.copy()
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # vanishingly unlikely to be identity


def test_exponential_positive():
    rng = DeterministicRNG(3)
    assert all(rng.exponential(2.0) >= 0 for _ in range(50))


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.1, max_value=1e3),
       st.floats(min_value=0.0, max_value=0.5))
def test_jitter_bounds(value, fraction):
    rng = DeterministicRNG(5)
    out = rng.jitter(value, fraction)
    assert value * (1 - fraction) - 1e-9 <= out <= value * (1 + fraction) + 1e-9
