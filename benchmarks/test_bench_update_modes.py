"""A4 — push vs poll between servers.

§5.2.3 *describes* polling ("the CorbaProxy objects poll each other for
updates and responses") but *argues* traffic as push ("only one message is
sent to that remote server").  This reproduction defaults to push and
implements poll as an option; this ablation quantifies the difference:
poll trades staleness for WAN request traffic that flows even when nothing
changed, push sends exactly one WAN message per update per remote server.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import make_app_farm, update_watching_client
from repro.core.deployment import build_collaboratory
from repro.metrics import LatencyRecorder
from repro.net.costs import LinkSpec

DURATION = 20.0
UPDATE_PERIOD = 0.5


def _mode_run(update_mode: str, poll_interval: float = 0.25) -> dict:
    collab = build_collaboratory(
        2, apps_hosts_per_domain=1, client_hosts_per_domain=2,
        spec=LinkSpec(wan_latency=0.060), update_mode=update_mode,
        update_poll_interval=poll_interval)
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, domain_index=0, user="bench",
                         update_period=UPDATE_PERIOD)
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    recorder = LatencyRecorder(collab.sim)
    # two clients in the *remote* domain watch the app
    for _ in range(2):
        portal = collab.add_portal(1)
        collab.sim.spawn(update_watching_client(
            portal, app_id, user="bench", duration=DURATION,
            poll_interval=0.25, recorder=recorder))
    collab.net.trace.reset()
    collab.sim.run(until=collab.sim.now + DURATION + 1.0)
    stats = recorder.stats("update_latency")
    label = (f"poll@{poll_interval * 1e3:.0f}ms"
             if update_mode == "poll" else "push")
    return {
        "mode": label,
        "wan_messages": collab.net.trace.wan_messages,
        "wan_kb": collab.net.trace.wan_bytes / 1024.0,
        "mean_staleness_ms": stats.mean * 1e3,
        "updates_seen": stats.count,
    }


def test_bench_a4_push_vs_poll(benchmark):
    rows = run_once(benchmark, lambda: [
        _mode_run("push"),
        _mode_run("poll", poll_interval=0.25),
        _mode_run("poll", poll_interval=1.0),
    ])
    print_experiment(
        "A4 (ablation): server-to-server update propagation, push vs poll",
        '"the CorbaProxy objects poll each other for updates" vs "only one '
        'message is sent to that remote server"',
        rows,
        ["mode", "wan_messages", "wan_kb", "mean_staleness_ms",
         "updates_seen"],
        finding=_finding(rows),
    )
    push, poll_fast, poll_slow = rows
    # fast polling costs more WAN round trips than pushing
    assert poll_fast["wan_messages"] > push["wan_messages"]
    # slow polling saves messages but goes stale
    assert poll_slow["mean_staleness_ms"] > push["mean_staleness_ms"]
    # every mode delivers the stream
    assert all(r["updates_seen"] > 10 for r in rows)


def _finding(rows) -> str:
    push, poll_fast, poll_slow = rows
    return (f"push: {push['wan_messages']} WAN msgs at "
            f"{push['mean_staleness_ms']:.0f}ms staleness; poll@250ms: "
            f"{poll_fast['wan_messages']} msgs / "
            f"{poll_fast['mean_staleness_ms']:.0f}ms; poll@1s: "
            f"{poll_slow['wan_messages']} msgs / "
            f"{poll_slow['mean_staleness_ms']:.0f}ms")
