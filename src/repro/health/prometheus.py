"""Prometheus text-format export of the metrics registry + health gauges.

``to_prometheus`` walks a
:class:`~repro.obs.registry.MetricsRegistry` snapshot and flattens every
numeric leaf into the Prometheus exposition format (text version 0.0.4):
source names like ``pipeline[srvA]`` become a metric family with an
``instance`` label, nested dict paths join with ``_``, and names are
sanitized to the ``[a-zA-Z_][a-zA-Z0-9_]*`` grammar with a ``repro_``
prefix.  When a :class:`~repro.health.monitor.HealthMonitor` is supplied
its component statuses are exported as
``repro_health_status{component="..."} <code>`` gauges (see
``STATUS_CODES``) plus alert counters, so one scrape carries the whole
observability surface.

``parse_prometheus`` is the strict inverse used by the CI round-trip
check: it validates the line grammar and returns ``{(name, labels):
value}``, raising :class:`ValueError` on any malformed line — which is
what makes "the status page emits valid Prometheus text" a testable
claim rather than a hope.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.health.model import STATUS_CODES

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+|nan|inf|-inf))"
    r"(?:\s+\d+)?$")
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')

PREFIX = "repro"


def _sanitize(part: str) -> str:
    name = _NAME_OK.sub("_", part)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _split_source(source: str) -> Tuple[str, Optional[str]]:
    """``"pipeline[srvA]"`` → ``("pipeline", "srvA")``."""
    if source.endswith("]") and "[" in source:
        family, instance = source[:-1].split("[", 1)
        return family, instance
    return source, None


def _flatten(prefix: str, value, out) -> None:
    if isinstance(value, bool):
        out.append((prefix, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((prefix, float(value)))
    elif isinstance(value, dict):
        for key in sorted(value, key=str):
            _flatten(f"{prefix}_{_sanitize(str(key))}", value[key], out)
    # strings / lists / None are not gauges — skipped


def to_prometheus(registry, monitor=None, timeseries=None,
                  instance=None) -> str:
    """Render a registry (and optionally a health monitor) as text format.

    With a :class:`~repro.obs.TimeSeriesRegistry` (``timeseries``), its
    latency series are emitted as proper histogram families — cumulative
    ``_bucket{le="..."}`` lines from the log-bucket boundaries plus
    ``_sum`` / ``_count`` — under ``repro_ts_<series>``, labelled with
    ``instance`` when given.
    """
    families: Dict[str, list] = {}
    histograms: Dict[str, list] = {}

    def emit(name: str, labels: str, value: float) -> None:
        families.setdefault(name, []).append((labels, value))

    if registry is not None:
        for source, snap in sorted(registry.snapshot().items()):
            family, instance = _split_source(source)
            base = f"{PREFIX}_{_sanitize(family)}"
            labels = (f'{{instance="{_escape_label(instance)}"}}'
                      if instance is not None else "")
            leaves: list = []
            _flatten("", snap, leaves)
            for path, value in leaves:
                emit(base + path, labels, value)

    if monitor is not None:
        for component, status in sorted(monitor.fleet_view().items()):
            emit(f"{PREFIX}_health_status",
                 f'{{component="{_escape_label(component)}",'
                 f'server="{_escape_label(monitor.server.name)}"}}',
                 float(STATUS_CODES.get(status, 0)))
        for name, value in sorted(monitor.alerts.snapshot().items()):
            emit(f"{PREFIX}_alerts_{_sanitize(name)}", "", float(value))
        for name, value in sorted(monitor.counters.items()):
            emit(f"{PREFIX}_health_{_sanitize(name)}", "", float(value))

    if timeseries is not None:
        inst = (f'instance="{_escape_label(instance)}"'
                if instance is not None else "")
        for name in timeseries.names():
            if timeseries.kind(name) != "histogram":
                continue
            pairs, total, count = timeseries.histogram_cumulative(name)
            base = f"{PREFIX}_ts_{_sanitize(name)}"
            samples = []
            for le, cum in pairs:
                le_str = "+Inf" if le == float("inf") else _format_value(le)
                labels = ",".join(p for p in (inst, f'le="{le_str}"') if p)
                samples.append(f"{base}_bucket{{{labels}}} {cum}")
            tail = f"{{{inst}}}" if inst else ""
            samples.append(f"{base}_sum{tail} {_format_value(total)}")
            samples.append(f"{base}_count{tail} {count}")
            histograms[base] = samples

    lines = []
    for name in sorted(set(families) | set(histograms)):
        if name in families:
            lines.append(f"# TYPE {name} gauge")
            for labels, value in families[name]:
                lines.append(f"{name}{labels} {_format_value(value)}")
        if name in histograms:
            lines.append(f"# TYPE {name} histogram")
            lines.extend(histograms[name])
    return "\n".join(lines) + "\n" if lines else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                                        float]:
    """Strictly parse exposition text back into ``{(name, labels): value}``.

    Raises :class:`ValueError` on any line that is neither a comment,
    blank, nor a well-formed sample — the round-trip guarantee for the
    status surface and CI artifacts.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: invalid sample {line!r}")
        labels = []
        raw = match.group("labels")
        if raw:
            for pair in raw.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                label = _LABEL_RE.match(pair)
                if label is None:
                    raise ValueError(
                        f"line {lineno}: invalid label {pair!r}")
                labels.append((label.group("key"), label.group("val")))
        key = (match.group("name"), tuple(labels))
        if key in out:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        out[key] = float(match.group("value"))
    return out
