"""Actuators: imperative hooks that change application state."""

from __future__ import annotations

from typing import Any, Callable


class Actuator:
    """A named operation a steering client may invoke on the application.

    Unlike parameter writes (single validated values), actuators are
    verbs — "inject tracer at (x, y)", "write checkpoint", "rescale mesh".
    The handler receives keyword arguments from the command message.
    """

    def __init__(self, name: str, handler: Callable[..., Any], *,
                 description: str = "") -> None:
        if not callable(handler):
            raise TypeError(f"actuator {name!r} handler must be callable")
        self.name = name
        self.handler = handler
        self.description = description

    def actuate(self, **kwargs: Any) -> Any:
        """Invoke the actuator."""
        return self.handler(**kwargs)

    def descriptor(self) -> dict:
        """Wire-safe description advertised at registration."""
        return {"name": self.name, "description": self.description}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Actuator {self.name}>"
