"""AppRouter + AppHandle: one generator interface, local or remote."""

import pytest

from repro import build_collaboratory
from repro.apps import SyntheticApp
from repro.core.security import SecurityError
from repro.federation import LocalAppHandle, RemoteAppHandle

from tests.federation.conftest import cfg, run


def test_router_resolves_by_home_server(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    local = s0.router.resolve(app.app_id)
    remote = s1.router.resolve(app.app_id)
    assert isinstance(local, LocalAppHandle) and local.is_local
    assert isinstance(remote, RemoteAppHandle) and not remote.is_local
    assert remote.home == s0.name
    assert s0.router.is_local(app.app_id)
    assert not s1.router.is_local(app.app_id)


def test_router_caches_and_forgets_handles(pair):
    collab, app = pair
    s1 = collab.server_of(1)
    handle = s1.router.resolve(app.app_id)
    assert s1.router.resolve(app.app_id) is handle
    s1.router.forget(app.app_id)
    assert s1.router.resolve(app.app_id) is not handle


def test_local_open_returns_interface_and_checks_acl(pair):
    collab, app = pair
    s0 = collab.server_of(0)
    handle = s0.router.resolve(app.app_id)
    info = run(collab, handle.open("bob"))
    assert info["app_id"] == app.app_id
    assert info["privilege"] == "read"
    assert "parameters" in info["interface"]

    def stranger():
        try:
            yield from handle.open("eve")
        except SecurityError:
            return "denied"

    assert run(collab, stranger()) == "denied"


def test_remote_open_relays_interface(pair):
    collab, app = pair
    s1 = collab.server_of(1)
    info = run(collab, s1.router.resolve(app.app_id).open("alice"))
    assert info["app_id"] == app.app_id
    assert info["privilege"] == "write"


def test_remote_open_redirect_mode():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 remote_access="redirect")
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "redirected",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    s1 = collab.server_of(1)
    info = run(collab, s1.router.resolve(app.app_id).open("alice"))
    assert info == {"redirect": collab.server_of(0).name,
                    "app_id": app.app_id}


def test_lock_protocol_uniform_across_handles(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    local = s0.router.resolve(app.app_id)
    remote = s1.router.resolve(app.app_id)

    def scenario():
        first = yield from local.acquire_lock("d0-server:c1")
        second = yield from remote.acquire_lock("d1-server:c1")
        holder = yield from remote.lock_holder()
        yield from local.release_lock("d0-server:c1")
        next_holder = yield from local.lock_holder()
        return (first, second, holder, next_holder)

    first, second, holder, next_holder = run(collab, scenario())
    assert first == "granted"
    assert second == "queued"
    assert holder == "d0-server:c1"
    assert next_holder == "d1-server:c1"
    # the home server stays authoritative (§5.2.4)
    assert s0.locks.holder_of(app.app_id) == "d1-server:c1"
    assert s1.locks.holder_of(app.app_id) is None


def test_get_updates_since_uniform(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    collab.sim.run(until=collab.sim.now + 1.0)

    def scenario():
        local = yield from s0.router.resolve(app.app_id).get_updates_since(0)
        remote = yield from s1.router.resolve(app.app_id).get_updates_since(0)
        return (local, remote)

    local, remote = run(collab, scenario())
    assert len(local) >= 1
    # the relayed read runs later in sim time, so it may see extra tail
    # updates — but both views agree on the shared prefix
    local_seqs = [u.seq for u in local]
    remote_seqs = [u.seq for u in remote]
    assert remote_seqs[:len(local_seqs)] == local_seqs


def test_remote_deliver_command_requires_login_grant(pair):
    collab, app = pair
    s1 = collab.server_of(1)
    session = s1.collab.create_session("alice")  # no login fan-out ran

    def scenario():
        try:
            yield from s1.router.resolve(app.app_id).deliver_command(
                session, "get_param", {"name": "gain"})
        except SecurityError:
            return "denied"

    assert run(collab, scenario()) == "denied"
