"""AppRouter: ``app_id → AppHandle`` resolution.

The single place where the middleware decides whether an application is
local or remote (§5.2.1's identifier scheme).  Every request plane asks
the router for a handle and drives the handle's generator interface; the
``if is_local_app(...)`` branching that used to be copy-pasted through
``DiscoverServer`` collapses into :meth:`AppRouter.resolve`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.federation.handles import (
    AppHandle,
    LocalAppHandle,
    RemoteAppHandle,
)
from repro.federation.registry import home_server_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer
    from repro.federation.registry import PeerRegistry


class AppRouter:
    """Resolves application ids to location-transparent handles."""

    def __init__(self, server: "DiscoverServer",
                 registry: "PeerRegistry") -> None:
        self.server = server
        self.registry = registry
        self._handles: Dict[str, AppHandle] = {}

    def is_local(self, app_id: str) -> bool:
        """Whether ``app_id`` is homed at this server (§5.2.1)."""
        return home_server_of(app_id) == self.server.name

    def resolve(self, app_id: str) -> AppHandle:
        """The handle for ``app_id`` (cached; stubs resolve lazily)."""
        handle = self._handles.get(app_id)
        if handle is None:
            if self.is_local(app_id):
                handle = LocalAppHandle(self.server, app_id)
            else:
                handle = RemoteAppHandle(self.server, self.registry, app_id)
            self._handles[app_id] = handle
        return handle

    def forget(self, app_id: str) -> None:
        """Drop a cached handle (deregistration / ``app_stopped``)."""
        self._handles.pop(app_id, None)
