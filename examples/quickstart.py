"""Quickstart: one server, one application, one steering client.

Builds a single-domain collaboratory, registers a synthetic application,
logs a user in through the web portal, acquires the steering lock, changes
a parameter, and watches updates arrive — the paper's basic interaction
loop, end to end, in under a minute of virtual time.

Run:  python examples/quickstart.py
"""

from repro import AppConfig, build_single_server
from repro.apps import SyntheticApp


def main() -> None:
    collab = build_single_server()
    collab.run_bootstrap()

    app = collab.add_app(
        0, SyntheticApp, "demo-sim", acl={"alice": "write", "bob": "read"},
        config=AppConfig(steps_per_phase=5, step_time=0.02,
                         interaction_window=0.05))
    collab.sim.run(until=2.0)  # let the application register
    print(f"application registered as {app.app_id}")

    portal = collab.add_portal(0)

    def scenario():
        apps = yield from portal.login("alice")
        print(f"alice sees {len(apps)} application(s): "
              f"{[a['name'] for a in apps]}")

        session = yield from portal.open(app.app_id)
        print(f"opened {session.app_id} with privilege "
              f"{session.privilege!r}")
        print(f"steerable parameters: "
              f"{[p['name'] for p in session.interface['parameters']]}")

        outcome = yield from session.acquire_lock()
        print(f"steering lock: {outcome}")

        old = yield from session.get_param("gain")
        new = yield from session.set_param("gain", old * 2)
        print(f"gain steered {old} -> {new}")

        counter = yield from session.read_sensor("counter")
        print(f"application has taken {counter} steps so far")

        yield portal.sim.timeout(2.0)
        yield from portal.poll(max_items=64)
        print(f"received {len(portal.updates)} periodic updates via "
              f"poll-and-pull")
        latest = portal.updates[-1].payload
        print(f"latest update: step={latest['_step']} "
              f"signal={latest['signal']:.1f}")

        yield from session.release_lock()
        yield from portal.logout()

    proc = collab.sim.spawn(scenario())
    collab.sim.run(until=proc)
    print(f"done at virtual t={collab.sim.now:.2f}s")


if __name__ == "__main__":
    main()
