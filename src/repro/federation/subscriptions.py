"""SubscriptionManager: the remote-update lifecycle of one server.

§5.2.3 gives two ways for updates of a remote application to reach this
server: the home server *pushes* one message per subscribed peer (the
paper's traffic argument, our default), or this server *polls* the
application's ``CorbaProxy`` (the paper's literal description; ablation
A4 compares them).  This manager owns both:

- ``push`` mode: subscribe on first interest, and — the part the paper
  leaves implicit — **unsubscribe when the last local subscriber
  leaves**, so home servers do not fan out to dead subscribers forever.
- ``poll`` mode: one poller process per remote application, exiting after
  a few idle rounds once local interest is gone, and failing over through
  the registry's cache invalidation when the home server restarts.

Per-app staleness and failover counters are recorded into
:class:`repro.metrics.FederationMetrics`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable

from repro.orb import OrbError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer
    from repro.federation.handles import RemoteAppHandle


def _cost_scope(server: "DiscoverServer"):
    """The poll round's cost scope — a no-op when accounting is off."""
    if server.ledger is None:
        from contextlib import nullcontext
        return nullcontext()
    return server.ledger.scoped(server.name, plane="federation",
                                operation="poll_round")


class SubscriptionManager:
    """Push-subscribe / poll-fallback lifecycle for remote updates."""

    def __init__(self, server: "DiscoverServer") -> None:
        self.server = server
        self.sim = server.sim
        self._pollers: Dict[str, Any] = {}

    @property
    def metrics(self):
        return self.server.federation_metrics

    # -- attachment (driven by RemoteAppHandle.open) -----------------------
    def attach(self, handle: "RemoteAppHandle"):
        """Generator: ensure this server receives the app's updates.

        Push mode re-subscribes on every select (idempotent at the home
        server) — the §5.2.3 contract is per-*server*, so the message cost
        stays one WAN round-trip per select, not per update.
        """
        if self.server.update_mode == "push":
            yield from handle.subscribe(self.server.name)
            self.metrics.count("subscribes")
        else:
            self._ensure_poller(handle)

    def detach_idle(self, app_ids: Iterable[str]) -> None:
        """A client left: unsubscribe any remote app with no local
        subscribers left (the push-mode mirror of the poller's idle exit).

        Plain call (logout is synchronous); the unsubscribe itself is a
        spawned process so session teardown never blocks on a WAN hop.
        """
        if self.server.update_mode != "push":
            return  # pollers notice idleness on their own
        router = self.server.router
        for app_id in set(app_ids):
            if router.is_local(app_id):
                continue
            if self.server.collab.local_subscribers(app_id):
                continue
            self.sim.spawn(self._unsubscribe(router.resolve(app_id)),
                           name=f"unsub-{app_id}@{self.server.name}")

    def _unsubscribe(self, handle: "RemoteAppHandle"):
        if self.server.collab.local_subscribers(handle.app_id):
            return  # a client re-subscribed before we ran
        try:
            yield from handle.unsubscribe(self.server.name)
        except OrbError:
            return  # home server gone; its subscriber set died with it
        self.metrics.count("unsubscribes")

    # -- poll fallback -----------------------------------------------------
    def _ensure_poller(self, handle: "RemoteAppHandle") -> None:
        poller = self._pollers.get(handle.app_id)
        if poller is not None and poller.is_alive:
            return
        self.metrics.count("pollers_started")
        self._pollers[handle.app_id] = self.sim.spawn(
            self._poll_remote_updates(handle),
            name=f"poll-{handle.app_id}@{self.server.name}")

    def _poll_remote_updates(self, handle: "RemoteAppHandle"):
        """Poll the remote CorbaProxy for updates while local clients care.

        An :class:`OrbError` invalidates the handle's caches (inside the
        relay), so the next round re-resolves the reference — the failover
        path when the home server restarts.
        """
        server, app_id = self.server, handle.app_id
        last_seq = 0
        idle_rounds = 0
        skipped = 0
        while idle_rounds < 3 or server.collab.local_subscribers(app_id):
            yield self.sim.timeout(server.update_poll_interval)
            if not server.collab.local_subscribers(app_id):
                idle_rounds += 1
                continue
            idle_rounds = 0
            if server.health.is_unhealthy_peer(handle.home):
                # The shared health model (fed by registry pings, relays,
                # and these poll rounds alike) already marked the home
                # server down — don't burn a timeout on it each round.
                # Every few rounds one probe still goes through, so a
                # recovered home server is re-observed and polling resumes.
                skipped += 1
                if skipped % 4 != 0:
                    self.metrics.count("poll_skipped_unhealthy")
                    continue
            else:
                skipped = 0
            # Each round roots its own trace — pollers are background
            # processes, so there is no caller context to join.  The cost
            # scope attributes the round's spans and WAL writes to the
            # polling server itself (system load, not a user principal).
            with _cost_scope(server), \
                 server.tracer.span("federation.poll_round",
                                    plane="federation", server=server.name,
                                    attrs={"app_id": app_id,
                                           "since_seq": last_seq}):
                try:
                    updates = yield from handle.get_updates_since(last_seq)
                except OrbError as exc:
                    self.metrics.count("poll_failovers")
                    server.registry._note_peer_exc(handle.home, exc)
                    continue
            self.metrics.count("poll_rounds")
            server.health.note_peer_success(handle.home)
            for update in updates:
                last_seq = max(last_seq, update.seq)
                self.observe_update(app_id, update)
                server.collab.broadcast_update(app_id, update)
        self._pollers.pop(app_id, None)

    # -- bookkeeping -------------------------------------------------------
    def observe_update(self, app_id: str, msg) -> None:
        """Record per-app staleness for one remote update."""
        timestamp = getattr(msg, "timestamp", 0)
        if timestamp:
            self.metrics.observe_staleness(app_id, self.sim.now - timestamp)

    def forget(self, app_id: str) -> None:
        """The application stopped: drop lifecycle state (pollers exit on
        their own idle logic; nothing to tear down for push mode)."""
        self._pollers.pop(app_id, None)

    def active_pollers(self) -> int:
        return sum(1 for p in self._pollers.values() if p.is_alive)
