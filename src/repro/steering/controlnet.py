"""The control network: per-application registry of steering hooks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.steering.actuators import Actuator
    from repro.steering.parameters import SteerableParameter
    from repro.steering.sensors import Sensor


class SteeringError(Exception):
    """Invalid steering operation (unknown name, bad value, read-only...)."""


class ControlNetwork:
    """Registry of the sensors, actuators, and parameters of one application.

    The interface descriptor it produces is what the application advertises
    in its :class:`~repro.wire.RegisterMessage`, and what servers hand to
    clients so portals can render a steering UI without knowing the
    application (paper §5.2.2: "a customized interaction/steering interface
    for the application").
    """

    def __init__(self) -> None:
        self.parameters: Dict[str, "SteerableParameter"] = {}
        self.sensors: Dict[str, "Sensor"] = {}
        self.actuators: Dict[str, "Actuator"] = {}

    # -- registration ------------------------------------------------------
    def add_parameter(self, param: "SteerableParameter") -> "SteerableParameter":
        if param.name in self.parameters:
            raise SteeringError(f"duplicate parameter {param.name!r}")
        self.parameters[param.name] = param
        return param

    def add_sensor(self, sensor: "Sensor") -> "Sensor":
        if sensor.name in self.sensors:
            raise SteeringError(f"duplicate sensor {sensor.name!r}")
        self.sensors[sensor.name] = sensor
        return sensor

    def add_actuator(self, actuator: "Actuator") -> "Actuator":
        if actuator.name in self.actuators:
            raise SteeringError(f"duplicate actuator {actuator.name!r}")
        self.actuators[actuator.name] = actuator
        return actuator

    # -- access ------------------------------------------------------------
    def parameter(self, name: str) -> "SteerableParameter":
        try:
            return self.parameters[name]
        except KeyError:
            raise SteeringError(f"no parameter {name!r}") from None

    def sensor(self, name: str) -> "Sensor":
        try:
            return self.sensors[name]
        except KeyError:
            raise SteeringError(f"no sensor {name!r}") from None

    def actuator(self, name: str) -> "Actuator":
        try:
            return self.actuators[name]
        except KeyError:
            raise SteeringError(f"no actuator {name!r}") from None

    def monitored_views(self) -> Dict[str, Any]:
        """Current values of all monitored sensors (the update payload)."""
        return {s.name: s.read() for s in self.sensors.values() if s.monitored}

    def interface_descriptor(self) -> dict:
        """The full steering interface, wire-safe."""
        return {
            "parameters": [p.descriptor() for p in self.parameters.values()],
            "sensors": [s.descriptor() for s in self.sensors.values()],
            "actuators": [a.descriptor() for a in self.actuators.values()],
        }
