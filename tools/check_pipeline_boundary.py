#!/usr/bin/env python
"""Lint: dispatch modules must reach security/policy code only through
the request pipeline.

The three dispatch planes (``repro.web.container``, ``repro.orb.core``,
``repro.core.daemon``) route requests; cross-cutting concerns live in
:mod:`repro.pipeline.interceptors`.  Importing ``repro.core.security`` or
``repro.core.policies`` from a dispatch module re-inlines a concern the
pipeline refactor pulled out — this script fails CI when that happens.

Usage: python tools/check_pipeline_boundary.py [repo_root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: dispatch-plane modules, relative to the repo root
DISPATCH_MODULES = (
    "src/repro/web/container.py",
    "src/repro/orb/core.py",
    "src/repro/core/daemon.py",
)

#: modules only the pipeline (and the assembly layer) may import
FORBIDDEN = ("repro.core.security", "repro.core.policies")


def forbidden_imports(path: Path) -> list:
    """(lineno, module) pairs for every forbidden import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module or ""]
        else:
            continue
        for name in names:
            for banned in FORBIDDEN:
                if name == banned or name.startswith(banned + "."):
                    hits.append((node.lineno, name))
    return hits


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = []
    for rel in DISPATCH_MODULES:
        path = root / rel
        if not path.exists():
            failures.append(f"{rel}: dispatch module missing")
            continue
        for lineno, name in forbidden_imports(path):
            failures.append(
                f"{rel}:{lineno}: imports {name} — security/policy code "
                f"must flow through repro.pipeline interceptors")
    if failures:
        print("pipeline boundary violations:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"pipeline boundary OK ({len(DISPATCH_MODULES)} dispatch modules "
          f"clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
