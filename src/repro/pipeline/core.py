"""Portable-interceptor pipeline: the one dispatch seam for every plane.

DISCOVER's middleware serves requests on three distinct planes — HTTP
servlet dispatch (:mod:`repro.web.container`), CORBA/ORB invocation
(:mod:`repro.orb.core`), and the application channel handled by the daemon
(:mod:`repro.core.daemon`).  The paper's cross-cutting concerns — two-level
security (§5.2.2), per-metric access policies (§6.3), archival and
monitoring (§5.2.5) — apply to *all* of them, which is exactly the problem
CORBA portable interceptors solved for real ORBs.  This module is the
plane-neutral version: a :class:`RequestContext` describing one request, an
:class:`Interceptor` with ``before`` / ``after`` / ``on_error`` hooks, and
a :class:`Pipeline` that composes interceptors deterministically around a
handler.

Contract (deterministic, allocation-light, zero virtual-time cost):

- ``before`` hooks run in chain order.  A ``before`` that raises
  short-circuits the chain: later ``before`` hooks and the handler are
  skipped.  A ``before`` that sets ``ctx.response`` short-circuits
  successfully (the seam future caching/rate-limit interceptors use).
- The handler runs next; it may return a value or a generator (a
  simulation process), which the pipeline drives with ``yield from``.
- Unwinding visits the interceptors whose ``before`` completed, in
  *reverse* order: ``on_error`` while ``ctx.error`` is set, ``after``
  otherwise.  An ``on_error`` may absorb the failure by clearing
  ``ctx.error`` and setting ``ctx.response`` (see
  :class:`~repro.pipeline.interceptors.ErrorEnvelopeInterceptor`);
  interceptors further out then see a completed request.
- If no interceptor absorbed the error, :meth:`Pipeline.execute` re-raises
  it at the caller.

Interceptor hooks are plain calls — they never yield, so threading a chain
through a dispatch path adds no simulation events and cannot perturb
virtual-time schedules (the experiment tables are bit-for-bit identical
with or without an empty chain).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Optional

#: plane names carried by :attr:`RequestContext.plane`
PLANE_HTTP = "http"
PLANE_ORB = "orb"
PLANE_CHANNEL = "channel"

PLANES = (PLANE_HTTP, PLANE_ORB, PLANE_CHANNEL)


class RequestContext:
    """Everything the chain knows about one in-flight request.

    One context is created per dispatched request on any plane; it carries
    identity (``plane`` + ``request_id``), the caller (``principal`` — the
    source host, matching §6.3's per-server accounting), the requested
    ``operation`` (servlet path, ORB operation, or channel message type),
    the wire ``size`` in bytes, and the raw ``request`` payload.
    Interceptors communicate through ``attrs``.
    """

    __slots__ = ("plane", "request_id", "principal", "operation", "size",
                 "request", "response", "error", "started_at", "finished_at",
                 "attrs")

    def __init__(self, plane: str, request_id: int = 0, principal: str = "",
                 operation: str = "", size: int = 0,
                 request: Any = None) -> None:
        self.plane = plane
        self.request_id = request_id
        self.principal = principal
        self.operation = operation
        self.size = size
        self.request = request
        self.response: Any = None
        self.error: Optional[BaseException] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attrs: dict = {}

    @property
    def trace_id(self) -> str:
        """Plane-qualified request id, for end-to-end correlation."""
        return f"{self.plane}-{self.request_id}"

    @property
    def elapsed(self) -> Optional[float]:
        """Virtual seconds spent in the pipeline (None without a clock)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "error" if self.error is not None else "ok"
        return (f"<RequestContext {self.trace_id} {self.operation!r} "
                f"from {self.principal!r} [{state}]>")


class Interceptor:
    """Base interceptor: all three hooks default to no-ops.

    Subclasses override any subset.  Hooks must be plain (non-generator)
    callables — they run inline on the dispatch path and may not consume
    virtual time.
    """

    #: short name used in reprs and metrics labels
    name = "interceptor"

    def before(self, ctx: RequestContext) -> None:
        """Runs before the handler; raise to reject the request."""

    def after(self, ctx: RequestContext) -> None:
        """Runs after a successful handler (or an absorbed error)."""

    def on_error(self, ctx: RequestContext) -> None:
        """Runs while ``ctx.error`` is set; may absorb it (see module doc)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class Pipeline:
    """A deterministic interceptor chain around a request handler."""

    __slots__ = ("interceptors", "clock")

    def __init__(self, interceptors: Iterable[Interceptor] = (),
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.interceptors = tuple(interceptors)
        #: zero-arg callable returning the current (virtual) time; used to
        #: stamp ``started_at`` / ``finished_at`` on every context
        self.clock = clock

    def find(self, cls: type) -> Optional[Interceptor]:
        """First interceptor of ``cls`` in the chain, or None."""
        for interceptor in self.interceptors:
            if isinstance(interceptor, cls):
                return interceptor
        return None

    def extended(self, *extra: Interceptor) -> "Pipeline":
        """A new pipeline with ``extra`` interceptors appended."""
        return Pipeline(self.interceptors + tuple(extra), clock=self.clock)

    def execute(self, ctx: RequestContext,
                handler: Callable[[RequestContext], Any]):
        """Generator: drive ``handler(ctx)`` through the chain.

        Use as ``result = yield from pipeline.execute(ctx, handler)`` inside
        a simulation process.  Returns ``ctx.response``; re-raises
        ``ctx.error`` if no interceptor absorbed it.
        """
        if self.clock is not None:
            ctx.started_at = self.clock()
        entered = []
        for interceptor in self.interceptors:
            try:
                interceptor.before(ctx)
            except Exception as exc:  # noqa: BLE001 - rejection short-circuit
                ctx.error = exc
                break
            entered.append(interceptor)
            if ctx.response is not None:
                break  # successful short-circuit (e.g. a cache hit)
        if ctx.error is None and ctx.response is None:
            try:
                outcome = handler(ctx)
                if inspect.isgenerator(outcome):
                    outcome = yield from outcome
                ctx.response = outcome
            except Exception as exc:  # noqa: BLE001 - envelope decides
                ctx.error = exc
        if self.clock is not None:
            ctx.finished_at = self.clock()
        for interceptor in reversed(entered):
            if ctx.error is not None:
                interceptor.on_error(ctx)
            else:
                interceptor.after(ctx)
        if ctx.error is not None:
            raise ctx.error
        return ctx.response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(i.name for i in self.interceptors)
        return f"<Pipeline [{names}]>"
