"""Tests for the bench harness (report formatting, scenario runners) and
the CLI."""

import pytest

from repro.bench import format_table, print_experiment
from repro.bench.scenarios import run_app_scalability, run_client_scalability
from repro.cli import EXPERIMENTS, build_parser, main


# ------------------------------- report -------------------------------------

def test_format_table_basic():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
    out = format_table(rows, ["a", "b"], title="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "a" in lines[2] and "b" in lines[2]
    assert "10" in out
    assert "0.12" in out  # floats rendered to 2 decimals


def test_format_table_empty():
    assert "(no rows)" in format_table([], ["a"], title="empty")


def test_format_table_missing_column_blank():
    out = format_table([{"a": 1}], ["a", "missing"])
    assert "missing" in out


def test_format_table_widths_accommodate_long_values():
    rows = [{"name": "x" * 30}]
    out = format_table(rows, ["name"])
    assert "x" * 30 in out


def test_print_experiment_shape(capsys):
    print_experiment("EX", "a claim", [{"v": 1}], ["v"], finding="done")
    out = capsys.readouterr().out
    assert "=== EX ===" in out
    assert "paper: a claim" in out
    assert "measured: done" in out


# ------------------------------ scenarios ------------------------------------

def test_app_scalability_row_shape():
    row = run_app_scalability(5, duration=5.0)
    assert row["n_apps"] == 5
    assert row["updates_processed"] > 0
    assert row["mean_lag_ms"] > 0
    assert not row["saturated"]


def test_client_scalability_row_shape():
    row = run_client_scalability(3, duration=5.0)
    assert row["n_clients"] == 3
    assert row["polls"] > 0
    assert row["mean_rtt_ms"] > 0


# --------------------------------- CLI ----------------------------------------

def test_cli_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "E1", "--quick"])
    assert args.command == "run"
    assert args.experiment == "E1"
    assert args.quick


def test_cli_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_cli_unknown_experiment(capsys):
    assert main(["run", "E99"]) == 2


def test_cli_info(capsys):
    assert main(["info"]) == 0
    assert "HPDC 2001" in capsys.readouterr().out


def test_cli_run_quick_e6(capsys):
    assert main(["run", "e6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "local" in out and "remote" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "steered gain -> 2.5" in out
