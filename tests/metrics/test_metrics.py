"""Tests for latency recording, throughput metering, and summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import LatencyRecorder, ThroughputMeter, summarize
from repro.sim import Simulator


# ------------------------------- summarize ---------------------------------

def test_summarize_empty():
    s = summarize([])
    assert s.count == 0
    assert s.mean == 0.0
    assert s.maximum == 0.0


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.p50 == pytest.approx(2.5)


def test_summarize_scaled():
    s = summarize([1.0, 3.0]).scaled(1000.0)
    assert s.mean == pytest.approx(2000.0)
    assert s.count == 2  # count untouched


def test_summary_row_renders():
    row = summarize([1.0]).row()
    assert "n=" in row and "mean=" in row


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=100))
def test_summary_invariants(samples):
    s = summarize(samples)
    tol = 1e-9 * max(1.0, abs(s.maximum))  # float summation slop
    assert s.minimum <= s.p50 <= s.p90 <= s.p99 <= s.maximum
    assert s.minimum - tol <= s.mean <= s.maximum + tol
    assert s.count == len(samples)


# ------------------------------- recorder -----------------------------------

def test_recorder_explicit_samples(sim):
    rec = LatencyRecorder(sim)
    rec.record("op", 0.5)
    rec.record("op", 1.5)
    assert rec.stats("op").mean == pytest.approx(1.0)
    assert rec.samples("op") == [0.5, 1.5]


def test_recorder_spans(sim):
    rec = LatencyRecorder(sim)

    def proc():
        rec.start("rtt", "a")
        yield sim.timeout(2.0)
        got = rec.stop("rtt", "a")
        assert got == pytest.approx(2.0)

    sim.spawn(proc())
    sim.run()
    assert rec.stats("rtt").count == 1


def test_recorder_stop_without_start(sim):
    rec = LatencyRecorder(sim)
    assert rec.stop("rtt", "ghost") is None


def test_recorder_concurrent_spans(sim):
    rec = LatencyRecorder(sim)

    def proc(key, duration):
        rec.start("rtt", key)
        yield sim.timeout(duration)
        rec.stop("rtt", key)

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 3.0))
    sim.run()
    assert sorted(rec.samples("rtt")) == [pytest.approx(1.0),
                                          pytest.approx(3.0)]


def test_recorder_operations_and_clear(sim):
    rec = LatencyRecorder(sim)
    rec.record("a", 1.0)
    rec.record("b", 1.0)
    assert rec.operations() == ["a", "b"]
    rec.clear()
    assert rec.operations() == []


# ------------------------------- throughput ---------------------------------

def test_throughput_rate(sim):
    meter = ThroughputMeter(sim)

    def proc():
        for _ in range(10):
            meter.count("msgs")
            yield sim.timeout(0.5)

    sim.spawn(proc())
    sim.run()
    assert meter.total("msgs") == 10
    assert meter.rate("msgs") == pytest.approx(2.0)


def test_throughput_rate_zero_elapsed(sim):
    meter = ThroughputMeter(sim)
    meter.count("x")
    assert meter.rate("x") == 0.0


def test_throughput_reset(sim):
    meter = ThroughputMeter(sim)
    meter.count("x", 5)

    def proc():
        yield sim.timeout(1.0)
        meter.reset()
        meter.count("x", 2)
        yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run()
    assert meter.total("x") == 2
    assert meter.rate("x") == pytest.approx(2.0)
