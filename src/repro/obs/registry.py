"""MetricsRegistry: one snapshot surface over every collector.

The repo grew three collectors (``PipelineMetrics``, ``FederationMetrics``,
``TrafficTrace``) plus the span store — each with its own ``snapshot()``
shape.  The registry is the facade that names them and exposes one
``snapshot()`` and one flattened text exposition, which
``repro.bench.report`` renders and the ``repro trace`` CLI prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class MetricsRegistry:
    """Named sources, each answering ``snapshot() -> dict``."""

    def __init__(self) -> None:
        self._sources: Dict[str, Any] = {}

    def register(self, name: str, source: Any) -> None:
        """Attach a snapshot-capable source under ``name``."""
        if not hasattr(source, "snapshot"):
            raise TypeError(f"source {name!r} has no snapshot()")
        if name in self._sources:
            raise ValueError(f"source {name!r} already registered")
        self._sources[name] = source

    def sources(self) -> List[str]:
        return sorted(self._sources)

    def snapshot(self) -> Dict[str, dict]:
        """``{source_name: source.snapshot()}`` over every source."""
        return {name: self._sources[name].snapshot()
                for name in self.sources()}

    def flattened(self) -> List[Tuple[str, Any]]:
        """Sorted ``(dotted.key, leaf_value)`` pairs over the snapshot."""
        pairs: List[Tuple[str, Any]] = []

        def walk(prefix: str, value: Any) -> None:
            if isinstance(value, dict):
                for key in sorted(value, key=str):
                    walk(f"{prefix}.{key}", value[key])
            else:
                pairs.append((prefix, value))

        for name, snap in self.snapshot().items():
            walk(name, snap)
        return pairs
