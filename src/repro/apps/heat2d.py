"""2-D heat / advection-diffusion kernel — the CFD demo application.

Explicit FTCS diffusion with optional uniform advection on a square grid, a
maintained hot spot, and steering hooks for diffusivity, advection velocity,
and source strength.  Stability is enforced by clamping the effective CFL
number, so steering cannot blow the solver up.
"""

from __future__ import annotations

import numpy as np

from repro.steering import (
    Actuator,
    Sensor,
    SteerableApplication,
    SteerableParameter,
)


class Heat2DApp(SteerableApplication):
    """2-D advection-diffusion on an ``n`` × ``n`` grid."""

    def __init__(self, host, name, server_host, *, n: int = 64,
                 **kwargs) -> None:
        self.n = n
        self.field = np.zeros((n, n))
        self.source_pos = (n // 2, n // 2)
        super().__init__(host, name, server_host, **kwargs)

    def setup(self) -> None:
        self.diffusivity = self.control.add_parameter(SteerableParameter(
            "diffusivity", 0.2, minimum=0.0, maximum=0.25,
            description="dimensionless diffusion number (<=0.25 stable)"))
        self.velocity_x = self.control.add_parameter(SteerableParameter(
            "velocity_x", 0.0, minimum=-0.4, maximum=0.4,
            description="advection CFL in x"))
        self.source_strength = self.control.add_parameter(SteerableParameter(
            "source_strength", 1.0, minimum=0.0, maximum=10.0,
            description="hot-spot injection per step"))
        self.control.add_parameter(SteerableParameter(
            "n", self.n, read_only=True, description="grid size"))
        self.control.add_sensor(Sensor(
            "max_temperature", lambda: float(self.field.max()),
            monitored=True))
        self.control.add_sensor(Sensor(
            "total_energy", lambda: float(self.field.sum()), monitored=True))
        self.control.add_sensor(Sensor(
            "center_temperature",
            lambda: float(self.field[self.source_pos]), monitored=True))
        self.control.add_sensor(Sensor(
            "field", lambda: self.field.copy(),
            description="full temperature field"))
        self.control.add_actuator(Actuator(
            "move_source", self._move_source,
            description="relocate the hot spot"))
        self.control.add_actuator(Actuator(
            "quench", self._quench, description="zero the field"))

    def step(self, index: int) -> None:
        f = self.field
        d = self.diffusivity.value
        lap = (np.roll(f, 1, 0) + np.roll(f, -1, 0)
               + np.roll(f, 1, 1) + np.roll(f, -1, 1) - 4.0 * f)
        vx = self.velocity_x.value
        adv = -vx * (f - np.roll(f, 1, 1))
        self.field = f + d * lap + adv
        self.field[self.source_pos] += self.source_strength.value
        # radiative loss keeps energy bounded
        self.field *= 0.999

    def _move_source(self, i: int, j: int) -> dict:
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise ValueError(f"source ({i},{j}) outside {self.n}x{self.n}")
        self.source_pos = (int(i), int(j))
        return {"source": [int(i), int(j)]}

    def _quench(self) -> dict:
        energy = float(self.field.sum())
        self.field[:] = 0.0
        return {"energy_removed": energy}
