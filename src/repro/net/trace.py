"""Traffic accounting.

Counts every frame on every hop, split by link kind (LAN/WAN) and by wire
channel.  Experiment E4 reads ``wan_messages`` / ``wan_bytes`` to show the
paper's claim that the peer-to-peer server network sends *one* message to a
remote server instead of one per remote client (§5.2.3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.network import Frame


@dataclass
class LinkCounter:
    """Per-link totals."""

    messages: int = 0
    bytes: int = 0


class TrafficTrace:
    """Aggregates per-link, per-kind, and per-channel traffic totals."""

    def __init__(self) -> None:
        self.per_link: Dict[Tuple[str, str], LinkCounter] = defaultdict(LinkCounter)
        self.per_kind: Dict[str, LinkCounter] = defaultdict(LinkCounter)
        self.per_channel: Dict[str, LinkCounter] = defaultdict(LinkCounter)
        self.total = LinkCounter()
        #: frames that reached an unbound destination port
        self.dropped = LinkCounter()
        #: plane-qualified id of the last pipeline request completed (set
        #: by the metrics interceptor) — correlates a snapshot with the
        #: request that was in flight when it was taken
        self.last_request_id: str = ""

    def tag_request(self, trace_id: str) -> None:
        """Mark ``trace_id`` (e.g. ``"http-17"``) as the latest request."""
        self.last_request_id = trace_id

    def record_dropped(self, frame: "Frame") -> None:
        """Count one undeliverable frame (destination port unbound)."""
        self.dropped.messages += 1
        self.dropped.bytes += frame.size

    def record(self, link: "Link", frame: "Frame") -> None:
        """Count one frame crossing one link."""
        key = tuple(sorted(link.ends))
        for counter in (self.per_link[key], self.per_kind[link.kind],
                        self.per_channel[frame.channel], self.total):
            counter.messages += 1
            counter.bytes += frame.size

    # -- convenience views used by the benchmarks -------------------------
    @property
    def wan_messages(self) -> int:
        return self.per_kind["wan"].messages

    @property
    def wan_bytes(self) -> int:
        return self.per_kind["wan"].bytes

    @property
    def lan_messages(self) -> int:
        return self.per_kind["lan"].messages

    @property
    def lan_bytes(self) -> int:
        return self.per_kind["lan"].bytes

    def reset(self) -> None:
        """Zero all counters (between benchmark phases)."""
        self.per_link.clear()
        self.per_kind.clear()
        self.per_channel.clear()
        self.total = LinkCounter()
        self.dropped = LinkCounter()
        self.last_request_id = ""

    def snapshot(self) -> dict:
        """A plain-dict summary for reports."""
        return {
            "last_request_id": self.last_request_id,
            "total_messages": self.total.messages,
            "total_bytes": self.total.bytes,
            "wan_messages": self.wan_messages,
            "wan_bytes": self.wan_bytes,
            "lan_messages": self.lan_messages,
            "lan_bytes": self.lan_bytes,
            "dropped_messages": self.dropped.messages,
            "dropped_bytes": self.dropped.bytes,
            "by_channel": {ch: (c.messages, c.bytes)
                           for ch, c in sorted(self.per_channel.items())},
        }
