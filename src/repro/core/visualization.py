"""Visualization pool service — §4.1's "visualization" auxiliary handler.

"In addition to these core handlers, there can be a number of handlers
providing auxiliary services such as session archival, database handling,
visualization, request redirection ..." (§4.1).  Visualization is heavy
(the §6.2 worry about "large virtual reality collaborative environments
where 3D data is involved"), so we follow the pool-of-services model: a
shared :class:`VisualizationService` any server or client can discover via
the trader and call with raw field data, getting back a downsampled view
plus summary statistics — a fraction of the bytes of the full field.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class VisualizationError(Exception):
    """Bad field data or render parameters."""


def downsample(field: np.ndarray, width: int, height: int = 1) -> np.ndarray:
    """Block-average ``field`` (1-D or 2-D) to ``width`` (× ``height``).

    Upsampling requests are clamped to the field's own resolution.
    """
    if field.ndim == 1:
        width = min(width, field.size)
        edges = np.linspace(0, field.size, width + 1).astype(int)
        return np.array([field[a:b].mean() if b > a else field[min(a, field.size - 1)]
                         for a, b in zip(edges, edges[1:])])
    if field.ndim == 2:
        height = min(height, field.shape[0])
        width = min(width, field.shape[1])
        r_edges = np.linspace(0, field.shape[0], height + 1).astype(int)
        c_edges = np.linspace(0, field.shape[1], width + 1).astype(int)
        out = np.empty((height, width))
        for i, (r0, r1) in enumerate(zip(r_edges, r_edges[1:])):
            for j, (c0, c1) in enumerate(zip(c_edges, c_edges[1:])):
                block = field[r0:max(r1, r0 + 1), c0:max(c1, c0 + 1)]
                out[i, j] = block.mean()
        return out
    raise VisualizationError(f"cannot render {field.ndim}-D field")


def ascii_render(view: np.ndarray, palette: str = " .:-=+*#%@") -> List[str]:
    """Render a (downsampled) view as ASCII art lines — the portal's
    terminal 'display'."""
    arr = np.atleast_2d(np.asarray(view, dtype=float))
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    idx = ((arr - lo) / span * (len(palette) - 1)).round().astype(int)
    return ["".join(palette[v] for v in row) for row in idx]


class VisualizationService:
    """Shared rendering service in the service pool."""

    SERVICE_ID = "VISUALIZATION"

    def __init__(self) -> None:
        self.renders = 0

    def ping(self) -> str:
        return "visualization"

    def render(self, field: np.ndarray, width: int = 32,
               height: int = 1) -> dict:
        """Downsample + summarize a field.

        Returns the reduced view (as an ndarray, wire-encodable) plus the
        statistics portals display alongside it.
        """
        if width < 1 or height < 1:
            raise VisualizationError("width/height must be >= 1")
        field = np.asarray(field, dtype=float)
        view = downsample(field, width, height)
        self.renders += 1
        return {
            "view": view,
            "shape": list(field.shape),
            "min": float(field.min()),
            "max": float(field.max()),
            "mean": float(field.mean()),
            "reduction": field.size / max(1, view.size),
        }

    def render_ascii(self, field: np.ndarray, width: int = 32,
                     height: int = 8) -> dict:
        """Like :meth:`render` but with terminal-ready ASCII lines."""
        result = self.render(field, width, height)
        result["ascii"] = ascii_render(result["view"])
        return result
