"""Portal-side behaviours: message filing, groups, views, logout, errors."""

import pytest

from repro import AppConfig, PortalError, build_single_server
from repro.apps import SyntheticApp


def fast_config():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


@pytest.fixture
def site():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=fast_config())
    collab.sim.run(until=2.0)
    return collab, app


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def test_portal_requires_login(site):
    collab, app = site
    portal = collab.add_portal(0)
    with pytest.raises(PortalError):
        portal._cid()


def test_open_unknown_app_fails(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        try:
            yield from portal.open("d0-server#a999")
        except PortalError as exc:
            return exc.status

    assert run(collab, scenario()) == 403


def test_list_apps_refreshes(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        first = yield from portal.login("alice")
        # a second app registers while alice is logged in
        collab.add_app(0, SyntheticApp, "late-app",
                       acl={"alice": "read"}, config=fast_config())
        yield portal.sim.timeout(2.0)
        second = yield from portal.list_apps()
        return (len(first), len(second))

    assert run(collab, scenario()) == (1, 2)


def test_messages_filed_by_type(site):
    collab, app = site
    alice = collab.add_portal(0)
    bob = collab.add_portal(0)

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        b_sess = yield from bob.open(app.app_id)
        yield from a_sess.chat("hello")
        yield from a_sess.draw("circle", [[1, 2], [3, 4]])
        yield collab.sim.timeout(1.0)
        yield from bob.poll(max_items=64)
        return (len(bob.updates), len(bob.chat_log), len(bob.whiteboard))

    updates, chats, drawings = run(collab, scenario())
    assert updates >= 1
    assert chats == 1
    assert drawings == 1


def test_share_view_reaches_group_even_with_collab_off(site):
    collab, app = site
    alice = collab.add_portal(0)
    bob = collab.add_portal(0)

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        yield from bob.open(app.app_id)
        yield from alice.set_collaboration(False)
        delivered = yield from a_sess.share_view({"roi": [0, 10]})
        yield collab.sim.timeout(0.5)
        yield from bob.poll(max_items=64)
        shared = [u for u in bob.updates
                  if u.payload == {"roi": [0, 10]}]
        return (delivered, len(shared))

    delivered, shared = run(collab, scenario())
    assert delivered == 1
    assert shared == 1


def test_subgroup_chat_is_scoped(site):
    collab, app = site
    alice = collab.add_portal(0)
    bob = collab.add_portal(0)

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        yield from bob.open(app.app_id)
        members = yield from a_sess.join_group("numerics")
        assert alice.client_id in members
        # bob is not in the subgroup: chat there must not reach him
        yield from a_sess.chat("secret", group="numerics")
        yield collab.sim.timeout(0.5)
        yield from bob.poll(max_items=64)
        return [m.text for m in bob.chat_log]

    assert run(collab, scenario()) == []


def test_logout_drops_lock_and_session(site):
    collab, app = site
    alice = collab.add_portal(0)
    bob = collab.add_portal(0)

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        yield from a_sess.acquire_lock()
        server = collab.server_of(0)
        holder_before = server.locks.holder_of(app.app_id)
        yield from alice.logout()
        holder_after = server.locks.holder_of(app.app_id)
        sessions = server.collab.session_count()
        return (holder_before, holder_after, sessions)

    holder_before, holder_after, sessions = run(collab, scenario())
    assert holder_before is not None
    assert holder_after is None
    assert sessions == 1  # only bob remains


def test_wait_lock_granted_after_release(site):
    collab, app = site
    alice = collab.add_portal(0)
    bob_portal = collab.add_portal(0)
    # give bob write access for this test
    server = collab.server_of(0)
    server.security.acl_for(app.app_id).grant("bob", "write")

    def alice_holds_then_releases():
        yield from alice.login("alice")
        sess = yield from alice.open(app.app_id)
        yield from sess.acquire_lock()
        yield collab.sim.timeout(3.0)
        yield from sess.release_lock()

    def bob_waits():
        yield from bob_portal.login("bob")
        sess = yield from bob_portal.open(app.app_id)
        yield collab.sim.timeout(0.5)  # after alice acquires
        outcome = yield from sess.wait_lock(timeout=20.0)
        return (outcome, collab.sim.now)

    collab.sim.spawn(alice_holds_then_releases())
    proc = collab.sim.spawn(bob_waits())
    outcome, when = collab.sim.run(until=proc)
    assert outcome == "granted"
    assert when >= 3.0  # only after alice released


def test_error_message_from_bad_parameter(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        try:
            # gain max is 100 — the app-side agent rejects this
            yield from session.set_param("gain", 1e9)
        except PortalError as exc:
            return str(exc)

    err = run(collab, scenario())
    assert "steering error" in err
    assert "above maximum" in err


def test_take_response_pops_once(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        rid = yield from session.command("get_param", {"name": "gain"})
        msg = yield from portal.wait_response(rid)
        again = portal.take_response(rid)
        return (msg.result, again)

    result, again = run(collab, scenario())
    assert result == 1.0
    assert again is None
