"""IDL declarations of the middleware's two interface levels.

§3: "The middleware architecture defines a simple protocol requiring two
levels of interfaces and interactions for each server.  The first level
interfaces provide a means for peer servers to authenticate with the server
and query it for active services, applications and users.  The second level
interfaces define interactions with the active services and/or applications
at the server."

These declarations are the contract the servants in
:mod:`repro.core.corba` implement (validated at server construction) and
that peer servers consume through typed stubs.
"""

from __future__ import annotations

from repro.orb.idl import Interface, Operation

#: Level one — the server's gateway for all other DISCOVER servers (§5.1.1)
DISCOVER_CORBA_SERVER = Interface("DiscoverCorbaServer", (
    Operation("ping", (), doc="liveness probe; returns the server name"),
    Operation("authenticate", ("user",),
              doc="level-one authentication of a remote user"),
    Operation("authenticate_and_list", ("user",),
              doc="authenticate + list applications the user can access"),
    Operation("get_active_applications", (),
              doc="summaries of active local applications"),
    Operation("get_users", (), doc="users with live sessions here"),
    Operation("get_corba_proxy", ("app_id",),
              doc="reference to a local application's CorbaProxy"),
    Operation("deliver_to_client", ("client_id", "msg"), oneway=True,
              doc="push a response/notification for a client homed here"),
    Operation("deliver_update", ("app_id", "msg"), oneway=True,
              doc="push an application update for local subscribers"),
    Operation("deliver_group_message", ("app_id", "group", "msg"),
              oneway=True,
              doc="push a chat/whiteboard/shared-view group message"),
    Operation("exchange_health", ("server_name", "view"),
              doc="gossip: merge a peer's health view, return ours"),
))

#: Level two — one application's gateway for all other servers (§5.1.2)
CORBA_PROXY = Interface("CorbaProxy", (
    Operation("get_interface", ("user",),
              doc="second-level auth + customized steering interface"),
    Operation("get_status", (), doc="proxy-level application status"),
    Operation("deliver_command",
              ("user", "client_id", "command", "args", "request_id"),
              doc="relay a remote client's steering command"),
    Operation("acquire_lock", ("client_id",),
              doc="steering-lock acquire, relayed to the host server"),
    Operation("release_lock", ("client_id",), doc="steering-lock release"),
    Operation("lock_holder", (), doc="current driver of the application"),
    Operation("get_updates_since", ("seq",),
              doc="poll-mode update retrieval (§5.2.3's polling design)"),
    Operation("subscribe_server", ("server_name",),
              doc="subscribe a peer server to pushed updates"),
    Operation("unsubscribe_server", ("server_name",),
              doc="remove a peer's update subscription"),
    Operation("publish_group_message", ("group", "msg"),
              doc="fan a group message out from the home server"),
    Operation("replay_interactions", ("user", "since", "limit"),
              doc="archived client↔app interactions from the home server"),
    Operation("replay_app_log", ("user", "since", "limit"),
              doc="the application's archived history from the home server"),
    Operation("latecomer_catchup", ("user", "n"),
              doc="recent group interactions for a late joiner (§5.2.5)"),
))
