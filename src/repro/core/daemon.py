"""The daemon: bridge between a server and its local applications.

§4.1: "The Daemon servlet forms the bridge between the server and the
applications.  Each application is authenticated at the server using a
pre-assigned unique identifier.  The daemon servlet creates an Application
Proxy for each new application that connects to it ... It also assigns the
application a unique session identifier."

§5.2.1 fixes the identifier scheme: "The application identifier is chosen
to be a combination of the server's IP address and a local count of the
applications on each server ... the server's IP address can be extracted
from this application identifier, making it very easy to determine if the
application is a local application or a remote application."  We use
``<server-name>#a<count>`` and :func:`home_server_of` extracts the server.

The daemon listens on the custom TCP channel (cheap per-message cost —
the reason one server supports >40 applications but only ~20 HTTP clients).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.proxy import ApplicationProxy
from repro.directory import (  # noqa: F401 (re-export)
    home_server_of,
    make_app_id,
)
from repro.pipeline.core import PLANE_CHANNEL, Pipeline, RequestContext
from repro.steering.application import DAEMON_PORT
from repro.wire import (
    AckMessage,
    CommandMessage,
    ControlMessage,
    ErrorMessage,
    Message,
    RegisterMessage,
    ResponseMessage,
    UpdateMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer


class DaemonService:
    """Listens for application connections on the daemon port."""

    def __init__(self, server: "DiscoverServer",
                 port: int = DAEMON_PORT,
                 pipeline: Optional[Pipeline] = None) -> None:
        self.server = server
        self.sim = server.sim
        self.port = port
        self.endpoint = server.host.bind(port)
        self._app_count = 0
        if pipeline is None:
            # Late import: repro.pipeline.interceptors imports the core
            # managers, which import this module.  The default chain must
            # include the security interceptor — registration auth (§4.1)
            # lives there now.
            from repro.pipeline.interceptors import default_pipeline
            pipeline = default_pipeline(PLANE_CHANNEL,
                                        clock=lambda: self.sim.now,
                                        security=server.security)
        #: interceptor chain every channel message dispatches through
        self.pipeline = pipeline
        self._proc = self.sim.spawn(self._listen(),
                                    name=f"daemon@{server.name}")
        self.messages_handled = 0

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("daemon stop")
        self.endpoint.close()

    def next_app_id(self) -> str:
        """Mint via the process-wide Placement (§5.2.1 by default)."""
        self._app_count += 1
        self.server.journal.append("daemon.seq", {"n": self._app_count})
        return make_app_id(self.server.name, self._app_count)

    # -- durable state plane hooks ----------------------------------------
    def seq_state(self) -> dict:
        return {"n": self._app_count}

    def restore_seq(self, state: dict) -> None:
        self._app_count = max(self._app_count, state.get("n", 0))

    def apply_seq_event(self, event: str, data: dict, at: float) -> None:
        if event == "seq":
            self._app_count = max(self._app_count, data.get("n", 0))

    def forward_command(self, app_host: str, app_port: int,
                        cmd: CommandMessage) -> None:
        """Send a command to the application over its channel."""
        self.endpoint.send(app_host, app_port, cmd, channel="command")

    # -- listener -------------------------------------------------------------
    def _listen(self):
        from repro.sim import Interrupt
        costs = self.server.costs
        try:
            while True:
                frame = yield self.endpoint.recv()
                msg = frame.payload
                if not isinstance(msg, Message):
                    self.server.log.warn(
                        "daemon.frame_dropped", reason="not a Message",
                        src=frame.src_host, payload=type(msg).__name__)
                    self.server.health.note_channel_failure()
                    continue
                # custom-TCP-channel service cost on the server CPU
                cpu_cost = costs.tcp_cost(frame.size)
                yield from self.server.host.use_cpu(cpu_cost)
                self.messages_handled += 1
                ctx = RequestContext(PLANE_CHANNEL, request_id=msg.msg_id,
                                     principal=frame.src_host,
                                     operation=type(msg).__name__,
                                     size=frame.size, request=msg)
                ctx.attrs["trace_parent"] = frame.trace_ctx
                # modeled CPU charged above, reported for cost attribution
                ctx.attrs["cpu_cost"] = cpu_cost

                def dispatch(_ctx, frame=frame, msg=msg):
                    return self._dispatch(frame, msg)

                reply = yield from self.pipeline.execute(ctx, dispatch)
                if isinstance(reply, Message):
                    self.endpoint.send(frame.src_host, frame.src_port,
                                       reply, channel="response",
                                       trace_ctx=ctx.attrs.get("trace_ctx"))
        except Interrupt:
            return

    def _dispatch(self, frame, msg: Message) -> Optional[Message]:
        """Pipeline handler: route one channel message; returns the reply
        message (if any) for the listener to send.  Registration auth
        already happened in the chain's security interceptor."""
        if isinstance(msg, RegisterMessage):
            return self._on_register(frame, msg)
        if isinstance(msg, UpdateMessage):
            self.server.on_app_update(msg)
        elif isinstance(msg, (ResponseMessage, ErrorMessage)):
            self.server.on_app_response(msg)
        elif isinstance(msg, ControlMessage):
            if msg.event == "phase":
                self.server.on_app_phase(msg.app_id, msg.detail)
            elif msg.event == "deregister":
                self.server.on_app_deregister(msg.app_id)
            else:
                self.server.log.warn(
                    "daemon.unknown_control_event", event=msg.event,
                    app_id=msg.app_id, src=frame.src_host)
        else:
            self.server.log.warn(
                "daemon.unhandled_message", message=type(msg).__name__,
                src=frame.src_host)
        return None

    def _on_register(self, frame, msg: RegisterMessage) -> AckMessage:
        app_id = self.next_app_id()
        proxy = ApplicationProxy(
            app_id, msg.app_name, msg.interface, msg.acl,
            app_host=frame.src_host, app_port=frame.src_port,
            owner=self._owner_from_acl(msg.acl),
            forward=self.forward_command)
        self.server.on_app_register(proxy)
        return AckMessage(msg.msg_id, ok=True, info=app_id)

    @staticmethod
    def _owner_from_acl(acl: dict) -> str:
        """The application's owning user: first write-privileged entry."""
        for user, priv in acl.items():
            if priv == "write":
                return user
        return next(iter(acl), "system")
