"""The Tracer: the one write API for causal tracing over simulated time.

Components never construct spans themselves (the obs boundary lint
enforces it) — they ask the tracer to start/finish/record them, and the
tracer handles sampling, id minting, the per-process "current span" used
for in-process propagation, and retention in the shared
:class:`~repro.obs.store.SpanStore`.

Tracing is **zero-event**: every method is a plain call off the clock
(``sim.now``) — nothing here schedules simulator events, takes virtual
time, or changes a wire size, so the golden experiment tables are
bit-for-bit identical with tracing on or off.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.span import Span, TraceContext
from repro.obs.store import DEFAULT_MAX_SPANS, SpanStore

SAMPLE_ALWAYS = "always"
SAMPLE_OFF = "off"


class Tracer:
    """Mints, activates, and records spans against one shared store.

    ``sampling`` is the memory knob: ``"always"``, ``"off"``, or an int N
    for 1-in-N root sampling (children of a sampled root are always kept,
    so sampled traces stay complete trees).  Sampling decisions are
    counter-based, never random — a traced run is reproducible.

    The "current span" is tracked per simulation process (keyed by
    ``sim.active_process``), so interleaved processes on one simulator
    cannot leak context into each other.  Pass explicit ``clock`` /
    ``scope`` callables to use the tracer without a simulator (tests).
    """

    def __init__(self, sim=None, *,
                 clock: Optional[Callable[[], float]] = None,
                 scope: Optional[Callable[[], Any]] = None,
                 sampling: Union[str, int] = SAMPLE_ALWAYS,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if sim is not None:
            clock = clock or (lambda: sim.now)
            scope = scope or (lambda: sim.active_process)
        self._clock = clock or (lambda: 0.0)
        self._scope = scope or (lambda: None)
        self.sampling = self._check_sampling(sampling)
        self.store = SpanStore(max_spans)
        self._trace_seq = itertools.count(1)
        self._span_seq = itertools.count(1)
        self._roots_seen = 0
        #: per-process stacks of active spans (in-process propagation)
        self._active: Dict[Any, List[Span]] = {}
        #: optional RequestCostLedger — every minted span is charged to the
        #: active request's cost vector ("spans" dimension, zero-event)
        self.ledger = None

    @staticmethod
    def _check_sampling(sampling: Union[str, int]) -> Union[str, int]:
        if sampling in (SAMPLE_ALWAYS, SAMPLE_OFF):
            return sampling
        if isinstance(sampling, int) and sampling >= 1:
            return sampling
        raise ValueError(f"sampling must be {SAMPLE_ALWAYS!r}, "
                         f"{SAMPLE_OFF!r}, or a positive int, "
                         f"not {sampling!r}")

    @property
    def enabled(self) -> bool:
        return self.sampling != SAMPLE_OFF

    # -- span lifecycle ----------------------------------------------------
    def start_span(self, op: str, *, plane: str = "", server: str = "",
                   parent: Optional[Any] = None,
                   attrs: Optional[dict] = None) -> Optional[Span]:
        """Open a span; None when sampled out (all APIs accept None).

        ``parent`` is a :class:`TraceContext`, a :class:`Span`, or None —
        None falls back to the calling process's current span, and a root
        is minted when there is none (subject to the sampling knob).
        """
        if self.sampling == SAMPLE_OFF:
            return None
        if parent is None:
            parent = self.current_context()
        elif isinstance(parent, Span):
            parent = parent.context()
        if parent is None:
            self._roots_seen += 1
            if (self.sampling != SAMPLE_ALWAYS
                    and (self._roots_seen - 1) % self.sampling != 0):
                return None
            trace_id, parent_id = next(self._trace_seq), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        if self.ledger is not None:
            self.ledger.charge("spans", 1, plane="obs", operation="span")
        return Span(trace_id, next(self._span_seq), parent_id, op,
                    plane=plane, server=server, start=self._clock(),
                    attrs=attrs)

    def finish(self, span: Optional[Span], *,
               error: Optional[Any] = None) -> None:
        """Close a span at the current clock and retain it."""
        if span is None:
            return
        span.end = self._clock()
        if error is not None:
            span.status = "error"
            span.error = (error if isinstance(error, str)
                          else f"{type(error).__name__}: {error}")
        self.store.add(span)

    def annotate(self, span: Optional[Span], **attrs: Any) -> None:
        """Attach attributes to an open span (no-op when sampled out)."""
        if span is not None:
            span.attrs.update(attrs)

    def record_span(self, op: str, start: float, end: float, *,
                    parent: Optional[TraceContext], plane: str = "",
                    server: str = "", attrs: Optional[dict] = None,
                    status: str = "ok") -> Optional[Span]:
        """Retain an already-completed span (e.g. a network hop observed
        at hand-off).  Requires a sampled parent context — hop spans never
        start traces of their own."""
        if self.sampling == SAMPLE_OFF or parent is None:
            return None
        if self.ledger is not None:
            self.ledger.charge("spans", 1, plane="obs", operation="span")
        span = Span(parent.trace_id, next(self._span_seq), parent.span_id,
                    op, plane=plane, server=server, start=start, attrs=attrs)
        span.end = end
        span.status = status
        self.store.add(span)
        return span

    # -- in-process context propagation -------------------------------------
    def activate(self, span: Optional[Span]):
        """Make ``span`` the calling process's current span; returns a
        token for :meth:`deactivate` (always pair them, try/finally)."""
        if span is None:
            return None
        key = self._scope()
        self._active.setdefault(key, []).append(span)
        return (key, span)

    def deactivate(self, token) -> None:
        """Undo one :meth:`activate`; pops the process's stack entry."""
        if token is None:
            return
        key, span = token
        stack = self._active.get(key)
        if not stack:
            return
        if stack[-1] is span:
            stack.pop()
        else:  # out-of-order unwind (defensive; should not happen)
            try:
                stack.remove(span)
            except ValueError:
                pass
        if not stack:
            del self._active[key]

    def current_span(self) -> Optional[Span]:
        stack = self._active.get(self._scope())
        return stack[-1] if stack else None

    def active_span_of(self, scope_key: Any) -> Optional[Span]:
        """The active span of an arbitrary scope key (another process) —
        the dispatch profiler's tag lookup, read-only."""
        stack = self._active.get(scope_key)
        return stack[-1] if stack else None

    def current_context(self) -> Optional[TraceContext]:
        """The propagatable context of the calling process's current span
        (what frames and GIOP service-context slots carry)."""
        span = self.current_span()
        return span.context() if span is not None else None

    @staticmethod
    def context_of(span: Optional[Span]) -> Optional[TraceContext]:
        """Inject helper: the compact context of an (optional) span."""
        return span.context() if span is not None else None

    @contextmanager
    def span(self, op: str, *, plane: str = "", server: str = "",
             parent: Optional[Any] = None, attrs: Optional[dict] = None):
        """Context manager: start + activate, finish + deactivate.

        Safe around ``yield from`` bodies inside simulation processes —
        the scope key is the process itself, so the context survives
        suspension and errors propagate into the span's status.
        """
        span = self.start_span(op, plane=plane, server=server,
                               parent=parent, attrs=attrs)
        token = self.activate(span)
        try:
            yield span
        except BaseException as exc:
            self.finish(span, error=exc)
            raise
        else:
            self.finish(span)
        finally:
            self.deactivate(token)

    # -- reduction ---------------------------------------------------------
    def snapshot(self) -> dict:
        out = self.store.snapshot()
        out["sampling"] = self.sampling
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Tracer sampling={self.sampling!r} "
                f"spans={len(self.store)}>")
