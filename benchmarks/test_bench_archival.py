"""E12 — §5.2.5: the interaction log "enables clients to replay their
interactions with the applications.  It also enables latecomers to a
collaboration group to get up to speed."

A driver client builds up K archived interactions; a latecomer then joins
and fetches catch-up history.  The shape: catch-up cost grows with history
length (log reads + response payload), so bounded catch-up windows are the
practical choice.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import make_app_farm
from repro.core.deployment import build_single_server
from repro.metrics import LatencyRecorder

HISTORY = (10, 50, 100, 200)


def _archival_run(k: int) -> dict:
    collab = build_single_server()
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, user="bench", update_period=0.2)
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    recorder = LatencyRecorder(collab.sim)

    def driver():
        portal = collab.add_portal(0)
        yield from portal.login("bench")
        session = yield from portal.open(app_id)
        yield from session.acquire_lock()
        for i in range(k):
            # archive grows by one interaction per command
            yield from session.command("get_param", {"name": "gain"})
            yield collab.sim.timeout(0.01)
        # let responses drain
        yield collab.sim.timeout(2.0)

    def latecomer():
        portal = collab.add_portal(0)
        yield from portal.login("bench")
        session = yield from portal.open(app_id)
        recorder.start("catchup", 0)
        records = yield from session.catchup(n=k)
        recorder.stop("catchup", 0)
        recorder.start("full_replay", 0)
        replay = yield from session.replay_interactions()
        recorder.stop("full_replay", 0)
        return (len(records), len(replay))

    drv = collab.sim.spawn(driver())
    collab.sim.run(until=drv)
    late = collab.sim.spawn(latecomer())
    caught, replayed = collab.sim.run(until=late)
    return {
        "history_k": k,
        "catchup_records": caught,
        "replay_records": replayed,
        "catchup_ms": recorder.stats("catchup").mean * 1e3,
        "full_replay_ms": recorder.stats("full_replay").mean * 1e3,
    }


def test_bench_e12_archival_replay(benchmark):
    rows = run_once(benchmark, lambda: [_archival_run(k) for k in HISTORY])
    print_experiment(
        "E12: latecomer catch-up and replay cost vs history length",
        "enables clients to replay their interactions ... enables "
        "latecomers to a collaboration group to get up to speed",
        rows,
        ["history_k", "catchup_records", "replay_records", "catchup_ms",
         "full_replay_ms"],
        finding=(f"catch-up grows from {rows[0]['catchup_ms']:.0f}ms at "
                 f"K={rows[0]['history_k']} to "
                 f"{rows[-1]['catchup_ms']:.0f}ms at "
                 f"K={rows[-1]['history_k']}"),
    )
    # the archive actually contains the history
    for row in rows:
        assert row["catchup_records"] == row["history_k"]
        assert row["replay_records"] >= row["history_k"]
    # cost grows with history length
    assert rows[-1]["catchup_ms"] > rows[0]["catchup_ms"]
    assert rows[-1]["full_replay_ms"] >= rows[-1]["catchup_ms"] * 0.8
