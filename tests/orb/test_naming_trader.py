"""Tests for the naming service and the trader layered on it."""

import pytest

from repro.net import Network
from repro.orb import (
    NamingService,
    ObjectNotFound,
    ObjectRef,
    Orb,
    OrbError,
    ServiceOffer,
    TraderService,
)
from repro.sim import Simulator
from tests.conftest import drive


def ref(key, host="h", port=683):
    return ObjectRef(host, port, key)


# ----------------------------- NamingService ------------------------------

def test_bind_resolve():
    ns = NamingService()
    r = ref("app-1")
    ns.bind("app-1", r)
    assert ns.resolve("app-1") == r


def test_bind_duplicate_rejected():
    ns = NamingService()
    ns.bind("x", ref("x"))
    with pytest.raises(OrbError):
        ns.bind("x", ref("x2"))


def test_rebind_replaces():
    ns = NamingService()
    ns.bind("x", ref("x"))
    ns.rebind("x", ref("x2"))
    assert ns.resolve("x").object_key == "x2"


def test_resolve_missing():
    ns = NamingService()
    with pytest.raises(ObjectNotFound):
        ns.resolve("ghost")


def test_unbind():
    ns = NamingService()
    ns.bind("x", ref("x"))
    ns.unbind("x")
    assert "x" not in ns
    with pytest.raises(ObjectNotFound):
        ns.unbind("x")


def test_list_names_prefix():
    ns = NamingService()
    for name in ("apps/a", "apps/b", "servers/s1"):
        ns.bind(name, ref(name))
    assert ns.list_names("apps/") == ["apps/a", "apps/b"]
    assert len(ns) == 3


# ------------------------------- Trader --------------------------------

def test_trader_export_and_query():
    ns = NamingService()
    trader = TraderService(ns)
    offer = ServiceOffer("DISCOVER", ref("srv-1"), {"domain": "rutgers"})
    oid = trader.export(offer)
    found = trader.query_now("DISCOVER")
    assert [o.offer_id for o in found] == [oid]


def test_trader_stores_offers_through_naming():
    """The paper's layering: trader offers are visible as naming bindings."""
    ns = NamingService()
    trader = TraderService(ns)
    offer = ServiceOffer("DISCOVER", ref("srv-1"))
    trader.export(offer)
    bound = ns.list_names("trader/DISCOVER/")
    assert bound == [f"trader/DISCOVER/{offer.offer_id}"]
    assert ns.resolve(bound[0]) == offer.ref


def test_trader_query_filters_by_service_id():
    ns = NamingService()
    trader = TraderService(ns)
    trader.export(ServiceOffer("DISCOVER", ref("srv-1")))
    trader.export(ServiceOffer("ARCHIVE", ref("arch-1")))
    assert len(trader.query_now("DISCOVER")) == 1
    assert len(trader.query_now("ARCHIVE")) == 1
    assert trader.query_now("NOPE") == []


def test_trader_query_property_constraints():
    ns = NamingService()
    trader = TraderService(ns)
    trader.export(ServiceOffer("DISCOVER", ref("s1"), {"domain": "rutgers",
                                                       "ssl": True}))
    trader.export(ServiceOffer("DISCOVER", ref("s2"), {"domain": "caltech",
                                                       "ssl": True}))
    hit = trader.query_now("DISCOVER", {"domain": "rutgers"})
    assert [o.ref.object_key for o in hit] == ["s1"]
    both = trader.query_now("DISCOVER", {"ssl": True})
    assert len(both) == 2
    none = trader.query_now("DISCOVER", {"domain": "mars"})
    assert none == []


def test_trader_withdraw():
    ns = NamingService()
    trader = TraderService(ns)
    offer = ServiceOffer("DISCOVER", ref("s1"))
    oid = trader.export(offer)
    trader.withdraw(oid)
    assert trader.query_now("DISCOVER") == []
    assert ns.list_names("trader/") == []
    with pytest.raises(ObjectNotFound):
        trader.withdraw(oid)


def test_trader_offer_count():
    ns = NamingService()
    trader = TraderService(ns)
    trader.export(ServiceOffer("DISCOVER", ref("s1")))
    trader.export(ServiceOffer("DISCOVER", ref("s2")))
    trader.export(ServiceOffer("OTHER", ref("o1")))
    assert trader.offer_count() == 3
    assert trader.offer_count("DISCOVER") == 2


def test_trader_timed_query_charges_per_offer(sim):
    ns = NamingService()
    trader = TraderService(ns, sim=sim, match_cost=0.01)
    for i in range(10):
        trader.export(ServiceOffer("DISCOVER", ref(f"s{i}")))

    def run_query():
        matches = yield from trader.query("DISCOVER")
        return (len(matches), sim.now)

    n, elapsed = drive(sim, run_query())
    assert n == 10
    assert elapsed == pytest.approx(0.10)


# ----------------------- Remote naming/trader via ORB -----------------------

def test_naming_and_trader_as_remote_servants():
    sim = Simulator()
    net = Network(sim)
    net.add_host("registry")
    net.add_host("peer")
    net.add_link("registry", "peer", 0.005)
    registry_orb = Orb(net.hosts["registry"])
    peer_orb = Orb(net.hosts["peer"])

    ns = NamingService()
    trader = TraderService(ns, sim=sim, match_cost=0.001)
    ns_ref = registry_orb.activate(ns, key=NamingService.OBJECT_KEY)
    tr_ref = registry_orb.activate(trader, key=TraderService.OBJECT_KEY)

    def peer_process():
        # Export my offer remotely, then discover myself.
        my_ref = ObjectRef("peer", 683, "DiscoverCorbaServer")
        offer = ServiceOffer("DISCOVER", my_ref, {"domain": "peer-domain"})
        yield from peer_orb.invoke(tr_ref, "export", offer)
        offers = yield from peer_orb.invoke(tr_ref, "query", "DISCOVER")
        resolved = yield from peer_orb.invoke(
            ns_ref, "resolve", f"trader/DISCOVER/{offer.offer_id}")
        return (len(offers), offers[0].ref == my_ref, resolved == my_ref)

    assert drive(sim, peer_process()) == (1, True, True)
