"""Unit + property tests for the distributed steering lock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locking import LockError, LockManager


def test_first_acquire_granted():
    mgr = LockManager()
    assert mgr.acquire("app", "c1") == "granted"
    assert mgr.holder_of("app") == "c1"
    assert mgr.holds("app", "c1")


def test_second_acquire_queued():
    mgr = LockManager()
    mgr.acquire("app", "c1")
    assert mgr.acquire("app", "c2") == "queued"
    assert mgr.holder_of("app") == "c1"
    assert mgr.queue_length("app") == 1


def test_reacquire_is_idempotent():
    mgr = LockManager()
    mgr.acquire("app", "c1")
    assert mgr.acquire("app", "c1") == "granted"
    assert mgr.queue_length("app") == 0


def test_queued_twice_stays_queued_once():
    mgr = LockManager()
    mgr.acquire("app", "c1")
    mgr.acquire("app", "c2")
    assert mgr.acquire("app", "c2") == "queued"
    assert mgr.queue_length("app") == 1


def test_release_promotes_fifo():
    grants = []
    mgr = LockManager(on_grant=lambda app, c: grants.append((app, c)))
    mgr.acquire("app", "c1")
    mgr.acquire("app", "c2")
    mgr.acquire("app", "c3")
    nxt = mgr.release("app", "c1")
    assert nxt == "c2"
    assert mgr.holder_of("app") == "c2"
    assert grants == [("app", "c2")]
    assert mgr.release("app", "c2") == "c3"
    assert mgr.release("app", "c3") is None
    assert mgr.holder_of("app") is None


def test_release_without_holding_raises():
    mgr = LockManager()
    mgr.acquire("app", "c1")
    with pytest.raises(LockError):
        mgr.release("app", "c2")


def test_queued_client_can_withdraw():
    mgr = LockManager()
    mgr.acquire("app", "c1")
    mgr.acquire("app", "c2")
    assert mgr.release("app", "c2") is None  # withdraw from queue
    assert mgr.queue_length("app") == 0
    assert mgr.holder_of("app") == "c1"


def test_locks_are_per_application():
    mgr = LockManager()
    assert mgr.acquire("app-a", "c1") == "granted"
    assert mgr.acquire("app-b", "c2") == "granted"
    assert mgr.holder_of("app-a") == "c1"
    assert mgr.holder_of("app-b") == "c2"


def test_drop_client_releases_everything():
    grants = []
    mgr = LockManager(on_grant=lambda app, c: grants.append((app, c)))
    mgr.acquire("app-a", "c1")
    mgr.acquire("app-a", "c2")
    mgr.acquire("app-b", "c1")
    mgr.acquire("app-c", "other")
    mgr.acquire("app-c", "c1")  # queued on app-c
    affected = mgr.drop_client("c1")
    assert sorted(affected) == ["app-a", "app-b"]
    assert mgr.holder_of("app-a") == "c2"  # promoted
    assert mgr.holder_of("app-b") is None
    assert mgr.holder_of("app-c") == "other"
    assert mgr.queue_length("app-c") == 0
    assert ("app-a", "c2") in grants


def test_holder_of_unknown_app():
    mgr = LockManager()
    assert mgr.holder_of("never-seen") is None
    assert mgr.queue_length("never-seen") == 0


# -- property: single-driver invariant under arbitrary op sequences --------

clients = st.sampled_from(["c1", "c2", "c3", "c4"])
ops = st.lists(st.tuples(st.sampled_from(["acquire", "release"]), clients),
               max_size=60)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_single_driver_invariant(sequence):
    """At every point: at most one holder; holder not simultaneously queued;
    every grant callback names the new holder."""
    mgr = LockManager()
    granted_via_callback = []
    mgr.on_grant = lambda app, c: granted_via_callback.append(c)
    for op, client in sequence:
        if op == "acquire":
            outcome = mgr.acquire("app", client)
            assert outcome in ("granted", "queued")
            if outcome == "granted":
                assert mgr.holder_of("app") == client
        else:
            try:
                mgr.release("app", client)
            except LockError:
                # releasing without holding/queueing is rejected, fine
                pass
        lock = mgr._locks.get("app")
        if lock is not None:
            # the holder never also waits
            assert lock.holder not in lock.waiters
            # no duplicate waiters
            assert len(set(lock.waiters)) == len(lock.waiters)
    # every callback-grant matched the holder at the time it fired
    # (checked implicitly above); callbacks only fire on promotions
    assert all(c in {"c1", "c2", "c3", "c4"} for c in granted_via_callback)
