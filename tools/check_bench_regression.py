#!/usr/bin/env python
"""Gate the wall-clock perf trajectory: candidate vs committed baseline.

Compares two ``BENCH_*.json`` reports produced by
``repro.bench.wallclock`` and fails (exit 1) if any benchmark present in
*both* reports regressed by more than the threshold (default 25%).
Benchmarks that exist in only one report are listed but never fail the
gate — new entries (e.g. ``e2e/E1_n1000``) must be allowed to appear and
retired entries to disappear without breaking CI.

Usage::

    python tools/check_bench_regression.py \
        --baseline BENCH_1.json --candidate BENCH_2.json [--threshold 1.25]

Caveat for CI use: wall-clock numbers only compare meaningfully when both
reports come from comparable machines.  The committed BENCH_*.json pairs
are recorded on the same developer machine in the same session; a gate
against a *freshly generated* candidate on a different runner class needs
the generous threshold this tool defaults to.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_entries(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    return {e["name"]: e["per_op_us"] for e in report["benchmarks"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_1.json")
    parser.add_argument("--candidate", default="BENCH_2.json")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when candidate/baseline exceeds this "
                             "ratio (default 1.25 = +25%%)")
    args = parser.parse_args(argv)

    baseline = load_entries(args.baseline)
    candidate = load_entries(args.candidate)
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("error: no shared benchmarks between "
              f"{args.baseline} and {args.candidate}")
        return 1

    failures = []
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12} {'candidate':>12} "
          f"{'ratio':>7}")
    for name in shared:
        ratio = candidate[name] / baseline[name]
        flag = "  REGRESSED" if ratio > args.threshold else ""
        print(f"{name:<{width}}  {baseline[name]:>10.1f}us "
              f"{candidate[name]:>10.1f}us {ratio:>6.2f}x{flag}")
        if ratio > args.threshold:
            failures.append((name, ratio))

    for name in sorted(set(candidate) - set(baseline)):
        print(f"{name:<{width}}  {'-':>12} {candidate[name]:>10.1f}us "
              f"   new")
    for name in sorted(set(baseline) - set(candidate)):
        print(f"{name:<{width}}  {baseline[name]:>10.1f}us {'-':>12} "
              f"   retired")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{(args.threshold - 1) * 100:.0f}% vs {args.baseline}:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nOK: {len(shared)} shared benchmarks within "
          f"{(args.threshold - 1) * 100:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
