"""The CI boundary lint must hold on the checked-in tree."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parents[2]


def test_dispatch_modules_do_not_import_security_or_policies():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_pipeline_boundary.py"),
         str(ROOT)],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert "pipeline boundary OK" in proc.stdout
    assert "federation boundary OK" in proc.stdout


def test_federation_lint_catches_stub_usage(tmp_path):
    """The lint flags is_local_app/peer_stub/proxy_stub outside
    repro.federation — and only exact names (remote_proxy_stub is fine)."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_pipeline_boundary as lint
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def handler(server, app_id):\n"
        "    if server.is_local_app(app_id):\n"
        "        return server.proxy_stub(app_id, None)\n"
        "    return peer_stub\n")
    hits = lint.federation_leaks(bad)
    assert sorted(name for _, name in hits) == [
        "is_local_app", "peer_stub", "proxy_stub"]
    ok = tmp_path / "ok.py"
    ok.write_text(
        "def handler(registry, app_id):\n"
        "    return registry.remote_proxy_stub(app_id)\n")
    assert lint.federation_leaks(ok) == []
