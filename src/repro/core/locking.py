"""Distributed steering locks.

§5.2.4: "A simple locking mechanism is used to ensure that the application
remains in a consistent state during collaborative interactions.  This
ensures that only one client 'drives' (issues commands) the application at
any time.  In a distributed server framework, locking information is only
maintained at the application's host server ... Servers providing remote
access to this application only relay lock requests to the host server."

:class:`LockManager` is that host-server authority: one lock per
application, FIFO wait queue, grant notifications delivered through a
callback so remote grants can be pushed across the CORBA tier.

Mutations funnel through private ``_do_*`` methods; the public protocol
wrappers journal one record per successful call, and recovery replays
those records through the same ``_do_*`` paths with notifications
suppressed (a replayed grant must not re-push a LockMessage).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.storage import NULL_JOURNAL


class LockError(Exception):
    """Invalid lock operation (double acquire, foreign release...)."""


class SteeringLock:
    """The single-driver lock of one application."""

    def __init__(self, app_id: str) -> None:
        self.app_id = app_id
        self.holder: Optional[str] = None
        self.waiters: Deque[str] = deque()
        #: total grants, for reporting
        self.grants = 0

    @property
    def is_held(self) -> bool:
        return self.holder is not None


class LockManager:
    """All steering locks homed at one server.

    ``on_grant(app_id, client_id)`` is invoked whenever a queued waiter is
    promoted to holder — the server wires this to its client-notification
    path (local FIFO buffer or remote server push).
    """

    def __init__(self,
                 on_grant: Optional[Callable[[str, str], None]] = None,
                 journal=NULL_JOURNAL) -> None:
        self._locks: Dict[str, SteeringLock] = {}
        self.on_grant = on_grant
        self.journal = journal

    def _lock(self, app_id: str) -> SteeringLock:
        lock = self._locks.get(app_id)
        if lock is None:
            lock = self._locks[app_id] = SteeringLock(app_id)
        return lock

    # -- mutations (journal-free; shared by protocol and replay) -----------
    def _do_acquire(self, app_id: str, client_id: str) -> str:
        lock = self._lock(app_id)
        if lock.holder == client_id:
            return "granted"  # idempotent re-acquire
        if client_id in lock.waiters:
            return "queued"
        if lock.holder is None:
            lock.holder = client_id
            lock.grants += 1
            return "granted"
        lock.waiters.append(client_id)
        return "queued"

    def _do_release(self, app_id: str, client_id: str,
                    notify: bool = True) -> Optional[str]:
        lock = self._lock(app_id)
        if lock.holder != client_id:
            if client_id in lock.waiters:
                lock.waiters.remove(client_id)
                return None
            raise LockError(
                f"{client_id!r} does not hold the lock on {app_id!r}")
        lock.holder = None
        if lock.waiters:
            nxt = lock.waiters.popleft()
            lock.holder = nxt
            lock.grants += 1
            if notify and self.on_grant is not None:
                self.on_grant(app_id, nxt)
            return nxt
        return None

    def _do_drop(self, client_id: str, notify: bool = True) -> list:
        affected = []
        for app_id, lock in self._locks.items():
            if lock.holder == client_id:
                self._do_release(app_id, client_id, notify=notify)
                affected.append(app_id)
            elif client_id in lock.waiters:
                lock.waiters.remove(client_id)
        return affected

    # -- protocol ----------------------------------------------------------
    def acquire(self, app_id: str, client_id: str) -> str:
        """Request the lock.  Returns ``"granted"`` or ``"queued"``."""
        result = self._do_acquire(app_id, client_id)
        self.journal.append("locks.acquire",
                            {"app_id": app_id, "client_id": client_id})
        return result

    def release(self, app_id: str, client_id: str) -> Optional[str]:
        """Release the lock; returns the next holder's id, if any.

        A queued waiter may also withdraw (its id is removed silently).
        Releasing a lock one does not hold raises :class:`LockError`.
        """
        nxt = self._do_release(app_id, client_id)
        self.journal.append("locks.release",
                            {"app_id": app_id, "client_id": client_id})
        return nxt

    def drop_client(self, client_id: str) -> list:
        """Release/dequeue everything ``client_id`` holds (disconnect).

        Returns the app_ids whose lock changed hands or freed up.
        """
        affected = self._do_drop(client_id)
        self.journal.append("locks.drop", {"client_id": client_id})
        return affected

    def holder_of(self, app_id: str) -> Optional[str]:
        """Current driver of ``app_id`` (None if free)."""
        lock = self._locks.get(app_id)
        return lock.holder if lock else None

    def holds(self, app_id: str, client_id: str) -> bool:
        """True if ``client_id`` currently drives ``app_id``."""
        return self.holder_of(app_id) == client_id

    def queue_length(self, app_id: str) -> int:
        lock = self._locks.get(app_id)
        return len(lock.waiters) if lock else 0

    # -- durable state plane hooks -----------------------------------------
    def snapshot_state(self) -> dict:
        """Serialize every lock table to a JSON-safe document."""
        return {app_id: {"holder": lock.holder,
                         "waiters": list(lock.waiters),
                         "grants": lock.grants}
                for app_id, lock in self._locks.items()}

    def restore_state(self, state: dict) -> None:
        """Rebuild the lock tables from a :meth:`snapshot_state` document."""
        for app_id, doc in state.items():
            lock = self._lock(app_id)
            lock.holder = doc.get("holder")
            lock.waiters = deque(doc.get("waiters", ()))
            lock.grants = doc.get("grants", 0)

    def apply_event(self, event: str, data: dict, at: float) -> None:
        """Replay one journaled mutation, with grant pushes suppressed."""
        if event == "acquire":
            self._do_acquire(data["app_id"], data["client_id"])
        elif event == "release":
            self._do_release(data["app_id"], data["client_id"], notify=False)
        elif event == "drop":
            self._do_drop(data["client_id"], notify=False)
