"""GET /status through the real HTTP pipeline (JSON + Prometheus)."""

import pytest

from repro.bench.scenarios import scrape_status
from repro.core.deployment import build_single_server
from repro.health import STATUS_HEALTHY, parse_prometheus


@pytest.fixture()
def collab():
    c = build_single_server(app_hosts=1, client_hosts=1)
    c.run_bootstrap()
    from repro.apps import SyntheticApp
    c.add_app(0, SyntheticApp, "status-app", acl={"alice": "write"})
    c.sim.run(until=c.sim.now + 3.0)
    yield c
    c.stop()


def test_status_json_view(collab):
    server = collab.server_of(0)
    body = scrape_status(collab)
    assert body["server"] == server.name
    key = f"server:{server.name}"
    assert body["health"]["components"][key]["status"] == STATUS_HEALTHY
    assert body["health"]["fleet"][key] == STATUS_HEALTHY
    assert "request_error_rate" in body["slo"]
    assert body["alerts"] == []


def test_status_prom_view_parses(collab):
    server = collab.server_of(0)
    scrape_status(collab)  # at least one HTTP request in the store
    text = scrape_status(collab, params={"format": "prom"})
    assert isinstance(text, str)
    samples = parse_prometheus(text)
    key = ("repro_health_status",
           (("component", f"server:{server.name}"),
            ("server", server.name)))
    assert samples[key] == 1.0
    # the full registry rides along: pipeline counters are in there
    assert any(name.startswith("repro_pipeline_")
               for name, _labels in samples)
    # ...and the time-series store's latency histograms, as proper
    # _bucket/_sum/_count families labelled with this instance
    base = "repro_ts_pipeline_latency_http"
    assert f"# TYPE {base} histogram" in text
    inst = ("instance", server.name)
    count = samples[(f"{base}_count", (inst,))]
    assert count >= 1.0
    assert samples[(f"{base}_bucket", (inst, ("le", "+Inf")))] == count


def test_status_timeseries_views(collab):
    server = collab.server_of(0)
    scrape_status(collab)  # at least one HTTP request in the store
    body = scrape_status(collab, path="/status/timeseries")
    assert body["server"] == server.name
    assert body["bucket_width"] == server.timeseries.bucket_width
    series = body["series"]
    assert series["pipeline.requests.http"]["kind"] == "counter"
    assert series["pipeline.requests.http"]["sum"] >= 1
    lat = series["pipeline.latency.http"]
    assert lat["kind"] == "histogram"
    assert lat["count"] >= 1 and lat["p50"] <= lat["p99"] <= lat["max"]

    # one series' bucket dump, with an explicit quantile
    body = scrape_status(collab, path="/status/timeseries",
                         params={"series": "pipeline.latency.http",
                                 "q": "0.5"})
    assert body["kind"] == "histogram"
    assert body["points"] and all(p["count"] >= 1 for p in body["points"])

    # unknown series maps to 400 through the error envelope
    from repro.web.client import HttpError
    with pytest.raises(HttpError):
        scrape_status(collab, path="/status/timeseries",
                      params={"series": "no.such.series"})


def test_status_app_detail(collab):
    server = collab.server_of(0)
    app_id = next(iter(server.local_proxies))
    body = scrape_status(collab, path="/status/app",
                         params={"app_id": app_id})
    assert body["app_id"] == app_id
    assert body["status"] == STATUS_HEALTHY
    assert body["name"] == "status-app"
    assert body["active"] is True
    assert "commands_forwarded" in body


def test_status_alerts_view(collab):
    body = scrape_status(collab, path="/status/alerts")
    assert body["active"] == []
    assert body["history"] == []


def test_scrape_is_itself_metered(collab):
    """The status endpoint goes through the interceptor pipeline."""
    server = collab.server_of(0)
    from repro.pipeline.core import PLANE_HTTP
    before = server.pipeline_metrics.requests(PLANE_HTTP)
    scrape_status(collab)
    assert server.pipeline_metrics.requests(PLANE_HTTP) == before + 1
