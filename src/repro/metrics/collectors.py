"""Runtime collectors driven inside simulation scenarios."""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.metrics.stats import Reservoir, SummaryStats, summarize

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


class LatencyRecorder:
    """Collects latency samples per named operation."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self._open: Dict[tuple, float] = {}

    # -- explicit samples -----------------------------------------------
    def record(self, op: str, latency: float) -> None:
        self._samples[op].append(latency)

    # -- start/stop spans ---------------------------------------------------
    def start(self, op: str, key) -> None:
        """Open a span identified by ``(op, key)`` at the current time."""
        self._open[(op, key)] = self.sim.now

    def stop(self, op: str, key) -> Optional[float]:
        """Close a span; records and returns its duration."""
        t0 = self._open.pop((op, key), None)
        if t0 is None:
            return None
        latency = self.sim.now - t0
        self._samples[op].append(latency)
        return latency

    # -- reduction --------------------------------------------------------
    def samples(self, op: str) -> List[float]:
        return list(self._samples.get(op, ()))

    def stats(self, op: str) -> SummaryStats:
        return summarize(self._samples.get(op, ()))

    def operations(self) -> List[str]:
        return sorted(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._open.clear()


class PipelineMetrics:
    """Per-plane request counters and latency histograms.

    Fed by :class:`~repro.pipeline.interceptors.MetricsInterceptor` as
    every request on any plane (http / orb / channel) unwinds its
    interceptor chain; one shared instance per
    :class:`~repro.core.server.DiscoverServer` makes all three planes
    report into one place.  Latencies are virtual seconds spent inside
    the pipeline (dispatch + handler), excluding the transport costs
    charged before the chain starts.

    Latency samples are reservoir-bounded per plane (count and mean stay
    exact over every request; percentiles are estimated from the
    reservoir), so a long-running server's metrics use O(1) memory.

    When the server attaches its shared time-series registry
    (``timeseries``), every observation is also recorded as sim-time
    series — ``pipeline.requests.<plane>`` / ``pipeline.errors.<plane>``
    counters and a ``pipeline.latency.<plane>`` histogram whose buckets
    carry span-id exemplars — alongside the end-of-run snapshot path.
    """

    def __init__(self) -> None:
        self._requests: Dict[str, int] = defaultdict(int)
        self._errors: Dict[str, int] = defaultdict(int)
        self._error_types: Dict[str, Dict[str, int]] = {}
        self._latencies: Dict[str, Reservoir] = defaultdict(Reservoir)
        #: optional TimeSeriesRegistry sink, attached by the server
        self.timeseries = None

    def observe(self, plane: str, latency: Optional[float] = None,
                error_type: Optional[str] = None,
                exemplar: Optional[int] = None) -> None:
        """Record one completed request on ``plane``."""
        self._requests[plane] += 1
        if latency is not None:
            self._latencies[plane].add(latency)
        if error_type is not None:
            self._errors[plane] += 1
            by_type = self._error_types.setdefault(plane, defaultdict(int))
            by_type[error_type] += 1
        ts = self.timeseries
        if ts is not None:
            ts.inc(f"pipeline.requests.{plane}")
            if latency is not None:
                ts.observe(f"pipeline.latency.{plane}", latency,
                           exemplar=exemplar)
            if error_type is not None:
                ts.inc(f"pipeline.errors.{plane}")

    # -- reduction --------------------------------------------------------
    def requests(self, plane: Optional[str] = None) -> int:
        if plane is None:
            return sum(self._requests.values())
        return self._requests.get(plane, 0)

    def errors(self, plane: Optional[str] = None) -> int:
        if plane is None:
            return sum(self._errors.values())
        return self._errors.get(plane, 0)

    def error_types(self, plane: str) -> Dict[str, int]:
        return dict(self._error_types.get(plane, ()))

    def latency_stats(self, plane: str) -> SummaryStats:
        reservoir = self._latencies.get(plane)
        return reservoir.stats() if reservoir is not None else summarize(())

    def planes(self) -> List[str]:
        return sorted(self._requests)

    def snapshot(self) -> dict:
        """Plain-dict summary (latencies in milliseconds) for reports."""
        out = {}
        for plane in self.planes():
            stats = self.latency_stats(plane).scaled(1e3)
            out[plane] = {
                "requests": self._requests[plane],
                "errors": self._errors.get(plane, 0),
                "mean_latency_ms": stats.mean,
                "p90_latency_ms": stats.p90,
            }
        return out

    def clear(self) -> None:
        self._requests.clear()
        self._errors.clear()
        self._error_types.clear()
        self._latencies.clear()


class FederationMetrics:
    """Counters and per-app staleness for the federation layer.

    Fed by :mod:`repro.federation` — the :class:`PeerRegistry` counts
    cache invalidations (``app_invalidations`` / ``peer_invalidations``)
    and the :class:`SubscriptionManager` counts subscription lifecycle
    events (``subscribes`` / ``unsubscribes`` / ``pollers_started`` /
    ``poll_rounds`` / ``poll_failovers``).  Staleness samples are virtual
    seconds from an application stamping an update to this server
    receiving it over the peer network (push or poll); they are
    reservoir-bounded per application (exact count/mean, sampled
    percentiles) so long collaborations cannot grow memory without limit.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._staleness: Dict[str, Reservoir] = defaultdict(Reservoir)
        #: optional TimeSeriesRegistry sink, attached by the server
        self.timeseries = None

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] += n

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def observe_staleness(self, app_id: str, lag: float) -> None:
        """Record one remote update's age on arrival."""
        self._staleness[app_id].add(lag)
        if self.timeseries is not None:
            self.timeseries.observe("federation.staleness", lag)

    def staleness_stats(self, app_id: str) -> SummaryStats:
        reservoir = self._staleness.get(app_id)
        return reservoir.stats() if reservoir is not None else summarize(())

    def apps_observed(self) -> List[str]:
        return sorted(self._staleness)

    def snapshot(self) -> dict:
        """Plain-dict summary (staleness in milliseconds) for reports."""
        out = dict(self._counters)
        for app_id in self.apps_observed():
            out[f"staleness_ms[{app_id}]"] = (
                self.staleness_stats(app_id).scaled(1e3).mean)
        return out

    def clear(self) -> None:
        self._counters.clear()
        self._staleness.clear()


class DirectoryMetrics:
    """Counters and lookup latency for one server's ``DirectoryClient``.

    Fed by :class:`repro.directory.client.DirectoryClient` — counts
    reads/writes against the sharded directory plane, replica failovers
    on reads (``read_failovers``), replica write skips on write-through
    (``write_skips``), stale-ring-epoch retries and stub-cache churn.
    ``lookups`` covers user lookups + authentications; ``locates`` covers
    app-placement reads.  Latency samples are virtual seconds from issuing
    a directory read to its reply, reservoir-bounded (exact count/mean,
    sampled percentiles).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._read_latency = Reservoir()
        #: optional TimeSeriesRegistry sink, attached by the server
        self.timeseries = None

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] += n

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def observe_read(self, latency: float) -> None:
        """Record one successful directory read's round-trip time."""
        self._read_latency.add(latency)
        if self.timeseries is not None:
            self.timeseries.observe("directory.read_latency", latency)

    def read_stats(self) -> SummaryStats:
        return self._read_latency.stats()

    def read_samples(self) -> List[float]:
        """The reservoir's retained samples (for cross-server merging)."""
        return self._read_latency.samples()

    def read_reservoir(self) -> Reservoir:
        """The latency reservoir itself, for exact cross-server merges."""
        return self._read_latency

    def snapshot(self) -> dict:
        out = dict(self._counters)
        stats = self.read_stats().scaled(1e3)
        out["read_latency_ms"] = {"count": stats.count, "mean": stats.mean,
                                  "p50": stats.p50, "p99": stats.p99}
        return out

    def clear(self) -> None:
        self._counters.clear()
        self._read_latency = Reservoir()


class StorageMetrics:
    """Counters for one server's durable state plane (:mod:`repro.storage`).

    Fed by the server's :class:`~repro.storage.StateJournal` —
    ``wal_appends`` (journaled mutations), ``snapshots`` /
    ``records_compacted`` (snapshot + compaction passes),
    ``recoveries`` / ``records_replayed`` (restart recovery), with
    ``last_recovery_ms`` the real (wall) milliseconds the most recent
    :meth:`~repro.storage.StateJournal.recover` took — reported in the
    E12 recovery-time table, never asserted bit-for-bit.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self.last_recovery_ms = 0.0
        #: optional TimeSeriesRegistry sink, attached by the server
        self.timeseries = None
        #: optional RequestCostLedger — WAL appends made while a request
        #: is being handled join that request's cost vector
        self.ledger = None

    def count(self, name: str, n: int = 1) -> None:
        self._counters[name] += n
        if self.timeseries is not None:
            self.timeseries.inc(f"storage.{name}", n)
        if self.ledger is not None and name == "wal_appends":
            self.ledger.charge("wal_appends", n,
                               plane="storage", operation="append")

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        out = dict(self._counters)
        out["last_recovery_ms"] = self.last_recovery_ms
        return out

    def clear(self) -> None:
        self._counters.clear()
        self.last_recovery_ms = 0.0


class ThroughputMeter:
    """Counts events and reports rates over the elapsed virtual time."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._counts: Dict[str, int] = defaultdict(int)
        self._t0 = sim.now

    def count(self, op: str, n: int = 1) -> None:
        self._counts[op] += n

    def total(self, op: str) -> int:
        return self._counts.get(op, 0)

    def rate(self, op: str) -> float:
        """Events per virtual second since construction (or reset)."""
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._counts.get(op, 0) / elapsed

    def reset(self) -> None:
        self._counts.clear()
        self._t0 = self.sim.now
