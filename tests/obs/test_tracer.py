"""Tracer unit behaviour: minting, sampling, activation, error capture."""

import pytest

from repro.obs import SAMPLE_OFF, Tracer
from repro.sim import Simulator


def make_tracer(**kwargs):
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], scope=lambda: "p1", **kwargs)
    return tracer, clock


def test_span_lifecycle_records_virtual_times():
    tracer, clock = make_tracer()
    span = tracer.start_span("op", plane="http", server="s1")
    clock["now"] = 1.5
    tracer.finish(span)
    assert span.start == 0.0
    assert span.end == 1.5
    assert span.duration == 1.5
    assert span.status == "ok"
    assert tracer.store.spans() == [span]


def test_ids_are_unique_and_children_inherit_trace_id():
    tracer, _clock = make_tracer()
    root = tracer.start_span("root")
    token = tracer.activate(root)
    child = tracer.start_span("child")
    tracer.finish(child)
    tracer.deactivate(token)
    tracer.finish(root)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    other = tracer.start_span("other-root")
    assert other.trace_id != root.trace_id


def test_explicit_parent_context_beats_current_span():
    tracer, _clock = make_tracer()
    a = tracer.start_span("a")
    b = tracer.start_span("b")
    token = tracer.activate(b)
    child = tracer.start_span("child", parent=a.context())
    tracer.deactivate(token)
    assert child.trace_id == a.trace_id
    assert child.parent_id == a.span_id


def test_sampling_off_is_a_noop():
    tracer, _clock = make_tracer(sampling=SAMPLE_OFF)
    span = tracer.start_span("op")
    assert span is None
    # every API tolerates the sampled-out None
    tracer.annotate(span, key="value")
    tracer.finish(span)
    assert tracer.activate(span) is None
    assert tracer.current_context() is None
    with tracer.span("ctx") as s:
        assert s is None
    assert len(tracer.store) == 0
    assert not tracer.enabled


def test_one_in_n_sampling_keeps_every_nth_root_and_its_children():
    tracer, _clock = make_tracer(sampling=3)
    kept = []
    for i in range(9):
        root = tracer.start_span(f"root-{i}")
        if root is not None:
            token = tracer.activate(root)
            child = tracer.start_span("child")
            tracer.finish(child)
            tracer.deactivate(token)
            tracer.finish(root)
            kept.append(root.op)
    assert kept == ["root-0", "root-3", "root-6"]
    # sampled roots keep complete trees: one child per kept root
    assert len(tracer.store) == 6


def test_invalid_sampling_rejected():
    with pytest.raises(ValueError):
        Tracer(clock=lambda: 0.0, sampling=0)
    with pytest.raises(ValueError):
        Tracer(clock=lambda: 0.0, sampling="sometimes")


def test_span_context_manager_captures_errors():
    tracer, _clock = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("kaput")
    (span,) = tracer.store.spans()
    assert span.status == "error"
    assert "kaput" in span.error
    # the active stack unwound despite the error
    assert tracer.current_span() is None


def test_per_process_stacks_do_not_leak_context():
    scopes = {"current": "p1"}
    tracer = Tracer(clock=lambda: 0.0, scope=lambda: scopes["current"])
    a = tracer.start_span("a")
    tracer.activate(a)
    scopes["current"] = "p2"
    assert tracer.current_span() is None
    b = tracer.start_span("b")
    assert b.parent_id is None
    assert b.trace_id != a.trace_id


def test_record_span_requires_parent_context():
    tracer, _clock = make_tracer()
    assert tracer.record_span("hop", 0.0, 1.0, parent=None) is None
    root = tracer.start_span("root")
    hop = tracer.record_span("hop", 0.0, 1.0, parent=root.context(),
                             plane="net")
    assert hop.trace_id == root.trace_id
    assert hop.parent_id == root.span_id
    assert hop.end == 1.0


def test_simulator_clock_and_scope_integration():
    sim = Simulator()
    tracer = Tracer(sim)
    seen = {}

    def proc():
        span = tracer.start_span("step")
        yield sim.timeout(2.5)
        tracer.finish(span)
        seen["span"] = span

    sim.spawn(proc())
    sim.run()
    assert seen["span"].start == 0.0
    assert seen["span"].end == 2.5
