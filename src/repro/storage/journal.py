"""The journal façade the server's stateful planes sit on.

One :class:`StateJournal` per server.  Each plane registers three hooks:

- ``snapshot()`` → a JSON-safe document of the plane's full state,
- ``restore(state)`` → rebuild the plane from such a document,
- ``apply(event, data, at)`` → re-apply one journaled mutation.

Mutations are journaled as ``"<plane>.<event>"`` records at the plane's
public-API choke points; during :meth:`recover` the ``recovering`` flag
is up, so those same code paths replay without re-journaling (and
without side-effect notifications the planes choose to suppress).

Snapshot cadence: every ``snapshot_every`` appends the journal
serializes every plane and compacts the WAL, bounding both recovery
replay length and the WAL's footprint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.storage.backends import StorageBackend
from repro.storage.wal import WalRecord, WriteAheadLog

#: default appends between automatic snapshots
DEFAULT_SNAPSHOT_EVERY = 1000


@dataclass
class RecoveryReport:
    """What one :meth:`StateJournal.recover` rebuilt."""

    snapshot_lsn: int = 0
    last_lsn: int = 0
    replayed: int = 0
    #: records replayed per plane name
    planes: Dict[str, int] = field(default_factory=dict)
    #: real (wall) milliseconds recovery took — non-deterministic,
    #: reported for the E12 recovery-time table, never asserted exactly
    wall_ms: float = 0.0


class _Plane:
    __slots__ = ("snapshot", "restore", "apply")

    def __init__(self, snapshot, restore, apply):
        self.snapshot = snapshot
        self.restore = restore
        self.apply = apply


class StateJournal:
    """WAL + snapshots + plane dispatch for one server."""

    def __init__(self, backend: StorageBackend, *,
                 clock: Optional[Callable[[], float]] = None,
                 snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
                 metrics=None) -> None:
        self.wal = WriteAheadLog(backend)
        self.clock = clock or (lambda: 0.0)
        #: 0 disables automatic snapshots (explicit take_snapshot only)
        self.snapshot_every = snapshot_every
        self.metrics = metrics
        #: optional TimeSeriesRegistry sink, attached by the server: WAL
        #: append wall-clock cost lands in a ``storage.wal_append_us``
        #: histogram (real microseconds — telemetry, never asserted)
        self.timeseries = None
        self.recovering = False
        self._planes: Dict[str, _Plane] = {}
        self._since_snapshot = 0

    @property
    def backend(self) -> StorageBackend:
        return self.wal.backend

    def register_plane(self, name: str, *, snapshot, restore, apply) -> None:
        """Wire one stateful plane's snapshot/restore/apply hooks."""
        self._planes[name] = _Plane(snapshot, restore, apply)

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n)

    # -- write path -----------------------------------------------------
    def append(self, kind: str, data: Dict) -> Optional[WalRecord]:
        """Journal one mutation; no-op while recovering (replay must not
        re-journal the history it is reading)."""
        if self.recovering:
            return None
        ts = self.timeseries
        t0 = time.perf_counter() if ts is not None else 0.0
        record = self.wal.append(kind, data, at=self.clock())
        if ts is not None:
            ts.observe("storage.wal_append_us",
                       (time.perf_counter() - t0) * 1e6)
        self._count("wal_appends")
        self._since_snapshot += 1
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            self.take_snapshot()
        return record

    def take_snapshot(self) -> int:
        """Serialize every plane, persist, compact; returns records
        compacted away."""
        state = {name: plane.snapshot()
                 for name, plane in self._planes.items()}
        compacted = self.wal.write_snapshot(state)
        self._count("snapshots")
        self._count("records_compacted", compacted)
        self._since_snapshot = 0
        return compacted

    # -- recovery -------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Rebuild every registered plane: restore the snapshot, then
        replay the WAL tail through the planes' apply hooks."""
        t0 = time.perf_counter()
        report = RecoveryReport(snapshot_lsn=self.wal.snapshot_lsn,
                                last_lsn=self.wal.last_lsn)
        self.recovering = True
        try:
            state = self.wal.snapshot_state()
            if state:
                for name, plane in self._planes.items():
                    if name in state:
                        plane.restore(state[name])
            for record in self.wal.tail():
                plane_name, _, event = record.kind.partition(".")
                plane = self._planes.get(plane_name)
                if plane is None:
                    continue  # a plane this deployment doesn't run
                plane.apply(event, record.data, record.at)
                report.replayed += 1
                report.planes[plane_name] = \
                    report.planes.get(plane_name, 0) + 1
        finally:
            self.recovering = False
        report.wall_ms = (time.perf_counter() - t0) * 1e3
        self._count("recoveries")
        self._count("records_replayed", report.replayed)
        if self.metrics is not None:
            self.metrics.last_recovery_ms = report.wall_ms
        return report


class NullJournal:
    """API-compatible no-op: standalone components journal into the void,
    so the hot path never branches on ``journal is None``."""

    recovering = False
    snapshot_every = 0
    metrics = None

    def register_plane(self, name, *, snapshot, restore, apply) -> None:
        pass

    def append(self, kind, data):
        return None

    def take_snapshot(self) -> int:
        return 0

    def recover(self) -> RecoveryReport:
        return RecoveryReport()


#: the shared no-op instance (stateless, safe to share)
NULL_JOURNAL = NullJournal()
