"""A1 — §6.2: HTTP "necessitates a poll and pull mechanism for fetching the
data from the server instead of a push mechanism" — the poll-interval
trade-off.

Fixed client population, sweep the poll cadence: polling faster lowers
update staleness but multiplies server request load; polling slower starves
freshness.  The shape: a latency/load Pareto frontier — the reason the
paper flags poll-and-pull as "unsuitable for large virtual reality
collaborative environments".
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import make_app_farm, update_watching_client
from repro.core.deployment import build_single_server
from repro.metrics import LatencyRecorder

POLL_INTERVALS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)
N_CLIENTS = 8
DURATION = 20.0


def _poll_run(poll_interval: float) -> dict:
    collab = build_single_server()
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, user="bench", update_period=0.5)
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    server = collab.server_of(0)
    recorder = LatencyRecorder(collab.sim)
    served_before = server.container.requests_served
    for _ in range(N_CLIENTS):
        portal = collab.add_portal(0)
        collab.sim.spawn(update_watching_client(
            portal, app_id, user="bench", duration=DURATION,
            poll_interval=poll_interval, recorder=recorder))
    collab.sim.run(until=collab.sim.now + DURATION + 1.0)
    stats = recorder.stats("update_latency")
    requests = server.container.requests_served - served_before
    return {
        "poll_interval_ms": poll_interval * 1e3,
        "mean_staleness_ms": stats.mean * 1e3,
        "p90_staleness_ms": stats.p90 * 1e3,
        "server_requests": requests,
        "requests_per_s": requests / DURATION,
    }


def test_bench_a1_poll_interval(benchmark):
    rows = run_once(benchmark,
                    lambda: [_poll_run(p) for p in POLL_INTERVALS])
    print_experiment(
        "A1 (ablation): poll-and-pull cadence trade-off",
        "HTTP necessitates a poll and pull mechanism ... instead of a push "
        "mechanism",
        rows,
        ["poll_interval_ms", "mean_staleness_ms", "p90_staleness_ms",
         "server_requests", "requests_per_s"],
        finding=(f"halving staleness costs ~2x requests: "
                 f"{rows[0]['requests_per_s']:.0f} req/s at "
                 f"{rows[0]['poll_interval_ms']:.0f}ms vs "
                 f"{rows[-1]['requests_per_s']:.0f} req/s at "
                 f"{rows[-1]['poll_interval_ms']:.0f}ms"),
    )
    # staleness grows with the poll interval...
    assert rows[-1]["mean_staleness_ms"] > rows[0]["mean_staleness_ms"]
    # ...while server load shrinks
    assert rows[-1]["server_requests"] < rows[0]["server_requests"] / 4
