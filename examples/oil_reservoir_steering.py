"""Interactive oil-reservoir steering — the paper's flagship workload.

A reservoir engineer monitors a waterflood simulation (1-D Buckley-
Leverett), watches the water cut at the producer climb as the displacement
front advances, and *steers*: when water breakthrough approaches, she
throttles the injection rate and injects a tracer slug to tag the flood
front — exactly the monitor/interrogate/steer loop DISCOVER was built for
(the paper's §4: "oil reservoir simulations ... IPARS").

Run:  python examples/oil_reservoir_steering.py
"""

from repro import AppConfig, build_single_server
from repro.apps import OilReservoirApp


def main() -> None:
    collab = build_single_server()
    collab.run_bootstrap()

    reservoir = collab.add_app(
        0, OilReservoirApp, "ipars-waterflood",
        acl={"engineer": "write", "manager": "read"},
        config=AppConfig(steps_per_phase=20, step_time=0.01,
                         interaction_window=0.05),
        cells=150)
    collab.sim.run(until=2.0)
    print(f"reservoir model online: {reservoir.app_id}")

    engineer = collab.add_portal(0)

    def steer_the_flood():
        yield from engineer.login("engineer")
        session = yield from engineer.open(reservoir.app_id)
        yield from session.acquire_lock()

        print("\n  t(virt)  water_cut  front   action")
        throttled = False
        for epoch in range(12):
            yield engineer.sim.timeout(2.0)
            cut = yield from session.read_sensor("water_cut")
            front = yield from session.read_sensor("front_position")
            action = ""
            if cut > 0.5 and not throttled:
                # breakthrough imminent: halve injection, tag the front
                yield from session.set_param("injection_rate", 0.15)
                yield from session.actuate("inject_tracer",
                                           {"amount": 2.0})
                action = "throttled injection + tracer slug"
                throttled = True
            print(f"  {engineer.sim.now:7.1f}  {cut:9.3f}  {front:5d}"
                  f"   {action}")

        oil_left = yield from session.read_sensor("oil_in_place")
        status = yield from session.app_status()
        print(f"\nremaining oil in place: {oil_left:.3f} PV after "
              f"{status['step']} steps")
        history = yield from session.replay_interactions()
        print(f"archived steering history: "
              f"{[r['command'] for r in history]}")
        yield from session.release_lock()

    proc = collab.sim.spawn(steer_the_flood())
    collab.sim.run(until=proc)
    assert reservoir.injection_rate.value == 0.15, "steering took effect"
    print("\nsteering verified: injection_rate is now "
          f"{reservoir.injection_rate.value}")


if __name__ == "__main__":
    main()
