"""AppRouter: ``app_id → AppHandle`` resolution.

The single place where the middleware decides whether an application is
local or remote (§5.2.1's identifier scheme).  Every request plane asks
the router for a handle and drives the handle's generator interface; the
``if is_local_app(...)`` branching that used to be copy-pasted through
``DiscoverServer`` collapses into :meth:`AppRouter.resolve`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.federation.handles import (
    AppHandle,
    LocalAppHandle,
    RemoteAppHandle,
)
from repro.directory import home_server_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer
    from repro.federation.registry import PeerRegistry


class AppRouter:
    """Resolves application ids to location-transparent handles."""

    def __init__(self, server: "DiscoverServer",
                 registry: "PeerRegistry") -> None:
        self.server = server
        self.registry = registry
        self._handles: Dict[str, AppHandle] = {}

    def is_local(self, app_id: str) -> bool:
        """Whether ``app_id`` is homed at this server (§5.2.1)."""
        return home_server_of(app_id) == self.server.name

    def resolve(self, app_id: str) -> AppHandle:
        """The handle for ``app_id`` (cached; stubs resolve lazily)."""
        handle = self._handles.get(app_id)
        if handle is None:
            if self.is_local(app_id):
                handle = LocalAppHandle(self.server, app_id)
            else:
                handle = RemoteAppHandle(self.server, self.registry, app_id)
            self._handles[app_id] = handle
        return handle

    def resolve_for(self, session, app_id: str) -> AppHandle:
        """Resolve with health-aware replica failover.

        Like :meth:`resolve`, but when the application's home server is
        marked unhealthy and the session can see another application of
        the same *name* on a healthy (or local) server, the request is
        routed to that replica instead of burning a timeout against the
        dead home.  With no replica available the original handle is
        returned — callers still get the eager fail-fast error.
        """
        handle = self.resolve(app_id)
        if handle.is_local:
            return handle
        home = home_server_of(app_id)
        if not self.server.health.is_unhealthy_peer(home):
            return handle
        replica = self._find_replica(session, app_id)
        if replica is None:
            return handle
        self.server.health.note_failover()
        return self.resolve(replica)

    def _find_replica(self, session, app_id: str):
        """A same-named application on a healthy server, if any.

        Replicas are applications registered under the same name on
        different servers; the session's visibility (local apps it may
        access + the remote summaries gathered at login) bounds the
        search, so failover never widens what a user can reach.
        """
        wanted = self._app_name(session, app_id)
        if wanted is None:
            return None
        # Prefer a local replica: no WAN hop, and trivially not unhealthy.
        for summary in self.server.visible_apps(session.user):
            if (summary["app_id"] != app_id
                    and summary.get("name") == wanted):
                return summary["app_id"]
        for other_id, summary in sorted(
                getattr(session, "remote_apps", {}).items()):
            if other_id == app_id or summary.get("name") != wanted:
                continue
            other_home = home_server_of(other_id)
            if not self.server.health.is_unhealthy_peer(other_home):
                return other_id
        return None

    def _app_name(self, session, app_id: str):
        remote = getattr(session, "remote_apps", {}).get(app_id)
        if remote is not None:
            return remote.get("name")
        proxy = self.server.local_proxies.get(app_id)
        return proxy.app_name if proxy is not None else None

    def forget(self, app_id: str) -> None:
        """Drop a cached handle (deregistration / ``app_stopped``)."""
        self._handles.pop(app_id, None)
