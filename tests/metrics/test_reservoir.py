"""Reservoir: bounded memory with exact aggregates (the fix for the
unbounded collector growth in PipelineMetrics / FederationMetrics)."""

from repro.metrics import FederationMetrics, PipelineMetrics, Reservoir


def test_exact_aggregates_survive_subsampling():
    res = Reservoir(capacity=64)
    n = 10_000
    for i in range(n):
        res.add(float(i))
    assert res.count == n
    assert len(res) == 64  # memory bounded at capacity
    assert res.mean == sum(range(n)) / n
    assert res.minimum == 0.0
    assert res.maximum == float(n - 1)
    stats = res.stats()
    assert stats.count == n
    assert stats.mean == res.mean
    assert stats.minimum == 0.0 and stats.maximum == float(n - 1)
    # sampled percentiles are estimates, but land in the right region
    assert 0.0 < stats.p50 < n
    assert stats.p50 <= stats.p90 <= stats.p99 <= stats.maximum


def test_reservoir_is_deterministic():
    def fill():
        res = Reservoir(capacity=16)
        for i in range(1000):
            res.add(float(i % 37))
        return res.samples()

    assert fill() == fill()


def test_empty_and_small_reservoirs():
    res = Reservoir()
    assert res.stats().count == 0
    assert res.mean == 0.0
    res.add(2.5)
    stats = res.stats()
    assert stats.count == 1
    assert stats.mean == stats.minimum == stats.maximum == 2.5


def test_pipeline_metrics_latencies_are_bounded():
    metrics = PipelineMetrics()
    for i in range(5000):
        metrics.observe("http", latency=float(i) * 1e-3)
    assert metrics.requests("http") == 5000
    stats = metrics.latency_stats("http")
    assert stats.count == 5000  # exact despite sampling
    assert len(metrics._latencies["http"]) <= 1024
    assert metrics.latency_stats("missing").count == 0


def test_federation_metrics_staleness_is_bounded():
    metrics = FederationMetrics()
    for i in range(5000):
        metrics.observe_staleness("app-1", float(i) * 1e-3)
    stats = metrics.staleness_stats("app-1")
    assert stats.count == 5000
    assert len(metrics._staleness["app-1"]) <= 1024
    assert metrics.staleness_stats("other").count == 0
