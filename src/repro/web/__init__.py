"""HTTP + servlet-container tier.

DISCOVER's interaction/collaboration server "builds on a commodity web
server, and extends its functionality using Java servlets" (§4.1); clients
connect "using standard HTTP communication using a series of HTTP GET and
POST requests", which "necessitates a poll and pull mechanism for fetching
the data from the server" (§6.2).

This package rebuilds that tier for the simulated network:

- :class:`HttpRequest` / :class:`HttpResponse` — the request/response model
  with cookies and status codes.
- :class:`HttpSession` / :class:`SessionManager` — server-side sessions.
- :class:`Servlet` / :class:`ServletContainer` — path-routed handlers
  hosted on a simulated host; every request charges the host CPU the HTTP
  service cost (the paper's "wide deployment over performance" trade-off).
- :class:`HttpClient` — the browser stand-in: issues requests, keeps its
  session cookie, and polls.
"""

from repro.web.client import HttpClient, HttpError
from repro.web.container import ServletContainer
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import Servlet
from repro.web.session import HttpSession, SessionManager

__all__ = [
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpSession",
    "Servlet",
    "ServletContainer",
    "SessionManager",
]
