"""Generator-based simulation processes.

A process wraps a generator.  Each value the generator yields must be a
:class:`~repro.sim.events.SimEvent`; the process sleeps until that event
fires, then resumes with the event's value (``yield`` evaluates to it).  If
the event failed, its exception is thrown into the generator instead.

A :class:`Process` is itself an event that fires when the generator
terminates, so processes can be joined (``yield other_process``) and composed
with :class:`AnyOf` / :class:`AllOf`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

_ids = itertools.count(1)


class Process(SimEvent):
    """A running generator, resumable by the kernel.

    The process-event fires with the generator's return value when it ends
    normally, and fails with the exception if the generator raises.
    """

    __slots__ = ("generator", "name", "pid", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.pid = next(_ids)
        self.name = name or getattr(generator, "__name__", f"process-{self.pid}")
        self._waiting_on: Optional[SimEvent] = None
        # Kick off at the current instant (urgent so spawn order is preserved
        # relative to other same-time events).
        boot = SimEvent(sim)
        boot.callbacks.append(self._resume)
        boot._ok = True
        boot._value = None
        sim._bucket_urgent.append(boot)

    # -- public ------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process that
        is not currently waiting (e.g. it was just spawned at the same
        instant) delivers the interrupt when it next yields.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever we were waiting on, then schedule delivery.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        hit = SimEvent(self.sim)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True
        hit.callbacks.append(self._resume)
        self.sim._push_event(hit, priority=0)

    # -- kernel ----------------------------------------------------------
    def _resume(self, event: SimEvent) -> None:
        self._waiting_on = None
        prev, self.sim._active_process = self.sim._active_process, self
        try:
            while True:
                try:
                    if event.ok:
                        target = self.generator.send(event.value)
                    else:
                        event.defuse()
                        target = self.generator.throw(event.value)
                except StopIteration as stop:
                    if not self.triggered:
                        self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    if not self.triggered:
                        self.fail(exc)
                    return

                if not isinstance(target, SimEvent):
                    err = SimulationError(
                        f"process {self.name!r} yielded {target!r}, "
                        f"which is not a SimEvent")
                    event = SimEvent(self.sim)
                    event._ok = False
                    event._value = err
                    event._defused = True
                    continue
                if target.sim is not self.sim:
                    raise SimulationError(
                        "yielded an event belonging to a different simulator")
                if target.processed:
                    # Already over: loop around immediately with its value.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._waiting_on = target
                return
        finally:
            self.sim._active_process = prev

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "dead" if self.triggered else "alive"
        return f"<Process {self.name!r} pid={self.pid} {state}>"
