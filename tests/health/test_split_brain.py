"""Regression: one liveness model across federation subsystems.

Before the health plane, ``PeerRegistry`` (liveness pings, relays) and
``SubscriptionManager`` (poll-fallback rounds) each tracked peer failures
privately, so one subsystem could be routing away from a peer the other
still trusted — a split-brain inside a single server.  Both now feed
``HealthModel`` through the monitor, so a peer's status is one fact.
"""

import pytest

from repro.core.deployment import build_collaboratory
from repro.health import STATUS_HEALTHY
from repro.orb import CommFailure, RemoteException


@pytest.fixture()
def pair():
    c = build_collaboratory(2, apps_hosts_per_domain=1,
                            client_hosts_per_domain=1)
    c.run_bootstrap()
    yield c
    c.stop()


def test_registry_failures_visible_to_poll_routing(pair):
    a, b = pair.server_of(0), pair.server_of(1)
    # the relay/ping path records CommFailures with the registry...
    for _ in range(3):
        a.registry._note_peer_exc(b.name, CommFailure("link down"))
    # ...and BOTH consumers see the same verdict: the registry's own
    # routing gate and the health monitor the poll loop consults.
    assert a.registry.peer_unhealthy(b.name)
    assert a.health.is_unhealthy_peer(b.name)


def test_poll_failures_visible_to_registry_routing(pair):
    a, b = pair.server_of(0), pair.server_of(1)
    # the poll loop reports through the same _note_peer_exc hook
    for _ in range(3):
        a.registry._note_peer_exc(b.name, CommFailure("poll timeout"))
    assert a.registry.peer_unhealthy(b.name)
    # recovery via ANY subsystem (here: a poll success) restores both
    a.health.note_peer_success(b.name)
    a.health.note_peer_success(b.name)
    assert not a.registry.peer_unhealthy(b.name)
    assert not a.health.is_unhealthy_peer(b.name)
    assert a.health.peer_status(b.name) == STATUS_HEALTHY


def test_remote_exceptions_are_proof_of_liveness(pair):
    """An application-level error from a peer is an *answer*: it must not
    count toward marking the peer dead (the false-positive that used to
    flip routing away from healthy peers)."""
    a, b = pair.server_of(0), pair.server_of(1)
    a.health.note_peer_success(b.name)
    for _ in range(10):
        a.registry._note_peer_exc(
            b.name, RemoteException("LockError", "app busy"))
    assert not a.registry.peer_unhealthy(b.name)
    assert a.health.peer_status(b.name) == STATUS_HEALTHY


def test_dead_peer_detected_through_live_traffic(pair):
    """Killing a server makes every subsystem's calls fail; the shared
    model converges without any dedicated prober."""
    a, b = pair.server_of(0), pair.server_of(1)
    a.peer_call_timeout = 0.5
    b.stop()

    def probe():
        for _ in range(4):
            yield from a.registry.check_peer(b.name)

    proc = pair.sim.spawn(probe(), name="probe")
    pair.sim.run(until=proc)
    assert a.health.is_unhealthy_peer(b.name)
    assert a.registry.peer_unhealthy(b.name)
