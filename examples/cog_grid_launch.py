"""The paper's §7 end-game: grid launch + DISCOVER steering, composed.

"For example a client can use Globus services provided by the CORBA CoG
Kit to discover, allocate and stage a scientific simulation, and then use
the DISCOVER web-portal to collaboratively monitor, interact with, and
steer the application."

This example runs that exact scenario: a scientist discovers the grid CoG
service through the trader (the "pool of services" of Figure 3), submits a
reservoir simulation to it (allocation + staging), watches the job until
it registers with its domain's DISCOVER server, then opens it through the
ordinary web portal and steers it — while the monitoring pool service
reports network health.

Run:  python examples/cog_grid_launch.py
"""

from repro import build_collaboratory
from repro.apps import OilReservoirApp
from repro.core.services import (
    CorbaCoGKit,
    MonitoringService,
    deploy_pool_services,
    pool_for_server,
)


def main() -> None:
    collab = build_collaboratory(2, names=["rutgers", "utaustin"],
                                 apps_hosts_per_domain=2,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    services = deploy_pool_services(collab, staging_time=1.5,
                                    heartbeat_period=3.0)
    services["cog"].register_application_type("ipars", OilReservoirApp)
    print(f"pool services online: CoG catalogue = "
          f"{services['cog'].catalogue()}")

    scientist = collab.add_portal(0)
    s0 = collab.server_of(0)
    pool = pool_for_server(s0)

    def grid_session():
        # 1. discover the grid service through the trader
        cog_ref = yield from pool.bind_first(CorbaCoGKit.SERVICE_ID)
        print(f"discovered grid service: {cog_ref.object_key} via trader")

        # 2. allocate + stage the simulation on utaustin's resources
        job = yield from s0.orb.invoke(
            cog_ref, "submit_job", "ipars", "waterflood-42", 1,
            {"scientist": "write"},
            {"steps_per_phase": 20, "step_time": 0.01,
             "interaction_window": 0.05},
            {"cells": 120})
        print(f"job {job['job_id']} staged to {job['host']} "
              f"({job['domain']} domain), state={job['state']}")

        # 3. wait for DISCOVER registration
        app_id = None
        while app_id is None:
            yield collab.sim.timeout(0.5)
            status = yield from s0.orb.invoke(cog_ref, "job_status",
                                              job["job_id"])
            app_id = status["app_id"]
        print(f"simulation registered with DISCOVER as {app_id}")

        # 4. steer it through the web portal, across the WAN
        yield from scientist.login("scientist")
        session = yield from scientist.open(app_id)
        yield from session.acquire_lock()
        yield collab.sim.timeout(5.0)
        cut = yield from session.read_sensor("water_cut")
        yield from session.set_param("mobility_ratio", 5.0)
        print(f"steering across domains: water_cut={cut:.3f}, "
              f"mobility_ratio -> 5.0")

        # 4b. visualize the saturation front through the shared
        # visualization pool service (full field stays off the WAN)
        from repro.core.visualization import VisualizationService
        viz_ref = yield from pool.bind_first(
            VisualizationService.SERVICE_ID)
        profile = yield from session.read_sensor("saturation_profile")
        picture = yield from s0.orb.invoke(viz_ref, "render_ascii",
                                           profile, width=60, height=1)
        print(f"saturation profile ({picture['reduction']:.0f}x reduced):")
        for line in picture["ascii"]:
            print(f"  |{line}|")

        # 5. check network health through the monitoring pool service
        mon_ref = yield from pool.bind_first(MonitoringService.SERVICE_ID)
        status = yield from s0.orb.invoke(mon_ref, "network_status")
        print("network health (via monitoring pool service):")
        for server, entry in sorted(status.items()):
            print(f"  {server}: logins={entry['stats']['logins']} "
                  f"commands={entry['stats']['commands_submitted']}")

        # 6. done: cancel the job through the grid service
        final = yield from s0.orb.invoke(cog_ref, "cancel_job",
                                         job["job_id"])
        return final

    final = collab.sim.run(until=collab.sim.spawn(grid_session()))
    collab.sim.run(until=collab.sim.now + 2.0)
    print(f"job wound down: {final['state']}")
    app = collab.apps[-1]
    assert app.control.parameter("mobility_ratio").value == 5.0
    assert app.state == "stopped"
    print("grid-launch + steer + teardown verified")


if __name__ == "__main__":
    main()
