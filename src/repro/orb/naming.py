"""CORBA naming service (CosNaming, abridged).

DISCOVER binds every application's ``CorbaProxy`` here "using the
application's unique identifier as the name.  This allows the application to
be remotely accessed from any server" (§5.1.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.orb.errors import ObjectNotFound, OrbError
from repro.orb.reference import ObjectRef


class NamingService:
    """Flat name → :class:`ObjectRef` registry, exposed as an ORB servant.

    A real CosNaming has hierarchical contexts; DISCOVER only ever uses a
    flat namespace of globally-unique application ids and server names, so
    that is what we build.  Deployed once per server network on a well-known
    host (or replicated — the middleware only needs *a* reachable instance).
    """

    #: conventional object key for the naming servant
    OBJECT_KEY = "NameService"

    def __init__(self) -> None:
        self._bindings: Dict[str, ObjectRef] = {}

    def bind(self, name: str, ref: ObjectRef) -> bool:
        """Bind ``name``; error if already bound (CosNaming AlreadyBound)."""
        if name in self._bindings:
            raise OrbError(f"name {name!r} already bound")
        self._bindings[name] = ref
        return True

    def rebind(self, name: str, ref: ObjectRef) -> bool:
        """Bind ``name``, replacing any existing binding."""
        self._bindings[name] = ref
        return True

    def resolve(self, name: str) -> ObjectRef:
        """Return the reference bound to ``name``."""
        try:
            return self._bindings[name]
        except KeyError:
            raise ObjectNotFound(f"name {name!r} not bound") from None

    def unbind(self, name: str) -> bool:
        """Remove a binding."""
        if name not in self._bindings:
            raise ObjectNotFound(f"name {name!r} not bound")
        del self._bindings[name]
        return True

    def list_names(self, prefix: str = "") -> List[str]:
        """All bound names, optionally filtered by prefix."""
        return sorted(n for n in self._bindings if n.startswith(prefix))

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings
