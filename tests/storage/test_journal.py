"""Unit tests for the StateJournal facade (plane dispatch + recovery)."""

from repro.metrics import StorageMetrics
from repro.storage import (
    MemoryBackend,
    NULL_JOURNAL,
    StateJournal,
)


class CounterPlane:
    """A minimal journaled plane: one integer, bumped by events."""

    def __init__(self):
        self.value = 0
        self.applied = []

    def bump(self, journal, n=1):
        self.value += n
        journal.append("counter.bump", {"n": n})

    def snapshot(self):
        return {"value": self.value}

    def restore(self, state):
        self.value = state["value"]

    def apply(self, event, data, at):
        assert event == "bump"
        self.value += data["n"]
        self.applied.append((data["n"], at))


def make_journal(backend=None, **kwargs):
    journal = StateJournal(backend or MemoryBackend(), **kwargs)
    plane = CounterPlane()
    journal.register_plane("counter", snapshot=plane.snapshot,
                           restore=plane.restore, apply=plane.apply)
    return journal, plane


def test_recover_replays_the_tail():
    backend = MemoryBackend()
    journal, plane = make_journal(backend)
    for _ in range(3):
        plane.bump(journal)

    journal2, plane2 = make_journal(backend)
    report = journal2.recover()
    assert plane2.value == 3
    assert report.replayed == 3
    assert report.planes == {"counter": 3}


def test_recover_restores_snapshot_then_replays():
    backend = MemoryBackend()
    journal, plane = make_journal(backend)
    for _ in range(4):
        plane.bump(journal)
    journal.take_snapshot()
    plane.bump(journal, n=10)  # the uncovered tail

    journal2, plane2 = make_journal(backend)
    report = journal2.recover()
    assert plane2.value == 14
    # only the tail replayed through apply; the rest came from the snapshot
    assert plane2.applied == [(10, 0.0)]
    assert report.snapshot_lsn == 4
    assert report.replayed == 1


def test_append_is_suppressed_during_recovery():
    backend = MemoryBackend()
    journal, plane = make_journal(backend)
    plane.bump(journal)
    before = backend.wal_len()
    journal2, plane2 = make_journal(backend)
    journal2.recover()  # apply calls plane code paths that journal
    assert backend.wal_len() == before


def test_auto_snapshot_cadence():
    backend = MemoryBackend()
    journal, plane = make_journal(backend, snapshot_every=5)
    for _ in range(12):
        plane.bump(journal)
    # two automatic snapshots at appends 5 and 10; tail holds 11..12
    assert journal.wal.snapshot_lsn == 10
    assert backend.wal_len() == 2


def test_clock_stamps_records():
    now = {"t": 0.0}
    journal, plane = make_journal(clock=lambda: now["t"])
    now["t"] = 3.25
    plane.bump(journal)
    assert journal.wal.tail()[0].at == 3.25


def test_metrics_counters():
    metrics = StorageMetrics()
    backend = MemoryBackend()
    journal, plane = make_journal(backend, metrics=metrics)
    for _ in range(3):
        plane.bump(journal)
    journal.take_snapshot()
    assert metrics.get("wal_appends") == 3
    assert metrics.get("snapshots") == 1
    assert metrics.get("records_compacted") == 3

    journal2, _plane2 = make_journal(backend,
                                     metrics=(metrics2 := StorageMetrics()))
    journal2.recover()
    assert metrics2.get("recoveries") == 1
    assert metrics2.snapshot()["last_recovery_ms"] > 0.0


def test_unknown_plane_records_are_skipped():
    backend = MemoryBackend()
    journal, plane = make_journal(backend)
    plane.bump(journal)
    journal.append("retired_plane.event", {"x": 1})

    journal2, plane2 = make_journal(backend)
    report = journal2.recover()
    assert plane2.value == 1
    assert report.replayed == 1  # the unknown record did not count


def test_null_journal_is_inert():
    NULL_JOURNAL.register_plane("x", snapshot=dict, restore=lambda s: None,
                                apply=lambda e, d, at: None)
    assert NULL_JOURNAL.append("x.y", {}) is None
    assert NULL_JOURNAL.take_snapshot() == 0
    assert NULL_JOURNAL.recover().replayed == 0
