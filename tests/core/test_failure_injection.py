"""Failure injection: dead peers, dead registry, vanished applications.

§4.2: "the availability of these servers is not guaranteed and must be
determined at runtime" — the middleware must degrade, not break.
"""

import pytest

from repro import AppConfig, PortalError, build_collaboratory
from repro.apps import SyntheticApp
from repro.orb import CommFailure, ObjectNotFound


def cfg():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def build_pair(peer_timeout=2.0):
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    for server in collab.servers.values():
        server.peer_call_timeout = peer_timeout
    collab.run_bootstrap()
    return collab


def test_login_survives_dead_peer():
    collab = build_pair()
    local_app = collab.add_app(0, SyntheticApp, "local",
                               acl={"alice": "write"}, config=cfg())
    collab.add_app(1, SyntheticApp, "remote", acl={"alice": "write"},
                   config=cfg())
    collab.sim.run(until=3.0)
    # the remote server dies
    collab.server_of(1).stop()
    portal = collab.add_portal(0)

    def scenario():
        apps = yield from portal.login("alice")
        return [a["name"] for a in apps]

    names = run(collab, scenario())
    # login still succeeds; only the local app is listed
    assert names == ["local"]


def test_remote_command_fails_cleanly_when_peer_dies():
    collab = build_pair()
    app = collab.add_app(1, SyntheticApp, "remote",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        # peer dies mid-session
        collab.server_of(1).stop()
        try:
            yield from session.command("get_param", {"name": "gain"})
        except PortalError as exc:
            return exc.status

    assert run(collab, scenario()) == 500  # surfaced as peer failure


def test_registration_survives_dead_registry():
    collab = build_pair()
    # kill the registry ORB: naming/trader unreachable
    collab.registry_orb.shutdown()
    app = collab.add_app(0, SyntheticApp, "orphaned-registry",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=6.0)
    # the application still registers and serves local clients
    assert app.registered
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        return (yield from session.set_param("gain", 2.0))

    assert run(collab, scenario()) == 2.0


def test_commands_to_stopped_app_conflict():
    collab = build_pair()
    app = collab.add_app(0, SyntheticApp, "shortlived",
                         acl={"alice": "write"},
                         config=AppConfig(steps_per_phase=2, step_time=0.01,
                                          interaction_window=0.02,
                                          total_steps=6))
    collab.sim.run(until=1.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        # wait for the app to finish and deregister
        yield collab.sim.timeout(4.0)
        assert app.state == "stopped"
        try:
            yield from session.command("get_param", {"name": "gain"})
        except PortalError as exc:
            return exc.status

    assert run(collab, scenario()) == 409


def test_client_notified_when_app_stops():
    collab = build_pair()
    app = collab.add_app(0, SyntheticApp, "notifier",
                         acl={"alice": "write"},
                         config=AppConfig(steps_per_phase=2, step_time=0.01,
                                          interaction_window=0.02,
                                          total_steps=400))
    collab.sim.run(until=1.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)
        yield collab.sim.timeout(12.0)
        assert app.state == "stopped"
        while (yield from portal.poll(max_items=128)):
            pass  # drain the whole backlog
        stops = [m for m in portal.notices
                 if getattr(m, "event", "") == "app_stopped"]
        return len(stops)

    assert run(collab, scenario()) == 1


def test_orb_timeout_produces_commfailure_not_hang():
    collab = build_pair(peer_timeout=1.0)
    s0, s1 = collab.server_of(0), collab.server_of(1)
    s1.orb.shutdown()

    def probe():
        try:
            yield from s0.orb.invoke(s0.peers[s1.name], "ping",
                                     timeout=1.0)
        except CommFailure:
            return ("timeout", collab.sim.now)

    outcome, when = run(collab, probe())
    assert outcome == "timeout"
    assert when <= 2.0  # bounded, no hang


def test_update_pushes_to_dead_peer_do_not_break_home_server():
    collab = build_pair()
    app = collab.add_app(0, SyntheticApp, "pusher",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    portal = collab.add_portal(1)  # remote client subscribes via s1

    def subscribe():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)

    run(collab, subscribe())
    # the subscriber's server dies; home keeps pushing (oneway, dropped)
    collab.server_of(1).stop()
    collab.sim.run(until=collab.sim.now + 3.0)
    # home server still healthy: local clients unaffected
    local = collab.add_portal(0)

    def local_check():
        yield from local.login("alice")
        session = yield from local.open(app.app_id)
        yield from session.acquire_lock()
        return (yield from session.get_param("gain"))

    assert run(collab, local_check()) == 1.0
