"""The two CORBA interface levels of the middleware substrate (§5.1).

- :class:`DiscoverCorbaServerServant` — level one, one per server: "the
  server's gateway for all other DISCOVER servers" — authenticate, list
  active services/users, obtain ``CorbaProxy`` references, and receive
  pushed updates/responses for locally connected clients.
- :class:`CorbaProxyServant` — level two, one per active application: "an
  application's gateway for all other servers" — interface/status queries,
  command delivery, steering-lock relay, and update subscriptions.

Both are plain ORB servants; generator methods run in virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.orb import ObjectNotFound, ObjectRef
from repro.wire import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer


class DiscoverCorbaServerServant:
    """Level-one interface: the server's gateway to its peers."""

    def __init__(self, server: "DiscoverServer") -> None:
        self.server = server

    # -- §3: "authenticate with the server and query it for active
    # services, applications and users" -------------------------------------
    def ping(self) -> str:
        """Liveness probe; returns the server's name."""
        return self.server.name

    def authenticate(self, user: str) -> bool:
        """Level-one authentication of a remote user."""
        return self.server.security.authenticate_user(user)

    def authenticate_and_list(self, user: str) -> List[dict]:
        """Authenticate ``user`` and return the applications here they can
        access — the login fan-out of §5.2.2 ("authenticate the client with
        each server in the network, and in return gets the list of active
        applications ... to which the user has some access privileges")."""
        yield self.server.sim.timeout(self.server.costs.auth_check_cost)
        if not self.server.security.authenticate_user(user):
            return []
        return self.server.visible_apps(user)

    def get_active_applications(self) -> List[dict]:
        """Summaries of every active local application."""
        return [p.summary() for p in self.server.local_proxies.values()
                if p.active]

    def get_users(self) -> List[str]:
        """Users with live client sessions on this server."""
        return sorted({s.user for s in
                       self.server.collab._sessions.values()})

    def get_corba_proxy(self, app_id: str) -> ObjectRef:
        """Reference to the CorbaProxy of a local application."""
        ref = self.server.corba_proxy_refs.get(app_id)
        if ref is None:
            raise ObjectNotFound(f"no application {app_id!r} at "
                                 f"{self.server.name}")
        return ref

    # -- push targets (invoked oneway by peer servers) ---------------------
    def deliver_to_client(self, client_id: str, msg: Message) -> bool:
        """A peer pushes a response/notification for a client homed here."""
        return self.server.collab.push_to_client(client_id, msg)

    def deliver_update(self, app_id: str, msg: Message) -> int:
        """A peer pushes an application update for local subscribers.

        §5.2.3: "instead of sending individual collaboration messages to
        all the clients connected through a remote server, only one message
        is sent to that remote server, which then updates its locally
        connected clients."  Routed through the server so the federation
        layer sees ``app_stopped`` notices (cache invalidation) and can
        record per-app staleness.
        """
        return self.server.on_peer_update(app_id, msg)

    def deliver_group_message(self, app_id: str, group: str,
                              msg: Message, exclude: str = "") -> int:
        """A peer pushes a chat/whiteboard/shared-view group message."""
        return self.server.collab.broadcast_group(
            app_id, group, msg, exclude=exclude or None)

    def exchange_health(self, server_name: str, view: dict) -> dict:
        """Gossip: merge a peer's health view and answer with ours."""
        return self.server.health.exchange(server_name, view)


class CorbaProxyServant:
    """Level-two interface: one application's gateway to remote servers."""

    def __init__(self, server: "DiscoverServer", app_id: str) -> None:
        self.server = server
        self.app_id = app_id

    def _proxy(self):
        proxy = self.server.local_proxies.get(self.app_id)
        if proxy is None:
            raise ObjectNotFound(f"application {self.app_id!r} gone")
        return proxy

    # -- queries ----------------------------------------------------------
    def get_interface(self, user: str) -> dict:
        """Second-level authentication + the customized steering interface
        (§5.2.2)."""
        privilege = self.server.security.app_privilege(user, self.app_id)
        if privilege is None:
            from repro.core.security import SecurityError
            raise SecurityError(
                f"user {user!r} has no access to {self.app_id!r}")
        proxy = self._proxy()
        return {
            "app_id": self.app_id,
            "name": proxy.app_name,
            "privilege": privilege,
            "interface": proxy.interface,
            "last_update": proxy.last_update,
        }

    def get_status(self) -> dict:
        """Proxy-level status summary."""
        return self._proxy().summary()

    # -- command path --------------------------------------------------------
    def deliver_command(self, user: str, client_id: str, command: str,
                        args: Optional[dict] = None,
                        request_id: Optional[int] = None) -> int:
        """Relay of a remote client's command — authoritative checks here.

        Returns the request id the eventual response will carry.
        """
        return self.server.submit_local_command(
            user, client_id, self.app_id, command, args or {}, request_id)

    # -- locking (§5.2.4: relays reach the host server) ----------------------
    def acquire_lock(self, client_id: str) -> str:
        return self.server.locks.acquire(self.app_id, client_id)

    def release_lock(self, client_id: str) -> Optional[str]:
        return self.server.locks.release(self.app_id, client_id)

    def lock_holder(self) -> Optional[str]:
        return self.server.locks.holder_of(self.app_id)

    def get_updates_since(self, seq: int) -> list:
        """Poll mode (§5.2.3's literal design): updates newer than ``seq``.

        The reproduction defaults to push (one message per remote server per
        update, matching the paper's traffic argument); this operation
        enables the polling alternative, compared in ablation A4.
        """
        return self._proxy().updates_since(seq)

    # -- update subscription ----------------------------------------------------
    def subscribe_server(self, server_name: str) -> bool:
        """A peer asks to receive this application's updates."""
        self._proxy().subscribe_server(server_name)
        self.server.journal.append("proxy.peer_sub", {
            "app_id": self.app_id, "server": server_name})
        return True

    def unsubscribe_server(self, server_name: str) -> bool:
        self._proxy().unsubscribe_server(server_name)
        self.server.journal.append("proxy.peer_unsub", {
            "app_id": self.app_id, "server": server_name})
        return True

    # -- group messaging across servers ---------------------------------------
    def publish_group_message(self, group: str, msg: Message,
                              exclude: str = "") -> int:
        """Fan a group message out from the application's home server."""
        return self.server.publish_local_group(
            self.app_id, group, msg, exclude=exclude or None)

    # -- archival (§5.2.5: the home server owns the logs) ----------------------
    def replay_interactions(self, user: str, since: float = 0.0,
                            limit: Optional[int] = None):
        """A remote user's readable interaction history (relayed read)."""
        records = self.server.archive.replay_interactions(
            self.app_id, user, since, limit)
        yield from self.server.host.use_cpu(
            self.server.costs.log_read_cost * max(1, len(records)))
        return records

    def replay_app_log(self, user: str, since: float = 0.0,
                       limit: Optional[int] = None):
        """The application's archived history, served to a remote server."""
        records = self.server.archive.replay_app_log(
            self.app_id, user, since, limit)
        yield from self.server.host.use_cpu(
            self.server.costs.log_read_cost * max(1, len(records)))
        return records

    def latecomer_catchup(self, user: str, n: int = 20):
        """Recent interactions for a remote late joiner."""
        records = self.server.archive.latecomer_catchup(self.app_id, user, n)
        yield from self.server.host.use_cpu(
            self.server.costs.log_read_cost * max(1, len(records)))
        return records
