#!/usr/bin/env python
"""Lint: architectural boundaries the refactors carved out must hold.

Eight checks, all AST-based:

1. **Pipeline boundary** — the three dispatch planes
   (``repro.web.container``, ``repro.orb.core``, ``repro.core.daemon``)
   route requests; cross-cutting concerns live in
   :mod:`repro.pipeline.interceptors`.  Importing ``repro.core.security``
   or ``repro.core.policies`` from a dispatch module re-inlines a concern
   the pipeline refactor pulled out.

2. **Federation boundary** — location/routing concerns live in
   :mod:`repro.federation`.  Referencing ``is_local_app`` / ``peer_stub``
   / ``proxy_stub`` anywhere else in ``src/repro`` re-inlines the
   local-vs-remote branching the federation refactor collapsed into
   ``router.resolve(app_id)``.

3. **Obs boundary** — only :mod:`repro.obs` may construct spans or read
   span internals; everything else goes through the ``Tracer`` API (the
   facade ``from repro.obs import ...`` is fine).  Importing an obs
   *submodule* (``repro.obs.span`` etc.) or naming ``Span`` /
   ``TraceContext`` / ``SpanNode`` outside the package couples callers
   to the span representation instead of the tracing API.

4. **Health boundary** — status folding lives in :mod:`repro.health`;
   callers consult the :class:`HealthMonitor` query API
   (``status_of`` / ``is_unhealthy_peer`` / ``note_*``), never the
   hysteresis machinery.  Importing a health *submodule*
   (``repro.health.model`` etc. — the facade ``from repro.health import
   HealthMonitor`` stays legal) or naming ``ComponentHealth`` /
   ``HealthModel`` outside the package re-inlines the status taxonomy.

5. **Directory boundary** — key→shard routing and app-id structure live
   in :mod:`repro.directory`.  Outside the package: no directory
   *submodule* imports (the facade ``from repro.directory import
   home_server_of`` stays legal), no ring/shard internals
   (``HashRing`` / ``shard_of`` / ``replicas_of`` / ...), and no
   ``.split("#")`` — parsing an app id anywhere else re-inlines the
   placement policy ``home_server_of`` made pluggable.

6. **Storage boundary** — WAL/snapshot internals live in
   :mod:`repro.storage`.  Outside the package: no storage *submodule*
   imports (the facade ``from repro.storage import StateJournal`` stays
   legal) and no naming of ``WriteAheadLog`` / ``WalRecord`` — planes
   journal through :class:`StateJournal` and recover through
   ``recover()``, never by reading the log representation.  Separately,
   ``repro.core`` must not ``open()`` files at all — durability is the
   storage backend's business, so direct file I/O from a core plane is a
   WAL bypass.

7. **Time-series boundary** — metric bucketing lives in
   :mod:`repro.obs.timeseries`.  Outside that one module, naming a
   bucket/series internal (``LogHistogram`` / ``TimeSeries``) couples
   emitters to the storage representation — they record through the
   :class:`TimeSeriesRegistry` facade (``inc`` / ``set_gauge`` /
   ``observe``) and read through ``query()``.

8. **Accounting boundary** — cost representation lives in
   :mod:`repro.obs.accounting`.  Outside that one module, naming
   ``CostVector`` / ``SpaceSaving`` couples a caller to the ledger's
   vector/sketch internals — callers charge through the
   :class:`RequestCostLedger` API (``scoped`` / ``charge`` /
   ``account_frame_hop``) and read through ``snapshot()`` /
   ``partition_by()`` / ``top()`` / ``as_dict()``.

Usage: python tools/check_pipeline_boundary.py [repo_root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: dispatch-plane modules, relative to the repo root
DISPATCH_MODULES = (
    "src/repro/web/container.py",
    "src/repro/orb/core.py",
    "src/repro/core/daemon.py",
)

#: modules only the pipeline (and the assembly layer) may import
FORBIDDEN = ("repro.core.security", "repro.core.policies")

#: names only repro.federation may define or touch — any use elsewhere is
#: local-vs-remote routing leaking back out of the federation layer
FEDERATION_ONLY_NAMES = frozenset(
    {"is_local_app", "peer_stub", "proxy_stub"})

#: the one package allowed to use those names, relative to the repo root
FEDERATION_PACKAGE = "src/repro/federation"

#: span internals only repro.obs may name — everyone else talks to the
#: Tracer (start_span / record_span / span()), never to raw spans
OBS_ONLY_NAMES = frozenset({"Span", "TraceContext", "SpanNode"})

#: the observability package, relative to the repo root
OBS_PACKAGE = "src/repro/obs"

#: hysteresis internals only repro.health may name — callers query the
#: HealthMonitor (status_of / is_unhealthy_peer), never fold statuses
HEALTH_ONLY_NAMES = frozenset({"ComponentHealth", "HealthModel"})

#: the health package, relative to the repo root
HEALTH_PACKAGE = "src/repro/health"

#: ring/shard internals only repro.directory may name — callers route
#: through DirectoryClient / DirectoryPlane / home_server_of
DIRECTORY_ONLY_NAMES = frozenset(
    {"HashRing", "DirectoryShardServant", "DIRECTORY_SHARD",
     "StaleRingEpoch", "shard_of", "replicas_of"})

#: the directory package, relative to the repo root
DIRECTORY_PACKAGE = "src/repro/directory"

#: the app-id separator — splitting on it outside repro.directory is
#: placement policy leaking out of the Placement abstraction
APP_ID_SEPARATOR = "#"

#: log-representation internals only repro.storage may name — planes
#: journal through StateJournal.append and rebuild through recover()
STORAGE_ONLY_NAMES = frozenset({"WriteAheadLog", "WalRecord"})

#: the durable-state package, relative to the repo root
STORAGE_PACKAGE = "src/repro/storage"

#: the core package — no direct file I/O allowed there at all
CORE_PACKAGE = "src/repro/core"

#: bucket/series internals only the time-series module may name —
#: emitters record via the TimeSeriesRegistry facade, readers query()
TIMESERIES_ONLY_NAMES = frozenset({"LogHistogram", "TimeSeries"})

#: the one module allowed to use those names, relative to the repo root
TIMESERIES_MODULE = "src/repro/obs/timeseries.py"

#: vector/sketch internals only the accounting module may name — callers
#: charge via the RequestCostLedger API and read via snapshot()/as_dict()
ACCOUNTING_ONLY_NAMES = frozenset({"CostVector", "SpaceSaving"})

#: the one module allowed to use those names, relative to the repo root
ACCOUNTING_MODULE = "src/repro/obs/accounting.py"


def forbidden_imports(path: Path) -> list:
    """(lineno, module) pairs for every forbidden import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module or ""]
        else:
            continue
        for name in names:
            for banned in FORBIDDEN:
                if name == banned or name.startswith(banned + "."):
                    hits.append((node.lineno, name))
    return hits


def federation_leaks(path: Path) -> list:
    """(lineno, name) pairs for federation-only names used in ``path``.

    Matches attribute access (``server.peer_stub``), bare names, and
    function/method definitions — exact names only, so e.g.
    ``remote_proxy_stub`` (the registry's public resolver) stays legal.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = node.name
        else:
            continue
        if name in FEDERATION_ONLY_NAMES:
            hits.append((node.lineno, name))
    return hits


def obs_leaks(path: Path) -> list:
    """(lineno, what) pairs for obs-internal use in ``path``.

    Two patterns leak the span representation out of :mod:`repro.obs`:
    importing an obs *submodule* (``repro.obs.span`` — the facade
    ``from repro.obs import Tracer`` stays legal), and naming a span
    internal (``Span`` / ``TraceContext`` / ``SpanNode``) directly.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.obs."):
                    hits.append((node.lineno,
                                 f"imports {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.obs."):
                hits.append((node.lineno, f"imports from {module}"))
        elif isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name in OBS_ONLY_NAMES:
                hits.append((node.lineno, f"uses {name!r}"))
    return hits


def health_leaks(path: Path) -> list:
    """(lineno, what) pairs for health-internal use in ``path``.

    Mirrors :func:`obs_leaks`: importing a health *submodule*
    (``repro.health.model`` — the facade ``from repro.health import
    HealthMonitor`` stays legal) or naming a hysteresis internal
    (``ComponentHealth`` / ``HealthModel``) couples callers to the
    status-folding machinery instead of the monitor's query API.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.health."):
                    hits.append((node.lineno,
                                 f"imports {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.health."):
                hits.append((node.lineno, f"imports from {module}"))
        elif isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name in HEALTH_ONLY_NAMES:
                hits.append((node.lineno, f"uses {name!r}"))
    return hits


def directory_leaks(path: Path) -> list:
    """(lineno, what) pairs for directory-internal use in ``path``.

    Three patterns leak placement/routing policy out of
    :mod:`repro.directory`: importing a directory *submodule*
    (``repro.directory.ring`` — the facade ``from repro.directory import
    home_server_of`` stays legal), naming a ring/shard internal
    (``HashRing`` / ``shard_of`` / ...), and calling ``.split("#")`` on
    anything — the app-id structure is :class:`PrefixPlacement`'s
    private business.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.directory."):
                    hits.append((node.lineno,
                                 f"imports {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.directory."):
                hits.append((node.lineno, f"imports from {module}"))
        elif isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name in DIRECTORY_ONLY_NAMES:
                hits.append((node.lineno, f"uses {name!r}"))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "split"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == APP_ID_SEPARATOR):
            hits.append((node.lineno, 'calls .split("#")'))
    return hits


def storage_leaks(path: Path) -> list:
    """(lineno, what) pairs for storage-internal use in ``path``.

    Mirrors :func:`obs_leaks`: importing a storage *submodule*
    (``repro.storage.wal`` — the facade ``from repro.storage import
    StateJournal`` stays legal) or naming a log internal
    (``WriteAheadLog`` / ``WalRecord``) couples callers to the log
    representation instead of the journal/recovery API.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.storage."):
                    hits.append((node.lineno,
                                 f"imports {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.storage."):
                hits.append((node.lineno, f"imports from {module}"))
        elif isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name in STORAGE_ONLY_NAMES:
                hits.append((node.lineno, f"uses {name!r}"))
    return hits


def timeseries_leaks(path: Path) -> list:
    """(lineno, what) pairs for time-series internals used in ``path``.

    Naming ``LogHistogram`` / ``TimeSeries`` outside
    ``repro/obs/timeseries.py`` couples a caller to the bucket/tier
    representation; emitters use the :class:`TimeSeriesRegistry` facade
    (exact names only, so ``TimeSeriesRegistry`` itself stays legal
    everywhere).
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name in TIMESERIES_ONLY_NAMES:
                hits.append((node.lineno, f"uses {name!r}"))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in TIMESERIES_ONLY_NAMES:
                    hits.append((node.lineno, f"imports {alias.name}"))
    return hits


def accounting_leaks(path: Path) -> list:
    """(lineno, what) pairs for accounting internals used in ``path``.

    Mirrors :func:`timeseries_leaks`: naming ``CostVector`` /
    ``SpaceSaving`` outside ``repro/obs/accounting.py`` couples a caller
    to the cost-vector/sketch representation; callers use the
    :class:`RequestCostLedger` facade (exact names only, so
    ``RequestCostLedger`` itself stays legal everywhere).
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            if name in ACCOUNTING_ONLY_NAMES:
                hits.append((node.lineno, f"uses {name!r}"))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in ACCOUNTING_ONLY_NAMES:
                    hits.append((node.lineno, f"imports {alias.name}"))
    return hits


def core_file_io(path: Path) -> list:
    """(lineno, what) pairs for direct file I/O in a core module.

    A bare ``open(...)`` call (or ``io.open``) inside ``repro.core`` is a
    WAL bypass — durable bytes must go through a
    :class:`~repro.storage.StorageBackend`.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            hits.append((node.lineno, "calls open()"))
        elif (isinstance(func, ast.Attribute) and func.attr == "open"
                and isinstance(func.value, ast.Name)
                and func.value.id == "io"):
            hits.append((node.lineno, "calls io.open()"))
    return hits


def main(argv) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = []
    for rel in DISPATCH_MODULES:
        path = root / rel
        if not path.exists():
            failures.append(f"{rel}: dispatch module missing")
            continue
        for lineno, name in forbidden_imports(path):
            failures.append(
                f"{rel}:{lineno}: imports {name} — security/policy code "
                f"must flow through repro.pipeline interceptors")
    fed_root = root / FEDERATION_PACKAGE
    obs_root = root / OBS_PACKAGE
    health_root = root / HEALTH_PACKAGE
    directory_root = root / DIRECTORY_PACKAGE
    storage_root = root / STORAGE_PACKAGE
    core_root = root / CORE_PACKAGE
    checked = 0
    obs_checked = 0
    health_checked = 0
    directory_checked = 0
    storage_checked = 0
    core_checked = 0
    timeseries_checked = 0
    accounting_checked = 0
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(root)
        if not (fed_root in path.parents or path.parent == fed_root):
            checked += 1
            for lineno, name in federation_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: uses {name!r} — local-vs-remote "
                    f"routing must flow through repro.federation "
                    f"(router.resolve)")
        if not (obs_root in path.parents or path.parent == obs_root):
            obs_checked += 1
            for lineno, what in obs_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — span internals stay in "
                    f"repro.obs; use the Tracer API via the facade")
        if not (health_root in path.parents or path.parent == health_root):
            health_checked += 1
            for lineno, what in health_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — status folding stays in "
                    f"repro.health; use the HealthMonitor query API")
        if not (directory_root in path.parents
                or path.parent == directory_root):
            directory_checked += 1
            for lineno, what in directory_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — ring/placement internals "
                    f"stay in repro.directory; use DirectoryClient / "
                    f"home_server_of")
        if not (storage_root in path.parents
                or path.parent == storage_root):
            storage_checked += 1
            for lineno, what in storage_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — WAL/snapshot internals "
                    f"stay in repro.storage; journal through "
                    f"StateJournal and recover()")
        if str(rel) != TIMESERIES_MODULE:
            timeseries_checked += 1
            for lineno, what in timeseries_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — bucket/series internals "
                    f"stay in repro.obs.timeseries; emitters use the "
                    f"TimeSeriesRegistry facade")
        if str(rel) != ACCOUNTING_MODULE:
            accounting_checked += 1
            for lineno, what in accounting_leaks(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — cost-vector/sketch "
                    f"internals stay in repro.obs.accounting; callers "
                    f"use the RequestCostLedger facade")
        if core_root in path.parents or path.parent == core_root:
            core_checked += 1
            for lineno, what in core_file_io(path):
                failures.append(
                    f"{rel}:{lineno}: {what} — no direct file I/O in "
                    f"repro.core; durable bytes go through a "
                    f"repro.storage backend")
    if failures:
        print("pipeline boundary violations:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"pipeline boundary OK ({len(DISPATCH_MODULES)} dispatch modules "
          f"clean); federation boundary OK ({checked} modules clean); "
          f"obs boundary OK ({obs_checked} modules clean); "
          f"health boundary OK ({health_checked} modules clean); "
          f"directory boundary OK ({directory_checked} modules clean); "
          f"storage boundary OK ({storage_checked} modules clean, "
          f"{core_checked} core modules I/O-free); "
          f"time-series boundary OK ({timeseries_checked} modules clean); "
          f"accounting boundary OK ({accounting_checked} modules clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
