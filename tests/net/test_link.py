"""Unit tests for Link validation and arithmetic."""

import pytest

from repro.net import Link
from repro.sim import Simulator


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "a", "b", latency=-0.001)
    with pytest.raises(ValueError):
        Link(sim, "a", "b", latency=0.001, bandwidth=0)
    with pytest.raises(ValueError):
        Link(sim, "a", "a", latency=0.001)


def test_link_other_endpoint():
    sim = Simulator()
    link = Link(sim, "a", "b", 0.001)
    assert link.other("a") == "b"
    assert link.other("b") == "a"
    with pytest.raises(ValueError):
        link.other("c")
    assert link.ends == ("a", "b")


def test_transfer_time():
    sim = Simulator()
    link = Link(sim, "a", "b", 0.0, bandwidth=1000.0)
    assert link.transfer_time(500) == pytest.approx(0.5)
    infinite = Link(sim, "a", "b", 0.0)
    assert infinite.transfer_time(10 ** 9) == 0.0


def test_transmit_unknown_endpoint_rejected():
    sim = Simulator()
    link = Link(sim, "a", "b", 0.001)

    def bad():
        yield from link.transmit("c", 100)

    proc = sim.spawn(bad())
    with pytest.raises(KeyError):
        sim.run(until=proc)
