"""Interoperable-object-reference stand-in.

An :class:`ObjectRef` names a servant activated at some ORB: the host and
port the ORB listens on plus the object key inside its adapter.  References
are plain wire-encodable values, so they can be returned from naming/trader
lookups and passed between servers — which is exactly how DISCOVER servers
hand each other ``CorbaProxy`` references (§5.1.1).
"""

from __future__ import annotations

from repro.wire.serialize import register_codec


@register_codec
class ObjectRef:
    """A remote object reference: ``(host, port, object_key)``.

    ``type_id`` is advisory (like a CORBA repository id) and lets receivers
    sanity-check what interface they expect.
    """

    def __init__(self, host: str, port: int, object_key: str,
                 type_id: str = "") -> None:
        self.host = host
        self.port = port
        self.object_key = object_key
        self.type_id = type_id

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ObjectRef)
                and self.host == other.host
                and self.port == other.port
                and self.object_key == other.object_key)

    def __hash__(self) -> int:
        return hash((self.host, self.port, self.object_key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tid = f" [{self.type_id}]" if self.type_id else ""
        return f"<ObjectRef {self.object_key}@{self.host}:{self.port}{tid}>"
