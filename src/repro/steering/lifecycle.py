"""Application lifecycle states."""

REGISTERING = "registering"
COMPUTING = "computing"
INTERACTING = "interacting"
PAUSED = "paused"
STOPPED = "stopped"

ALL_STATES = (REGISTERING, COMPUTING, INTERACTING, PAUSED, STOPPED)
