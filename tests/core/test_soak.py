"""Soak test: a busy multi-domain deployment held to system invariants.

Three domains, several applications, steering and monitoring clients in
every domain, one minute of virtual time.  Afterwards the whole system is
audited: every submitted command received exactly one response or error,
locks ended balanced, no frames hit unbound ports, collaboration buffers
drained, and traffic accounting is self-consistent.
"""

import pytest

from repro import AppConfig, build_collaboratory
from repro.apps import Heat2DApp, SyntheticApp
from repro.client import PortalError

DURATION = 40.0


def soak_config():
    return AppConfig(steps_per_phase=4, step_time=0.02,
                     interaction_window=0.05, command_service_time=0.002)


@pytest.fixture(scope="module")
def soaked():
    collab = build_collaboratory(3, apps_hosts_per_domain=2,
                                 client_hosts_per_domain=2)
    collab.run_bootstrap()
    apps = []
    acl = {"alice": "write", "bob": "write", "carol": "read"}
    for d in range(3):
        apps.append(collab.add_app(d, SyntheticApp, f"syn-{d}", acl=acl,
                                   config=soak_config()))
    apps.append(collab.add_app(0, Heat2DApp, "cfd", n=24, acl=acl,
                               config=soak_config()))
    collab.sim.run(until=3.0)
    assert all(a.registered for a in apps)

    outcomes = {"steered": 0, "denied": 0, "responses": 0, "errors": 0}

    def steerer(domain, user, app, period):
        portal = collab.add_portal(domain)
        yield from portal.login(user)
        session = yield from portal.open(app.app_id)
        deadline = collab.sim.now + DURATION
        while collab.sim.now < deadline:
            got = yield from session.acquire_lock()
            if got == "granted":
                knob = ("gain" if isinstance(app, SyntheticApp)
                        else "diffusivity")
                value = 2.0 if knob == "gain" else 0.1
                try:
                    yield from session.set_param(knob, value)
                    outcomes["steered"] += 1
                    outcomes["responses"] += 1
                except PortalError:
                    outcomes["errors"] += 1
                yield from session.release_lock()
            else:
                outcomes["denied"] += 1
                yield from session.release_lock()  # withdraw from queue
            yield collab.sim.timeout(period)

    def monitor(domain, app, period):
        portal = collab.add_portal(domain)
        yield from portal.login("carol")
        yield from portal.open(app.app_id)
        deadline = collab.sim.now + DURATION
        while collab.sim.now < deadline:
            yield from portal.poll(max_items=64)
            yield collab.sim.timeout(period)
        return portal

    monitors = []
    for d in range(3):
        # steerers contend across domains on the same app (apps[0])
        collab.sim.spawn(steerer(d, "alice" if d % 2 == 0 else "bob",
                                 apps[0], 0.8 + 0.1 * d))
        collab.sim.spawn(steerer(d, "bob", apps[d], 1.1 + 0.1 * d))
        monitors.append(collab.sim.spawn(monitor(d, apps[d % 3], 0.5)))
    collab.sim.run(until=collab.sim.now + DURATION + 5.0)
    return collab, apps, outcomes, monitors


def test_soak_work_happened(soaked):
    collab, apps, outcomes, monitors = soaked
    assert outcomes["steered"] > 20
    assert outcomes["errors"] == 0


def test_soak_locks_end_balanced(soaked):
    collab, apps, outcomes, monitors = soaked
    for server in collab.servers.values():
        for app in apps:
            holder = server.locks.holder_of(app.app_id)
            queue = server.locks.queue_length(app.app_id)
            # steerers always release; nothing leaks
            assert queue == 0
            assert holder is None


def test_soak_no_frames_dropped(soaked):
    collab, apps, outcomes, monitors = soaked
    # frames to unbound ports would indicate routing/lifecycle bugs
    assert not collab.net.dropped
    assert collab.net.dropped_count == 0


def test_soak_no_client_buffer_overflow(soaked):
    collab, apps, outcomes, monitors = soaked
    for server in collab.servers.values():
        assert server.collab.dropped == 0


def test_soak_every_app_kept_updating(soaked):
    collab, apps, outcomes, monitors = soaked
    for app in apps:
        home = collab.servers[app.server_host]
        proxy = home.local_proxies[app.app_id]
        assert proxy.updates_received > DURATION / 0.5 * 0.5


def test_soak_monitors_saw_updates(soaked):
    collab, apps, outcomes, monitors = soaked
    for proc in monitors:
        portal = proc.value
        assert len(portal.updates) > 10


def test_soak_traffic_accounting_consistent(soaked):
    collab, apps, outcomes, monitors = soaked
    trace = collab.net.trace
    snap = trace.snapshot()
    assert snap["total_messages"] == trace.lan_messages + trace.wan_messages
    assert snap["total_bytes"] == trace.lan_bytes + trace.wan_bytes
    by_channel_total = sum(m for (m, b) in snap["by_channel"].values())
    assert by_channel_total == snap["total_messages"]


def test_soak_usage_ledger_populated(soaked):
    collab, apps, outcomes, monitors = soaked
    # peer-to-peer traffic was accounted per §6.3
    total_peer_requests = sum(
        server.policies.ledger.usage(p).requests
        for server in collab.servers.values()
        for p in server.policies.ledger.principals())
    assert total_peer_requests > 0
