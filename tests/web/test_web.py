"""Tests for the HTTP tier: requests, sessions, servlets, container, client."""

import pytest

from repro.net import Network
from repro.sim import Simulator
from repro.web import (
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    Servlet,
    ServletContainer,
    SessionManager,
)
from repro.web.http import GET, NOT_FOUND, OK, POST
from tests.conftest import drive


class EchoServlet(Servlet):
    def do_get(self, request, session):
        return {"echo": request.params}

    def do_post(self, request, session):
        return {"got": request.body}


class CounterServlet(Servlet):
    """Session-stateful servlet."""

    def do_get(self, request, session):
        n = session.get("count", 0) + 1
        session.set("count", n)
        return {"count": n}


class SlowServlet(Servlet):
    """Generator handler taking virtual time."""

    def do_get(self, request, session):
        yield self.container.sim.timeout(0.25)
        return {"slow": True}


class CrashServlet(Servlet):
    def do_get(self, request, session):
        raise RuntimeError("servlet exploded")


def make_site(latency=0.001, cpus=1):
    sim = Simulator()
    net = Network(sim)
    net.add_host("www", cpu_capacity=cpus)
    net.add_host("browser")
    net.add_link("www", "browser", latency)
    container = ServletContainer(net.hosts["www"])
    client = HttpClient(net.hosts["browser"], "www")
    return sim, net, container, client


# ------------------------------- model -----------------------------------

def test_http_request_validation():
    with pytest.raises(ValueError):
        HttpRequest("DELETE", "/x")


def test_http_response_ok_and_reason():
    assert HttpResponse(1, OK).ok
    assert not HttpResponse(1, NOT_FOUND).ok
    assert HttpResponse(1, NOT_FOUND).reason == "Not Found"
    assert HttpResponse(1, 599).reason == "599"


def test_request_ids_increase():
    a = HttpRequest(GET, "/")
    b = HttpRequest(GET, "/")
    assert b.request_id > a.request_id


# ------------------------------ sessions ----------------------------------

def test_session_create_resolve():
    mgr = SessionManager()
    s = mgr.create(now=0.0)
    assert mgr.resolve(s.session_id, now=10.0) is s
    assert s.last_access == 10.0


def test_session_unknown_cookie():
    mgr = SessionManager()
    assert mgr.resolve("nope", now=0.0) is None


def test_session_timeout():
    mgr = SessionManager(timeout=100.0)
    s = mgr.create(now=0.0)
    assert mgr.resolve(s.session_id, now=101.0) is None
    assert len(mgr) == 0


def test_session_invalidate():
    mgr = SessionManager()
    s = mgr.create(now=0.0)
    mgr.invalidate(s.session_id)
    assert mgr.resolve(s.session_id, now=1.0) is None


def test_expire_stale_bulk():
    mgr = SessionManager(timeout=10.0)
    s1 = mgr.create(now=0.0)
    mgr.create(now=5.0)
    assert mgr.expire_stale(now=12.0) == 1
    assert len(mgr) == 1


def test_session_attributes():
    mgr = SessionManager()
    s = mgr.create(0.0)
    s.set("user", "alice")
    assert s.get("user") == "alice"
    assert "user" in s
    assert s.get("missing", "dflt") == "dflt"


# ------------------------------ container ---------------------------------

def test_get_roundtrip():
    sim, net, container, client = make_site()
    container.mount("/echo", EchoServlet())

    def go():
        return (yield from client.get("/echo", {"q": "hello"}))

    assert drive(sim, go()) == {"echo": {"q": "hello"}}


def test_post_roundtrip():
    sim, net, container, client = make_site()
    container.mount("/echo", EchoServlet())

    def go():
        return (yield from client.post("/echo", body=[1, 2, 3]))

    assert drive(sim, go()) == {"got": [1, 2, 3]}


def test_unknown_path_is_404():
    sim, net, container, client = make_site()

    def go():
        try:
            yield from client.get("/nowhere")
        except HttpError as exc:
            return exc.status

    assert drive(sim, go()) == 404


def test_servlet_exception_is_500():
    sim, net, container, client = make_site()
    container.mount("/crash", CrashServlet())

    def go():
        try:
            yield from client.get("/crash")
        except HttpError as exc:
            return (exc.status, exc.body["error"])

    status, error = drive(sim, go())
    assert status == 500
    assert "servlet exploded" in error


def test_session_cookie_persists_across_requests():
    sim, net, container, client = make_site()
    container.mount("/count", CounterServlet())

    def go():
        first = yield from client.get("/count")
        second = yield from client.get("/count")
        third = yield from client.get("/count")
        return (first, second, third, len(container.sessions))

    f, s, t, n_sessions = drive(sim, go())
    assert (f, s, t) == ({"count": 1}, {"count": 2}, {"count": 3})
    assert n_sessions == 1  # one session, reused


def test_distinct_clients_get_distinct_sessions():
    sim, net, container, client = make_site()
    client2 = HttpClient(net.hosts["browser"], "www")
    container.mount("/count", CounterServlet())

    def go(c):
        return (yield from c.get("/count"))

    r1 = drive(sim, go(client))
    r2 = drive(sim, go(client2))
    assert r1 == {"count": 1}
    assert r2 == {"count": 1}
    assert len(container.sessions) == 2


def test_generator_servlet_takes_time():
    sim, net, container, client = make_site()
    container.mount("/slow", SlowServlet())

    def go():
        body = yield from client.get("/slow")
        return (body, sim.now)

    body, t = drive(sim, go())
    assert body == {"slow": True}
    assert t > 0.25


def test_longest_prefix_routing():
    sim, net, container, client = make_site()

    class A(Servlet):
        def do_get(self, request, session):
            return "A"

    class AB(Servlet):
        def do_get(self, request, session):
            return "AB"

    container.mount("/a", A())
    container.mount("/a/b", AB())

    def go():
        r1 = yield from client.get("/a/x")
        r2 = yield from client.get("/a/b/x")
        r3 = yield from client.get("/a/b")
        return (r1, r2, r3)

    assert drive(sim, go()) == ("A", "AB", "AB")


def test_mount_validation():
    sim, net, container, client = make_site()
    with pytest.raises(ValueError):
        container.mount("noslash", EchoServlet())
    container.mount("/x", EchoServlet())
    with pytest.raises(ValueError):
        container.mount("/x", EchoServlet())


def test_client_timeout_after_container_stop():
    sim, net, container, client = make_site()
    container.stop()

    def go():
        try:
            yield from client.get("/echo", timeout=2.0)
        except HttpError as exc:
            return (exc.status, sim.now)

    status, t = drive(sim, go())
    assert status == 0
    assert t >= 2.0


def test_requests_queue_on_single_cpu():
    """Concurrent requests serialize on the host CPU — the saturation
    mechanism behind the paper's ~20-client limit."""
    sim, net, container, client = make_site(latency=0.0)
    container.mount("/echo", EchoServlet())
    clients = [HttpClient(net.hosts["browser"], "www") for _ in range(4)]
    finish = []

    def go(c):
        yield from c.get("/echo")
        finish.append(sim.now)

    for c in clients:
        sim.spawn(go(c))
    sim.run()
    # Completions should be spread out, roughly one service time apart.
    gaps = [b - a for a, b in zip(finish, finish[1:])]
    assert all(g > 0 for g in gaps)
    assert finish[-1] >= 4 * container.costs.http_request_cost


def test_requests_served_counter():
    sim, net, container, client = make_site()
    container.mount("/echo", EchoServlet())

    def go():
        yield from client.get("/echo")
        yield from client.get("/echo")

    drive(sim, go())
    assert container.requests_served == 2


def test_amortized_sweep_expires_idle_sessions():
    sim, net, container, client = make_site()
    container.sessions.timeout = 10.0
    container.mount("/echo", EchoServlet())
    fresh = HttpClient(net.hosts["browser"], "www")

    def first_visit():
        yield from client.get("/echo")

    drive(sim, first_visit())
    assert len(container.sessions) == 1

    def later_visit():
        # idle far beyond the timeout; a new client's request triggers
        # the amortized sweep, reaping the stale session
        yield sim.timeout(30.0)
        yield from fresh.get("/echo")

    drive(sim, later_visit())
    assert container.sessions_expired == 1
    assert len(container.sessions) == 1  # only the fresh client remains


def test_stale_cookie_gets_new_session():
    sim, net, container, client = make_site()
    container.sessions.timeout = 5.0
    container.mount("/count", CounterServlet())

    def go():
        first = yield from client.get("/count")
        yield sim.timeout(20.0)  # session expires server-side
        second = yield from client.get("/count")
        return (first, second)

    first, second = drive(sim, go())
    assert first == {"count": 1}
    assert second == {"count": 1}  # state was lost with the session
