"""TracingInterceptor: the pipeline's seam into :mod:`repro.obs`.

Joins the standard chain on all three planes (metrics → envelope →
**tracing** → security → admission), so it is entered after the error
envelope — its ``on_error`` still sees the raw exception of a rejected
request before the envelope absorbs it into a reply shape.

Per request it opens one span named after the plane's operation (servlet
path, ORB operation, channel message type), parented on the propagated
context the dispatcher stashed in ``ctx.attrs["trace_parent"]`` (frame
metadata / GIOP service context), and activates it as the handling
process's current span so everything the handler does — nested peer
calls, frames it sends — joins the same trace.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer
from repro.pipeline.core import Interceptor, RequestContext

#: ctx.attrs key dispatchers use to hand the propagated parent context in
TRACE_PARENT_KEY = "trace_parent"
#: ctx.attrs key carrying this request's own context (for reply stamping)
TRACE_CTX_KEY = "trace_ctx"
_SPAN_KEY = "_trace_span"
_TOKEN_KEY = "_trace_token"


class TracingInterceptor(Interceptor):
    """One span per dispatched request, on every plane."""

    name = "tracing"

    def __init__(self, tracer: Tracer, server: str = "") -> None:
        self.tracer = tracer
        self.server = server

    def before(self, ctx: RequestContext) -> None:
        parent = ctx.attrs.pop(TRACE_PARENT_KEY, None)
        span = self.tracer.start_span(
            ctx.operation or ctx.plane, plane=ctx.plane, server=self.server,
            parent=parent,
            attrs={"request_id": ctx.request_id,
                   "principal": ctx.principal,
                   "bytes": ctx.size})
        if span is None:
            return
        ctx.attrs[_SPAN_KEY] = span
        ctx.attrs[_TOKEN_KEY] = self.tracer.activate(span)
        ctx.attrs[TRACE_CTX_KEY] = span.context()

    def _close(self, ctx: RequestContext, error) -> None:
        span = ctx.attrs.pop(_SPAN_KEY, None)
        token = ctx.attrs.pop(_TOKEN_KEY, None)
        self.tracer.deactivate(token)
        self.tracer.finish(span, error=error)

    def after(self, ctx: RequestContext) -> None:
        # Sitting inside the envelope, this interceptor unwinds before the
        # envelope absorbs anything: a failed request reaches on_error with
        # the raw exception, so a clean ``after`` always means success.
        self._close(ctx, None)

    def on_error(self, ctx: RequestContext) -> None:
        self._close(ctx, ctx.error)
