"""The server's servlets — the paper's core service handlers (§4.1).

- ``/master`` — the Master (accepter/controller) servlet: "the client's
  gateway to the server"; login/logout, application listing, selection.
- ``/command`` — the Command servlet: steering commands and lock protocol.
- ``/collab`` — the Collaboration servlet: poll (the HTTP pull of §6.2),
  groups, chat, whiteboard, shared views, collaboration mode.
- ``/archive`` — the session-archival handler: replay and latecomer
  catch-up (§5.2.5).

Middleware exceptions raised here propagate to the container's request
pipeline, where the shared
:class:`~repro.pipeline.interceptors.ErrorEnvelopeInterceptor` maps them
to uniform HTTP error payloads: SecurityError → 403, LockError → 409,
unknown ids (CollaborationError) → 404, peer failures (OrbError) → 500,
missing/bad parameters (KeyError/ValueError) → 400.  The one mapping kept
local is login: a failed *authentication* is 401, where every other
SecurityError is an *authorization* failure (403).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.collaboration import DEFAULT_GROUP
from repro.core.security import SecurityError
from repro.web.http import BAD_REQUEST, UNAUTHORIZED
from repro.web.servlet import Servlet
from repro.wire import ChatMessage, UpdateMessage, WhiteboardMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DiscoverServer


def mount_all(server: "DiscoverServer") -> None:
    """Mount the full DISCOVER servlet suite on the server's container."""
    server.container.mount("/master", MasterServlet(server))
    server.container.mount("/command", CommandServlet(server))
    server.container.mount("/collab", CollaborationServlet(server))
    server.container.mount("/archive", ArchiveServlet(server))
    server.container.mount("/status", StatusServlet(server))


class DiscoverServlet(Servlet):
    """Base: holds the server; error mapping lives in the pipeline."""

    def __init__(self, server: "DiscoverServer") -> None:
        self.server = server


class MasterServlet(DiscoverServlet):
    """Login, logout, application listing, and selection."""

    def do_post(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "login":
            return self._login(p, session)
        if action == "logout":
            self.server.client_logout(p["client_id"])
            session.attributes.pop("client_id", None)
            return {"ok": True}
        if action == "select":
            return self._select(p)
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})

    def _login(self, p, http_session):
        try:
            client_id = yield from self.server.client_login(
                p["user"], p.get("password", ""))
        except SecurityError as exc:
            # Authentication (not authorization) failure — 401, where the
            # pipeline envelope's generic SecurityError mapping is 403.
            return (UNAUTHORIZED, {"error": str(exc)})
        http_session.set("client_id", client_id)
        return {"client_id": client_id,
                "server": self.server.name,
                "apps": self.server.list_applications(client_id)}

    def _select(self, p):
        info = yield from self.server.select_app(p["client_id"],
                                                 p["app_id"])
        return info

    def do_get(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "apps":
            return {"apps": self.server.list_applications(p["client_id"])}
        if action == "users":
            return {"users": self.server.corba_servant.get_users()}
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})


class CommandServlet(DiscoverServlet):
    """Steering commands and the lock protocol."""

    def do_post(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "submit":
            request_id = yield from self.server.submit_command(
                p["client_id"], p["app_id"], p["command"],
                p.get("args") or {})
            return {"request_id": request_id}
        if action == "lock":
            return (yield from self._lock(p))
        if action == "schedule":
            schedule_id = self.server.schedule_interaction(
                p["client_id"], p["app_id"], p["command"],
                p.get("args") or {}, float(p.get("period", 1.0)),
                int(p["count"]) if "count" in p else None)
            return {"schedule_id": schedule_id}
        if action == "unschedule":
            stopped = self.server.cancel_schedule(p["client_id"],
                                                  p["schedule_id"])
            return {"stopped": stopped}
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})

    def _lock(self, p):
        op = p.get("action", "acquire")
        if op == "acquire":
            result = yield from self.server.acquire_lock(p["client_id"],
                                                         p["app_id"])
            return {"result": result}
        if op == "release":
            nxt = yield from self.server.release_lock(p["client_id"],
                                                      p["app_id"])
            return {"result": "released", "next_holder": nxt}
        return (BAD_REQUEST, {"error": f"unknown lock action {op!r}"})

    def do_get(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "lock":
            holder = yield from self.server.lock_holder(p["app_id"])
            return {"holder": holder}
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})


class CollaborationServlet(DiscoverServlet):
    """Poll-and-pull delivery plus group/chat/whiteboard operations."""

    def do_get(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "poll":
            msgs = self.server.poll_client(p["client_id"],
                                           int(p.get("max", 32)))
            return {"messages": msgs}
        if action == "members":
            return {"members": self.server.collab.members_of(
                p["app_id"], p.get("group", DEFAULT_GROUP))}
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})

    def do_post(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "group":
            return self._group(p)
        if action == "mode":
            self.server.collab.set_collaboration(
                p["client_id"], bool(p["enabled"]))
            return {"ok": True}
        if action == "chat":
            return (yield from self._publish(
                p, ChatMessage(self._user(p), p["text"])))
        if action == "whiteboard":
            return (yield from self._publish(
                p, WhiteboardMessage(self._user(p), p["shape"],
                                     p.get("points", []))))
        if action == "share":
            return self._share(p)
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})

    def _user(self, p) -> str:
        return self.server.collab.session(p["client_id"]).user

    def _group(self, p):
        op = p.get("action", "join")
        if op == "join":
            self.server.collab.join_group(p["client_id"], p["app_id"],
                                          p["group"])
        elif op == "leave":
            self.server.collab.leave_group(p["client_id"], p["app_id"],
                                           p["group"])
        else:
            return (BAD_REQUEST, {"error": f"unknown group action {op!r}"})
        return {"ok": True, "members": self.server.collab.members_of(
            p["app_id"], p["group"])}

    def _publish(self, p, msg):
        delivered = yield from self.server.publish_group(
            p["client_id"], p["app_id"], p.get("group", DEFAULT_GROUP), msg)
        return {"delivered": delivered}

    def _share(self, p):
        """Explicit view share — works with collaboration disabled (§4.1)."""
        view = UpdateMessage(payload=p.get("view"),
                             client_id=p["client_id"])
        view.app_id = p["app_id"]
        delivered = self.server.collab.share_view(
            p["client_id"], p["app_id"], p.get("group", DEFAULT_GROUP), view)
        return {"delivered": delivered}


class StatusServlet(DiscoverServlet):
    """The live health/SLO surface of one server (the operator's view).

    - ``GET /status`` — fleet statuses, active alerts, SLO compliance
    - ``GET /status?format=prom`` — the whole metrics registry + health
      gauges in Prometheus text format (the scrape endpoint), including
      ``_bucket``/``_sum``/``_count`` histogram families from the
      time-series store
    - ``GET /status/app?app_id=...`` — one application's health detail
    - ``GET /status/alerts`` — full alert history (fire/resolve records)
    - ``GET /status/timeseries`` — the sim-time telemetry store: series
      summaries, or one series' buckets with
      ``?series=...[&start=..][&end=..][&q=..]``
    - ``GET /status/costs`` — the cost-attribution ledger: global totals,
      per-(principal, app, plane, operation) entries, and per-dimension
      heavy hitters (``?top=N`` bounds the sketch listing;
      ``format=prom`` renders the totals as exposition text)

    Served through the standard interceptor pipeline like every other
    servlet, so status requests are themselves metered, traced, and
    access-controlled.
    """

    def do_get(self, request, session):
        p = request.params
        health = self.server.health
        action = request.path.rsplit("/", 1)[-1]
        if action == "costs":
            return self._costs(p)
        if p.get("format") == "prom":
            from repro.health import to_prometheus
            return to_prometheus(self.server.metrics_registry(),
                                 monitor=health,
                                 timeseries=self.server.timeseries,
                                 instance=self.server.name)
        if action == "timeseries":
            return self._timeseries(p)
        if action == "app":
            return self._app_detail(p["app_id"])
        if action == "alerts":
            return {"server": self.server.name,
                    "active": [a.to_record() for a in health.alerts.active()],
                    "history": [a.to_record()
                                for a in health.alerts.history()]}
        snap = health.snapshot()
        return {"server": self.server.name,
                "time": self.server.sim.now,
                "health": {"counts": snap["counts"],
                           "components": snap["components"],
                           "fleet": health.fleet_view()},
                "slo": health.slos.compliance(),
                "alerts": [a.to_record() for a in health.alerts.active()]}

    def _timeseries(self, p):
        """The time-series store over HTTP: summaries or one range dump."""
        ts = self.server.timeseries
        name = p.get("series")
        if name is None:
            series = {}
            for sname in ts.names():
                kind = ts.kind(sname)
                entry = {"kind": kind}
                if kind == "histogram":
                    entry.update(ts.histogram_summary(sname))
                else:
                    entry["sum"] = ts.query(sname, "sum")
                    entry["last"] = ts.query(sname, "instant")
                series[sname] = entry
            return {"server": self.server.name,
                    "time": self.server.sim.now,
                    "bucket_width": ts.bucket_width,
                    "series": series}
        start = float(p["start"]) if "start" in p else None
        end = float(p["end"]) if "end" in p else None
        q = float(p.get("q", 0.99))
        return {"server": self.server.name,
                "series": name,
                "kind": ts.kind(name),
                "points": ts.query(name, "points", start=start, end=end,
                                   q=q)}

    def _costs(self, p):
        """The cost-attribution ledger over HTTP — the operator's
        "who is spending what" view."""
        ledger = self.server.ledger
        if ledger is None:
            return {"server": self.server.name, "accounting": "disabled"}
        if p.get("format") == "prom":
            from repro.health import to_prometheus
            from repro.obs import MetricsRegistry
            registry = MetricsRegistry()
            registry.register(f"costs[{self.server.name}]", ledger)
            return to_prometheus(registry, instance=self.server.name)
        top = int(p["top"]) if "top" in p else None
        snap = ledger.snapshot(top=top)
        snap["server"] = self.server.name
        snap["time"] = self.server.sim.now
        return snap

    def _app_detail(self, app_id):
        health = self.server.health
        proxy = self.server.local_proxies.get(app_id)
        detail = {"server": self.server.name, "app_id": app_id,
                  "status": health.status_of(health.app_key(app_id))}
        if proxy is not None:
            detail.update({
                "name": proxy.app_name, "active": proxy.active,
                "phase": proxy.phase,
                "commands_forwarded": proxy.commands_forwarded,
                "commands_buffered": proxy.commands_buffered,
                "updates_received": proxy.updates_received,
            })
        return detail


class ArchiveServlet(DiscoverServlet):
    """Replay and latecomer catch-up over the two archival logs."""

    def do_get(self, request, session):
        action = request.path.rsplit("/", 1)[-1]
        p = request.params
        if action == "interactions":
            records = yield from self.server.replay_interactions(
                p["client_id"], p["app_id"],
                float(p.get("since", 0.0)),
                int(p["limit"]) if "limit" in p else None)
            return {"records": records}
        if action == "applog":
            records = yield from self.server.replay_app_log(
                p["client_id"], p["app_id"],
                float(p.get("since", 0.0)),
                int(p["limit"]) if "limit" in p else None)
            return {"records": records}
        if action == "catchup":
            records = yield from self.server.latecomer_catchup(
                p["client_id"], p["app_id"], int(p.get("n", 20)))
            return {"records": records}
        return (BAD_REQUEST, {"error": f"unknown action {action!r}"})
