"""A miniature record store — the reproduction's "Relational Database".

§6.3: "The current implementation of DISCOVER avoids these issues by using
Relational Databases to store all the data generated in the form of
records ... the local server creates the output files or the records under
the ownership of the user who requested that data", while periodic
application data is owned by the application's owner and readable by every
user on the application's ACL.

We keep exactly that model: named tables of append-only records with an
``owner`` and a ``readers`` set enforced on query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set


class DatabaseError(Exception):
    """Unknown table, or a read denied by record ownership."""


_record_seq = itertools.count(1)


@dataclass
class Record:
    """One stored row."""

    record_id: int
    owner: str
    created_at: float
    data: dict
    readers: Set[str] = field(default_factory=set)

    def readable_by(self, user: str) -> bool:
        """Owners always read their records; others need reader rights."""
        return user == self.owner or user in self.readers or "*" in self.readers


class Table:
    """An append-only table of records."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._records: List[Record] = []

    def insert(self, owner: str, data: dict, created_at: float,
               readers: Optional[Iterable[str]] = None) -> Record:
        rec = Record(next(_record_seq), owner, created_at, dict(data),
                     set(readers or ()))
        self._records.append(rec)
        return rec

    def select(self, user: str,
               predicate: Optional[Callable[[Record], bool]] = None,
               limit: Optional[int] = None) -> List[Record]:
        """Records readable by ``user`` matching ``predicate`` (in order)."""
        out = []
        for rec in self._records:
            if not rec.readable_by(user):
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
            if limit is not None and len(out) >= limit:
                break
        return out

    def tail(self, user: str, n: int,
             predicate: Optional[Callable[[Record], bool]] = None) -> List[Record]:
        """The last ``n`` readable records matching ``predicate``."""
        out = [r for r in self._records
               if r.readable_by(user)
               and (predicate is None or predicate(r))]
        return out[-n:]

    def __len__(self) -> int:
        return len(self._records)


class Database:
    """Named tables for one server."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def table(self, name: str) -> Table:
        """Get (creating on first use) a table."""
        tbl = self._tables.get(name)
        if tbl is None:
            tbl = self._tables[name] = Table(name)
        return tbl

    def table_names(self) -> List[str]:
        return sorted(self._tables)
