"""Typed messages exchanged between DISCOVER tiers.

The paper (§4.1): "All requests and responses are Java objects ... Clients
differentiate between the different messages (i.e. Response, Error or
Update) using Java's reflection mechanism, by querying the received object
for its class name."  We keep that dispatch-by-class-name discipline:
:func:`message_type_name` is what every receiver switches on.

All messages share an envelope (sender, destination, ids, channel name) and
are registered with the wire codec so their byte size on the simulated
network is the size of their actual encoded content.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.wire.serialize import register_codec

_msg_ids = itertools.count(1)


class Message:
    """Envelope common to every DISCOVER message.

    Attributes
    ----------
    msg_id:
        Unique id, for request/response correlation and archival.
    sender / destination:
        Endpoint names (host or logical endpoint id).
    channel:
        Which of the paper's channels this travels on: ``"main"``,
        ``"command"``, ``"response"``, or ``"control"``.
    app_id / client_id:
        Optional ids tying the message to an application or client session.
    """

    def __init__(self, sender: str = "", destination: str = "",
                 channel: str = "main", app_id: Optional[str] = None,
                 client_id: Optional[str] = None) -> None:
        self.msg_id = next(_msg_ids)
        self.sender = sender
        self.destination = destination
        self.channel = channel
        self.app_id = app_id
        self.client_id = client_id

    def type_name(self) -> str:
        """The class name receivers dispatch on (paper's reflection)."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{self.type_name()} #{self.msg_id} "
                f"{self.sender}->{self.destination} ch={self.channel}>")

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and vars(self) == vars(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.msg_id))


@register_codec
class RegisterMessage(Message):
    """Application → server: register on the MainChannel (paper §4.1).

    Carries the pre-assigned application identifier used for authentication,
    the steerable-interface description, and the per-user ACL the
    application supplies ("it supplies the server with ... a list of
    authorized user-IDs and their privileges", §6.3).
    """

    def __init__(self, app_name: str, auth_token: str, interface: dict,
                 acl: Dict[str, str], **kw: Any) -> None:
        super().__init__(channel="main", **kw)
        self.app_name = app_name
        self.auth_token = auth_token
        self.interface = interface
        self.acl = acl


@register_codec
class UpdateMessage(Message):
    """Application → server → clients: periodic state update (MainChannel)."""

    def __init__(self, payload: Any = None, seq: int = 0,
                 timestamp: float = 0.0, **kw: Any) -> None:
        super().__init__(channel="main", **kw)
        self.payload = payload
        self.seq = seq
        self.timestamp = timestamp


@register_codec
class CommandMessage(Message):
    """Client → server → application: view/steer request (CommandChannel)."""

    def __init__(self, command: str, args: Optional[dict] = None,
                 request_id: Optional[int] = None, **kw: Any) -> None:
        super().__init__(channel="command", **kw)
        self.command = command
        self.args = args or {}
        self.request_id = request_id if request_id is not None else self.msg_id


@register_codec
class ResponseMessage(Message):
    """Application → server → client: reply to a command (ResponseChannel)."""

    def __init__(self, request_id: int, result: Any = None, **kw: Any) -> None:
        super().__init__(channel="response", **kw)
        self.request_id = request_id
        self.result = result


@register_codec
class ErrorMessage(Message):
    """Failure notice delivered instead of a response (ResponseChannel)."""

    def __init__(self, request_id: int, error: str, code: str = "ERROR",
                 **kw: Any) -> None:
        super().__init__(channel="response", **kw)
        self.request_id = request_id
        self.error = error
        self.code = code


@register_codec
class ControlMessage(Message):
    """Server ↔ server system events and errors (ControlChannel, §5.1).

    "For interaction between two servers, an additional Control Channel is
    used to forward error messages and system events ... a notification
    service similar to the one used in Salamander."
    """

    def __init__(self, event: str, detail: Any = None, **kw: Any) -> None:
        super().__init__(channel="control", **kw)
        self.event = event
        self.detail = detail


@register_codec
class AckMessage(Message):
    """Generic acknowledgement (registration accepted, lock released...)."""

    def __init__(self, request_id: int, ok: bool = True, info: str = "",
                 **kw: Any) -> None:
        super().__init__(channel="response", **kw)
        self.request_id = request_id
        self.ok = ok
        self.info = info


@register_codec
class LockMessage(Message):
    """Steering-lock protocol message (§5.2.4): acquire/release/grant/deny."""

    def __init__(self, action: str, holder: Optional[str] = None,
                 **kw: Any) -> None:
        super().__init__(channel="command", **kw)
        self.action = action
        self.holder = holder


@register_codec
class ChatMessage(Message):
    """Collaboration chat line (§4.1: "chat and whiteboard tools")."""

    def __init__(self, author: str, text: str, **kw: Any) -> None:
        super().__init__(channel="main", **kw)
        self.author = author
        self.text = text


@register_codec
class WhiteboardMessage(Message):
    """A whiteboard stroke/shape shared with the collaboration group."""

    def __init__(self, author: str, shape: str, points: list, **kw: Any) -> None:
        super().__init__(channel="main", **kw)
        self.author = author
        self.shape = shape
        self.points = points


def message_type_name(msg: Message) -> str:
    """Dispatch key for a received message — the paper's reflection idiom."""
    if not isinstance(msg, Message):
        raise TypeError(f"not a Message: {msg!r}")
    return msg.type_name()
