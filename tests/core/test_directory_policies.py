"""Tests for the §6.3 extensions: central user directory, resource
policies/accounting, and poll-mode server-to-server updates."""

import pytest

from repro import AppConfig, PortalError, build_collaboratory
from repro.apps import SyntheticApp
from repro.core.directory import UserDirectoryService
from repro.core.policies import (
    PolicyManager,
    PolicyViolation,
    ResourcePolicy,
    TokenBucket,
    UsageLedger,
)


def cfg():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


# ------------------------- UserDirectoryService -----------------------------

def test_directory_publish_and_lookup():
    d = UserDirectoryService()
    d.publish_app("s1#a1", "s1", "wave", {"alice": "write", "bob": "read"})
    d.publish_app("s2#a1", "s2", "cfd", {"alice": "read"})
    assert d.authenticate("alice")
    assert not d.authenticate("eve")
    apps = {a["app_id"]: a for a in d.lookup("alice")}
    assert set(apps) == {"s1#a1", "s2#a1"}
    assert apps["s1#a1"]["privilege"] == "write"
    assert apps["s2#a1"]["server"] == "s2"
    assert d.lookup("bob")[0]["app_id"] == "s1#a1"


def test_directory_withdraw():
    d = UserDirectoryService()
    d.publish_app("s1#a1", "s1", "wave", {"alice": "write"})
    d.withdraw_app("s1#a1")
    assert not d.authenticate("alice")
    assert d.lookup("alice") == []
    assert d.app_count() == 0
    d.withdraw_app("ghost")  # idempotent


def test_directory_republish_replaces_acl():
    d = UserDirectoryService()
    d.publish_app("s1#a1", "s1", "wave", {"alice": "write"})
    d.publish_app("s1#a1", "s1", "wave", {"bob": "read"})
    assert not d.authenticate("alice")
    assert d.authenticate("bob")


def test_directory_withdraw_maintains_server_reverse_index():
    d = UserDirectoryService()
    d.publish_app("s1#a1", "s1", "wave", {"alice": "write"})
    d.publish_app("s1#a2", "s1", "cfd", {"bob": "read"})
    d.publish_app("s2#a1", "s2", "heat", {"alice": "read"})
    d.withdraw_app("s1#a1")  # must leave only s1#a2 under s1
    assert d.withdraw_server("s1") == 1
    assert d.withdraw_server("s2") == 1
    assert d.app_count() == 0 and d.known_users() == []


def test_directory_republish_moves_app_between_servers():
    # re-publishing the same app from a new server must re-home it in
    # the reverse index, not leave a stale pointer at the old server
    d = UserDirectoryService()
    d.publish_app("x#a1", "s1", "wave", {"alice": "write"})
    d.publish_app("x#a1", "s2", "wave", {"alice": "write"})
    assert d.withdraw_server("s1") == 0
    assert d.authenticate("alice")
    assert d.withdraw_server("s2") == 1
    assert not d.authenticate("alice")


def test_directory_backed_login_end_to_end():
    collab = build_collaboratory(3, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 use_directory=True)
    collab.run_bootstrap()
    app = collab.add_app(2, SyntheticApp, "far-app",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    assert collab.directory.app_count() == 1
    portal = collab.add_portal(0)

    def scenario():
        apps = yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        value = yield from session.set_param("gain", 4.0)
        return (len(apps), value)

    n_apps, value = run(collab, scenario())
    assert n_apps == 1
    assert value == 4.0


def test_directory_login_rejects_unknown_user():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 use_directory=True)
    collab.run_bootstrap()
    collab.add_app(1, SyntheticApp, "app", acl={"alice": "write"},
                   config=cfg())
    collab.sim.run(until=3.0)
    portal = collab.add_portal(0)

    def scenario():
        try:
            yield from portal.login("eve")
        except PortalError as exc:
            return exc.status

    assert run(collab, scenario()) == 401


def test_directory_withdraw_server_bulk():
    d = UserDirectoryService()
    d.publish_app("s1#a1", "s1", "wave", {"alice": "write"})
    d.publish_app("s1#a2", "s1", "cfd", {"alice": "read"})
    d.publish_app("s2#a1", "s2", "heat", {"bob": "write"})
    assert d.withdraw_server("s1") == 2
    assert d.app_count() == 1
    assert d.lookup("alice") == []
    assert d.lookup("bob")[0]["app_id"] == "s2#a1"
    assert d.withdraw_server("s1") == 0  # idempotent
    assert d.withdraw_server("ghost") == 0


def test_directory_withdraws_on_server_shutdown():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 use_directory=True)
    collab.run_bootstrap()
    survivor = collab.add_app(0, SyntheticApp, "survivor",
                              acl={"alice": "write"}, config=cfg())
    collab.add_app(1, SyntheticApp, "doomed", acl={"alice": "write"},
                   config=cfg())
    collab.sim.run(until=3.0)
    assert collab.directory.app_count() == 2
    run(collab, collab.server_of(1).shutdown())
    assert collab.directory.app_count() == 1
    # a login at the surviving domain sees the withdrawal: only the
    # surviving application remains visible network-wide
    portal = collab.add_portal(0)

    def scenario():
        return (yield from portal.login("alice"))

    apps = run(collab, scenario())
    assert [a["app_id"] for a in apps] == [survivor.app_id]


def test_directory_withdraws_on_app_stop():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 use_directory=True)
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "finite", acl={"u": "write"},
                         config=AppConfig(steps_per_phase=5, step_time=0.01,
                                          interaction_window=0.01,
                                          total_steps=10))
    collab.sim.run(until=6.0)
    assert app.state == "stopped"
    assert collab.directory.app_count() == 0


# ---------------------------- policies ----------------------------------

def test_token_bucket_basic():
    b = TokenBucket(rate=10.0, burst=5.0)
    # burst capacity available immediately
    assert all(b.try_take(0.0) for _ in range(5))
    assert not b.try_take(0.0)
    # refills over time
    assert b.try_take(0.1)  # 1 token back
    assert not b.try_take(0.1)


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0, burst=1)


def test_resource_policy_requests_axis():
    p = ResourcePolicy(max_requests_per_s=2.0, burst_seconds=1.0)
    assert p.admit(0.0)
    assert p.admit(0.0)
    assert not p.admit(0.0)
    assert p.admit(1.0)  # refilled


def test_resource_policy_bytes_axis():
    p = ResourcePolicy(max_bytes_per_s=100.0, burst_seconds=1.0)
    assert p.admit(0.0, nbytes=80)
    assert not p.admit(0.0, nbytes=80)
    assert p.admit(1.0, nbytes=80)


def test_resource_policy_unlimited():
    p = ResourcePolicy()
    assert all(p.admit(0.0, nbytes=10 ** 6) for _ in range(100))


def test_usage_ledger_tracks():
    ledger = UsageLedger()
    ledger.record("peer-1", nbytes=100)
    ledger.record("peer-1", nbytes=50)
    ledger.record_rejection("peer-1")
    u = ledger.usage("peer-1")
    assert (u.requests, u.bytes, u.rejected) == (2, 150, 1)
    assert ledger.usage("ghost").requests == 0
    assert ledger.principals() == ["peer-1"]


def test_policy_manager_default_and_specific():
    mgr = PolicyManager()
    mgr.check("anyone", 0.0)  # no policy: always admitted, but accounted
    assert mgr.ledger.usage("anyone").requests == 1
    mgr.set_policy("peer-1", ResourcePolicy(max_requests_per_s=1.0,
                                            burst_seconds=1.0))
    mgr.check("peer-1", 0.0)
    with pytest.raises(PolicyViolation):
        mgr.check("peer-1", 0.0)
    assert mgr.ledger.usage("peer-1").rejected == 1


def test_server_enforces_peer_policy_end_to_end():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "guarded",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    s0, s1 = collab.server_of(0), collab.server_of(1)
    # clamp the peer's host (d1-server) to ~1 request/s at s0
    s0.policies.set_policy(s1.host.name, ResourcePolicy(
        max_requests_per_s=1.0, burst_seconds=1.0))

    def hammer():
        ok, denied = 0, 0
        from repro.orb import RemoteException
        for _ in range(6):
            try:
                yield from s1.orb.invoke(s1.peers[s0.name],
                                         "get_active_applications")
                ok += 1
            except RemoteException as exc:
                assert exc.exc_type == "PolicyViolation"
                denied += 1
        return (ok, denied)

    ok, denied = run(collab, hammer())
    assert ok >= 1
    assert denied >= 1
    usage = s0.policies.ledger.usage(s1.host.name)
    assert usage.rejected == denied


def test_server_accounts_peer_usage_by_default():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    s0, s1 = collab.server_of(0), collab.server_of(1)

    def probe():
        yield from s1.orb.invoke(s1.peers[s0.name], "ping")

    run(collab, probe())
    assert s0.policies.ledger.usage(s1.host.name).requests >= 1


# --------------------------- poll-mode updates -------------------------------

def test_poll_mode_delivers_remote_updates():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 update_mode="poll",
                                 update_poll_interval=0.2)
    collab.run_bootstrap()
    app = collab.add_app(1, SyntheticApp, "polled",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)
        yield portal.sim.timeout(2.0)
        yield from portal.poll(max_items=64)
        return len(portal.updates)

    n_updates = run(collab, scenario())
    assert n_updates >= 2
    # push machinery unused: the home proxy has no remote subscribers
    home = collab.server_of(1)
    assert home.local_proxies[app.app_id].remote_subscribers == set()
    assert home.stats["remote_update_pushes"] == 0


def test_poll_mode_validation():
    from repro.core.deployment import build_collaboratory as bc
    with pytest.raises(ValueError):
        bc(1, apps_hosts_per_domain=1, client_hosts_per_domain=1,
           update_mode="carrier-pigeon")
