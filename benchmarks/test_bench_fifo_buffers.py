"""A2 — §6.2: "The poll and pull mechanism makes it necessary to maintain
FIFO buffers at the server for each client to support slow clients.  Such a
poll and pull mechanism may be unsuitable ... as it presents both memory
and performance overheads."

One fast application, one slow client (long poll interval).  Unbounded
buffers grow without limit (the paper's memory overhead); bounded buffers
cap memory but drop messages.  The shape: a memory/completeness trade-off.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import make_app_farm, polling_client
from repro.core.deployment import build_single_server
from repro.metrics import LatencyRecorder

CAPACITIES = (float("inf"), 64, 16, 4)
DURATION = 30.0
SLOW_POLL = 3.0
UPDATE_PERIOD = 0.1


def _buffer_run(capacity: float) -> dict:
    collab = build_single_server(client_buffer_capacity=capacity)
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, user="bench",
                         update_period=UPDATE_PERIOD)
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    server = collab.server_of(0)
    recorder = LatencyRecorder(collab.sim)
    peak = {"depth": 0}

    def watch_buffers():
        for _ in range(int((DURATION + 1.0) / 0.1)):
            for session in server.collab._sessions.values():
                peak["depth"] = max(peak["depth"], len(session.buffer))
            yield collab.sim.timeout(0.1)

    collab.sim.spawn(watch_buffers())
    portal = collab.add_portal(0)
    collab.sim.spawn(polling_client(
        portal, app_id, user="bench", duration=DURATION,
        poll_interval=SLOW_POLL, recorder=recorder))
    collab.sim.run(until=collab.sim.now + DURATION + 1.0)
    delivered = server.collab.delivered
    dropped = server.collab.dropped
    return {
        "capacity": ("unbounded" if capacity == float("inf")
                     else int(capacity)),
        "peak_buffer_depth": peak["depth"],
        "delivered": delivered,
        "dropped": dropped,
        "drop_pct": 100.0 * dropped / max(1, delivered + dropped),
    }


def test_bench_a2_fifo_buffer_bounds(benchmark):
    rows = run_once(benchmark, lambda: [_buffer_run(c) for c in CAPACITIES])
    print_experiment(
        "A2 (ablation): per-client FIFO buffer bounds for slow clients",
        "necessary to maintain FIFO buffers at the server for each client "
        "to support slow clients ... memory and performance overheads",
        rows,
        ["capacity", "peak_buffer_depth", "delivered", "dropped",
         "drop_pct"],
        finding=(f"unbounded buffer peaks at "
                 f"{rows[0]['peak_buffer_depth']} messages for one slow "
                 f"client; capacity 4 drops "
                 f"{rows[-1]['drop_pct']:.0f}% instead"),
    )
    unbounded = rows[0]
    tight = rows[-1]
    # the paper's memory overhead is real: buffers grow well past any bound
    assert unbounded["peak_buffer_depth"] > 16
    assert unbounded["dropped"] == 0
    # bounding trades memory for loss
    assert tight["peak_buffer_depth"] <= 4
    assert tight["dropped"] > 0
