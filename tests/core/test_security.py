"""Unit tests for ACLs, privileges, and the SecurityManager."""

import pytest

from repro.core.security import (
    MUTATING_COMMANDS,
    READ,
    WRITE,
    AccessControlList,
    SecurityError,
    SecurityManager,
    privilege_level,
    required_privilege,
)


# ------------------------------ privileges ------------------------------

def test_privilege_ordering():
    assert privilege_level(WRITE) > privilege_level(READ)


def test_unknown_privilege_rejected():
    with pytest.raises(SecurityError):
        privilege_level("root")


@pytest.mark.parametrize("command", sorted(MUTATING_COMMANDS))
def test_mutating_commands_require_write(command):
    assert required_privilege(command) == WRITE


@pytest.mark.parametrize("command", ["get_param", "read_sensor", "status",
                                     "describe", "list_params"])
def test_queries_require_read(command):
    assert required_privilege(command) == READ


# ------------------------------ ACLs --------------------------------------

def test_acl_grant_and_check():
    acl = AccessControlList({"alice": WRITE, "bob": READ})
    assert acl.allows("alice", WRITE)
    assert acl.allows("alice", READ)  # write implies read
    assert acl.allows("bob", READ)
    assert not acl.allows("bob", WRITE)
    assert not acl.allows("eve", READ)


def test_acl_revoke():
    acl = AccessControlList({"alice": WRITE})
    acl.revoke("alice")
    assert not acl.allows("alice", READ)
    acl.revoke("ghost")  # idempotent


def test_acl_invalid_privilege_rejected():
    with pytest.raises(SecurityError):
        AccessControlList({"alice": "superuser"})


def test_acl_users_and_len():
    acl = AccessControlList({"b": READ, "a": WRITE})
    assert acl.users() == ["a", "b"]
    assert len(acl) == 2
    assert "a" in acl


def test_acl_privilege_of():
    acl = AccessControlList({"alice": WRITE})
    assert acl.privilege_of("alice") == WRITE
    assert acl.privilege_of("bob") is None


# --------------------------- SecurityManager -------------------------------

def make_manager():
    mgr = SecurityManager()
    mgr.register_app_acl("app-1", {"alice": WRITE, "bob": READ})
    mgr.register_app_acl("app-2", {"carol": WRITE})
    return mgr


def test_user_known_across_apps():
    mgr = make_manager()
    assert mgr.user_known("alice")
    assert mgr.user_known("carol")
    assert not mgr.user_known("eve")


def test_authenticate_user_is_acl_membership():
    mgr = make_manager()
    assert mgr.authenticate_user("bob")
    assert not mgr.authenticate_user("eve")


def test_app_privilege_lookup():
    mgr = make_manager()
    assert mgr.app_privilege("alice", "app-1") == WRITE
    assert mgr.app_privilege("alice", "app-2") is None
    assert mgr.app_privilege("alice", "ghost") is None


def test_authorize_command_happy_paths():
    mgr = make_manager()
    mgr.authorize_command("alice", "app-1", "set_param")
    mgr.authorize_command("bob", "app-1", "get_param")


def test_authorize_command_denies_read_user_mutation():
    mgr = make_manager()
    with pytest.raises(SecurityError):
        mgr.authorize_command("bob", "app-1", "set_param")


def test_authorize_command_denies_unknown_app():
    mgr = make_manager()
    with pytest.raises(SecurityError):
        mgr.authorize_command("alice", "ghost", "get_param")


def test_authorize_command_denies_non_member():
    mgr = make_manager()
    with pytest.raises(SecurityError):
        mgr.authorize_command("eve", "app-1", "get_param")


def test_accessible_apps():
    mgr = make_manager()
    assert mgr.accessible_apps("alice") == {"app-1": WRITE}
    assert mgr.accessible_apps("carol") == {"app-2": WRITE}
    assert mgr.accessible_apps("eve") == {}


def test_unregister_app_removes_access():
    mgr = make_manager()
    mgr.unregister_app("app-1")
    assert not mgr.user_known("bob")
    assert mgr.accessible_apps("alice") == {}


def test_application_token_authentication():
    mgr = SecurityManager()
    # open deployment: any token accepted
    assert mgr.authenticate_application("sim", "whatever")
    # pinned token: must match
    mgr.app_tokens["sim"] = "s3cret"
    assert mgr.authenticate_application("sim", "s3cret")
    assert not mgr.authenticate_application("sim", "wrong")
