"""One shard of the directory: the storage half of the old §6.3 service.

``UserDirectoryService`` kept the whole network's ``user -> apps`` and
``app -> location`` maps behind a single servant.  A
:class:`DirectoryShardServant` holds only the slice of those maps whose
keys hash to it, exposed over the ORB through :data:`DIRECTORY_SHARD`.
The lookup/replication logic lives client-side in
:class:`repro.directory.client.DirectoryClient`; the servant is a plain
keyed store plus the reverse indexes that make withdrawal O(affected
entries) instead of O(shard).

Every mutating/reading operation carries the caller's ring ``epoch``.
A servant behind the caller adopts the newer epoch; a caller behind the
servant gets :class:`StaleRingEpoch` back (as a ``RemoteException``
named ``StaleRingEpoch``) and must re-route — this is what keeps a
client that cached routing across a membership change from reading or
writing the wrong shard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.orb.idl import Interface, Operation

#: RemoteException type name clients match on to refresh + retry
STALE_EPOCH = "StaleRingEpoch"


class StaleRingEpoch(Exception):
    """Caller routed on an older ring than this servant knows."""


#: IDL for one directory shard (user entries, app locations, bulk drops)
DIRECTORY_SHARD = Interface("DirectoryShard", (
    Operation("put_user_entry", ("user", "app_id", "summary", "epoch"),
              doc="write one user's visibility of one app"),
    Operation("drop_user_entry", ("user", "app_id", "epoch"),
              doc="remove one user's visibility of one app"),
    Operation("put_app", ("app_id", "server", "name", "users", "epoch"),
              doc="write an app's location record; returns prior users"),
    Operation("drop_app", ("app_id", "epoch"),
              doc="remove an app's location record; returns its users"),
    Operation("lookup", ("user", "epoch"),
              doc="apps visible to the user on this shard"),
    Operation("authenticate", ("user", "epoch"),
              doc="does this shard know the user?"),
    Operation("locate_app", ("app_id", "epoch"),
              doc="home server of the app, or None"),
    Operation("drop_server", ("server", "epoch"),
              doc="bulk-remove everything published by one server"),
    Operation("stats", (), doc="request counters + store sizes"),
))


class DirectoryShardServant:
    """Keyed slice of the user-directory and app-placement maps."""

    def __init__(self, name: str, *, ring_epoch: int = 0) -> None:
        self.name = name
        self.ring_epoch = ring_epoch
        #: user → {app_id: summary}
        self._by_user: Dict[str, Dict[str, dict]] = {}
        #: app_id → (server, name, users)
        self._apps: Dict[str, Tuple[str, str, List[str]]] = {}
        # reverse indexes so drop_server never scans the whole shard
        self._apps_by_server: Dict[str, Set[str]] = {}
        self._entries_by_server: Dict[str, Set[Tuple[str, str]]] = {}
        self.requests = 0
        self.stale_rejections = 0

    # -- epoch gate --------------------------------------------------------
    def _gate(self, epoch: int) -> None:
        self.requests += 1
        if epoch > self.ring_epoch:
            # callers route on the live ring; learn the newer epoch
            self.ring_epoch = epoch
        elif epoch < self.ring_epoch:
            self.stale_rejections += 1
            raise StaleRingEpoch(
                f"shard {self.name} at epoch {self.ring_epoch}, "
                f"caller at {epoch}")

    # -- user entries ------------------------------------------------------
    def put_user_entry(self, user: str, app_id: str, summary: dict,
                       epoch: int) -> bool:
        self._gate(epoch)
        self._by_user.setdefault(user, {})[app_id] = summary
        server = summary.get("server", "")
        if server:
            self._entries_by_server.setdefault(server, set()).add(
                (user, app_id))
        return True

    def drop_user_entry(self, user: str, app_id: str, epoch: int) -> bool:
        self._gate(epoch)
        apps = self._by_user.get(user)
        if apps is None:
            return False
        summary = apps.pop(app_id, None)
        if not apps:
            del self._by_user[user]
        if summary is not None:
            server = summary.get("server", "")
            entries = self._entries_by_server.get(server)
            if entries is not None:
                entries.discard((user, app_id))
                if not entries:
                    del self._entries_by_server[server]
        return summary is not None

    # -- app placement records --------------------------------------------
    def put_app(self, app_id: str, server: str, name: str,
                users: List[str], epoch: int) -> List[str]:
        """Write the app record; returns the users of any prior record
        (so the client can drop entries for users no longer on the ACL)."""
        self._gate(epoch)
        prior = self._drop_app_record(app_id)
        self._apps[app_id] = (server, name, list(users))
        self._apps_by_server.setdefault(server, set()).add(app_id)
        return prior

    def drop_app(self, app_id: str, epoch: int) -> List[str]:
        """Remove the app record; returns the users it listed."""
        self._gate(epoch)
        return self._drop_app_record(app_id)

    def _drop_app_record(self, app_id: str) -> List[str]:
        record = self._apps.pop(app_id, None)
        if record is None:
            return []
        server, _name, users = record
        apps = self._apps_by_server.get(server)
        if apps is not None:
            apps.discard(app_id)
            if not apps:
                del self._apps_by_server[server]
        return users

    # -- reads -------------------------------------------------------------
    def lookup(self, user: str, epoch: int) -> List[dict]:
        self._gate(epoch)
        return list(self._by_user.get(user, {}).values())

    def authenticate(self, user: str, epoch: int) -> bool:
        self._gate(epoch)
        return user in self._by_user

    def locate_app(self, app_id: str, epoch: int) -> Optional[str]:
        self._gate(epoch)
        record = self._apps.get(app_id)
        return record[0] if record is not None else None

    # -- bulk withdrawal ---------------------------------------------------
    def drop_server(self, server: str, epoch: int) -> List[str]:
        """Remove every record/entry published by ``server``; returns the
        app ids whose records this shard dropped (the client unions them
        across replicas for an exact count)."""
        self._gate(epoch)
        dropped = sorted(self._apps_by_server.get(server, set()))
        for app_id in dropped:
            self._drop_app_record(app_id)
        for user, app_id in list(self._entries_by_server.get(server, ())):
            self.drop_user_entry(user, app_id, self.ring_epoch)
            self.requests -= 1  # internal reuse, not a wire request
        return dropped

    # -- introspection (also used in-process by the plane) -----------------
    def stats(self) -> dict:
        return {
            "shard": self.name,
            "epoch": self.ring_epoch,
            "requests": self.requests,
            "stale_rejections": self.stale_rejections,
            "users": len(self._by_user),
            "apps": len(self._apps),
        }

    def app_ids(self) -> Set[str]:
        return set(self._apps)

    def known_users(self) -> List[str]:
        return sorted(self._by_user)
