"""ORB-level tests for the admission hook (the §6.3 enforcement point)."""

import pytest

from repro.net import Network
from repro.orb import Orb, RemoteException
from repro.sim import Simulator
from tests.conftest import drive


class Echo:
    def echo(self, x):
        return x


def make_pair():
    sim = Simulator()
    net = Network(sim)
    net.add_host("caller")
    net.add_host("callee")
    net.add_link("caller", "callee", 0.001)
    corb = Orb(net.hosts["caller"])
    sorb = Orb(net.hosts["callee"])
    ref = sorb.activate(Echo(), key="echo")
    return sim, corb, sorb, ref


def test_admission_hook_sees_principal_operation_size():
    sim, corb, sorb, ref = make_pair()
    seen = []
    sorb.admission = lambda principal, op, size: seen.append(
        (principal, op, size))

    def caller():
        return (yield from corb.invoke(ref, "echo", 42))

    assert drive(sim, caller()) == 42
    assert len(seen) == 1
    principal, op, size = seen[0]
    assert principal == "caller"
    assert op == "echo"
    assert size > 0


def test_admission_rejection_becomes_remote_exception():
    sim, corb, sorb, ref = make_pair()

    class Denied(Exception):
        pass

    def deny(principal, op, size):
        raise Denied(f"{principal} not welcome")

    sorb.admission = deny

    def caller():
        try:
            yield from corb.invoke(ref, "echo", 1)
        except RemoteException as exc:
            return exc.exc_type

    assert drive(sim, caller()) == "Denied"


def test_admission_applies_to_oneway_too():
    sim, corb, sorb, ref = make_pair()
    seen = []
    sorb.admission = lambda principal, op, size: seen.append(op)
    corb.invoke_oneway(ref, "echo", 1)
    sim.run()
    assert seen == ["echo"]


def test_no_admission_hook_admits_everything():
    sim, corb, sorb, ref = make_pair()
    assert sorb.admission is None

    def caller():
        return (yield from corb.invoke(ref, "echo", "ok"))

    assert drive(sim, caller()) == "ok"
