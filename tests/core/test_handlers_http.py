"""HTTP-surface edge cases for the DISCOVER servlets."""

import pytest

from repro import AppConfig, build_single_server
from repro.apps import SyntheticApp
from repro.web import HttpClient, HttpError


def cfg():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


@pytest.fixture
def site():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "wave", acl={"alice": "write"},
                         config=cfg())
    collab.sim.run(until=2.0)
    client = HttpClient(collab.domains[0].client_hosts[0],
                        collab.domains[0].server.name)
    return collab, app, client


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def status_of(collab, gen):
    def wrapper():
        try:
            yield from gen
        except HttpError as exc:
            return exc.status
        return 200

    return run(collab, wrapper())


def login(client, user="alice"):
    body = yield from client.post("/master/login", params={"user": user})
    return body["client_id"]


def test_unknown_master_action_is_400(site):
    collab, app, client = site
    assert status_of(collab, client.post("/master/frobnicate",
                                         params={})) == 400


def test_missing_parameter_is_400(site):
    collab, app, client = site
    # login without user
    assert status_of(collab, client.post("/master/login", params={})) == 400


def test_select_without_valid_client_is_404(site):
    collab, app, client = site
    assert status_of(collab, client.post(
        "/master/select",
        params={"client_id": "d0-server:c99", "app_id": app.app_id})) == 404


def test_command_unknown_lock_action_is_400(site):
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        yield from client.post("/command/lock",
                               params={"client_id": cid,
                                       "app_id": app.app_id,
                                       "action": "steal"})

    assert status_of(collab, scenario()) == 400


def test_unknown_command_becomes_error_response(site):
    """An undefined steering command is accepted by the server (READ level)
    and rejected by the application agent via an ErrorMessage."""
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        yield from client.post("/master/select",
                               params={"client_id": cid,
                                       "app_id": app.app_id})
        body = yield from client.post(
            "/command/submit",
            params={"client_id": cid, "app_id": app.app_id,
                    "command": "frobnicate", "args": {}})
        request_id = body["request_id"]
        # poll until the error response lands
        for _ in range(50):
            yield collab.sim.timeout(0.2)
            got = yield from client.get("/collab/poll",
                                        {"client_id": cid, "max": 32})
            for msg in got["messages"]:
                if getattr(msg, "request_id", None) == request_id:
                    return msg.type_name()

    assert run(collab, scenario()) == "ErrorMessage"


def test_collab_members_endpoint(site):
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        yield from client.post("/master/select",
                               params={"client_id": cid,
                                       "app_id": app.app_id})
        body = yield from client.get("/collab/members",
                                     {"app_id": app.app_id})
        return (cid, body["members"])

    cid, members = run(collab, scenario())
    assert members == [cid]


def test_master_users_endpoint(site):
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        body = yield from client.get("/master/users",
                                     {"client_id": cid})
        return body["users"]

    assert run(collab, scenario()) == ["alice"]


def test_group_join_unknown_client_is_404(site):
    collab, app, client = site
    assert status_of(collab, client.post(
        "/collab/group",
        params={"client_id": "d0-server:c77", "app_id": app.app_id,
                "group": "g", "action": "join"})) == 404


def test_archive_requires_client_id(site):
    collab, app, client = site
    assert status_of(collab, client.get(
        "/archive/interactions", {"app_id": app.app_id})) == 400


def test_poll_empty_buffer_returns_empty_list(site):
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        body = yield from client.get("/collab/poll",
                                     {"client_id": cid, "max": 10})
        return body["messages"]

    assert run(collab, scenario()) == []


def test_poll_respects_max(site):
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        yield from client.post("/master/select",
                               params={"client_id": cid,
                                       "app_id": app.app_id})
        yield collab.sim.timeout(3.0)  # accumulate several updates
        body = yield from client.get("/collab/poll",
                                     {"client_id": cid, "max": 2})
        return len(body["messages"])

    assert run(collab, scenario()) == 2


def test_http_session_cookie_issued_once(site):
    collab, app, client = site

    def scenario():
        cid = yield from login(client)
        first_cookie = client.cookie
        yield from client.get("/master/apps", {"client_id": cid})
        return (first_cookie, client.cookie)

    first, later = run(collab, scenario())
    assert first.startswith("JSESSIONID-")
    assert later == first  # the same session is reused, not re-issued
