"""E6 — §7: "we are currently evaluating this framework to determine
response latencies and throughput for remote applications as compared to
multiple applications connected to the same server."

A steering client drives an interaction-dominant application that is either
homed at the client's own server or one CORBA hop (WAN) away.  The shape:
remote access costs roughly one WAN round trip plus ORB dispatch on top of
the local path — global access is not free, but it is bounded and small
relative to human steering cadence.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import run_remote_vs_local

DURATION = 20.0
WAN = 0.030


def test_bench_e6_remote_vs_local(benchmark):
    rows = run_once(benchmark, lambda: [
        run_remote_vs_local(remote=remote, duration=DURATION,
                            wan_latency=WAN)
        for remote in (False, True)])
    local, remote = rows
    overhead = remote["mean_steer_rtt_ms"] - local["mean_steer_rtt_ms"]
    print_experiment(
        "E6: steering latency, local vs remote application",
        "response latencies and throughput for remote applications vs "
        "applications connected to the same server",
        rows,
        ["placement", "wan_latency_ms", "mean_steer_rtt_ms",
         "p90_steer_rtt_ms", "commands", "throughput_per_s"],
        finding=(f"remote adds {overhead:.0f}ms over local "
                 f"({local['mean_steer_rtt_ms']:.0f}ms) — about one WAN "
                 f"round trip ({2 * WAN * 1e3:.0f}ms) plus ORB dispatch"),
    )
    # remote is slower, by at least the WAN round trip...
    assert overhead > 2 * WAN * 1e3 * 0.8
    # ...but not catastrophically (within ~4x of one WAN round trip)
    assert overhead < 8 * WAN * 1e3
    # throughput ordering follows latency
    assert remote["throughput_per_s"] <= local["throughput_per_s"] * 1.05
