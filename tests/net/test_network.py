"""Tests for hosts, links, routing, and frame delivery."""

import pytest

from repro.net import Network, NetworkError
from repro.sim import Simulator
from repro.wire import encoded_size


def two_host_net(latency=0.010, bandwidth=float("inf")):
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency, bandwidth)
    return sim, net


def test_duplicate_host_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(NetworkError):
        net.add_host("a")


def test_link_requires_known_hosts():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(NetworkError):
        net.add_link("a", "ghost", 0.001)


def test_duplicate_link_rejected():
    sim, net = two_host_net()
    with pytest.raises(NetworkError):
        net.add_link("b", "a", 0.001)


def test_delivery_latency():
    sim, net = two_host_net(latency=0.010)
    src = net.hosts["a"].bind(1000)
    dst = net.hosts["b"].bind(2000)
    got = []

    def receiver(sim, dst):
        frame = yield dst.recv()
        got.append((frame.payload, sim.now))

    sim.spawn(receiver(sim, dst))
    src.send("b", 2000, "ping")
    sim.run()
    assert got == [("ping", 0.010)]


def test_frame_records_latency_and_size():
    sim, net = two_host_net(latency=0.005)
    src = net.hosts["a"].bind(1)
    dst = net.hosts["b"].bind(2)

    def receiver(sim, dst):
        yield dst.recv()

    sim.spawn(receiver(sim, dst))
    frame = src.send("b", 2, {"k": "v"})
    sim.run()
    assert frame.latency == pytest.approx(0.005)
    assert frame.size == encoded_size({"k": "v"}) + net.frame_overhead


def test_bandwidth_adds_transfer_time():
    sim, net = two_host_net(latency=0.0, bandwidth=1000.0)  # 1 kB/s
    src = net.hosts["a"].bind(1)
    dst = net.hosts["b"].bind(2)
    payload = b"x" * 936  # frame = 936 + 5 + 64 overhead ≈ 1005 bytes
    times = []

    def receiver(sim, dst):
        frame = yield dst.recv()
        times.append(sim.now)

    sim.spawn(receiver(sim, dst))
    frame = src.send("b", 2, payload)
    sim.run()
    assert times[0] == pytest.approx(frame.size / 1000.0)


def test_transmissions_serialize_on_link():
    sim, net = two_host_net(latency=0.0, bandwidth=1000.0)
    src = net.hosts["a"].bind(1)
    dst = net.hosts["b"].bind(2)
    arrivals = []

    def receiver(sim, dst):
        for _ in range(2):
            frame = yield dst.recv()
            arrivals.append(sim.now)

    sim.spawn(receiver(sim, dst))
    f1 = src.send("b", 2, b"y" * 931)  # ~1000B -> 1s transfer
    f2 = src.send("b", 2, b"y" * 931)
    sim.run()
    # The second frame waits for the first to finish transmitting.
    assert arrivals[1] == pytest.approx(arrivals[0] * 2)


def test_opposite_directions_do_not_serialize():
    sim, net = two_host_net(latency=0.0, bandwidth=1000.0)
    a = net.hosts["a"].bind(1)
    b = net.hosts["b"].bind(1)
    arrivals = {}

    def receiver(sim, ep, tag):
        frame = yield ep.recv()
        arrivals[tag] = sim.now

    sim.spawn(receiver(sim, a, "at_a"))
    sim.spawn(receiver(sim, b, "at_b"))
    a.send("b", 1, b"z" * 931)
    b.send("a", 1, b"z" * 931)
    sim.run()
    # Full duplex: both ~1s, not 2s.
    assert arrivals["at_a"] == pytest.approx(arrivals["at_b"])
    assert arrivals["at_a"] < 1.5


def test_multi_hop_routing_accumulates_latency():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "m", "b"):
        net.add_host(name)
    net.add_link("a", "m", 0.010)
    net.add_link("m", "b", 0.020)
    src = net.hosts["a"].bind(1)
    dst = net.hosts["b"].bind(2)
    got = []

    def receiver(sim, dst):
        yield dst.recv()
        got.append(sim.now)

    sim.spawn(receiver(sim, dst))
    src.send("b", 2, "hop")
    sim.run()
    assert got == [pytest.approx(0.030)]
    assert net.route("a", "b") == ["a", "m", "b"]
    assert net.path_latency("a", "b") == pytest.approx(0.030)


def test_routing_prefers_low_latency_path():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "fast", "slow", "b"):
        net.add_host(name)
    net.add_link("a", "slow", 0.100)
    net.add_link("slow", "b", 0.100)
    net.add_link("a", "fast", 0.001)
    net.add_link("fast", "b", 0.001)
    assert net.route("a", "b") == ["a", "fast", "b"]


def test_no_route_raises():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("island")
    src = net.hosts["a"].bind(1)
    with pytest.raises(NetworkError):
        src.send("island", 1, "unreachable")


def test_unknown_destination_raises():
    sim, net = two_host_net()
    src = net.hosts["a"].bind(1)
    with pytest.raises(NetworkError):
        src.send("ghost", 1, "x")


def test_loopback_same_host():
    sim, net = two_host_net()
    a1 = net.hosts["a"].bind(1)
    a2 = net.hosts["a"].bind(2)
    got = []

    def receiver(sim, ep):
        frame = yield ep.recv()
        got.append((frame.payload, sim.now))

    sim.spawn(receiver(sim, a2))
    a1.send("a", 2, "local")
    sim.run()
    assert got == [("local", 0.0)]


def test_unbound_port_drops_frame():
    sim, net = two_host_net()
    src = net.hosts["a"].bind(1)
    src.send("b", 9999, "void")
    sim.run()
    assert len(net.dropped) == 1
    assert net.dropped[0].payload == "void"


def test_port_rebind_rejected_until_close():
    sim, net = two_host_net()
    ep = net.hosts["a"].bind(5)
    with pytest.raises(ValueError):
        net.hosts["a"].bind(5)
    ep.close()
    net.hosts["a"].bind(5)  # fine after close


def test_endpoint_try_recv_and_pending():
    sim, net = two_host_net(latency=0.001)
    src = net.hosts["a"].bind(1)
    dst = net.hosts["b"].bind(2)
    assert dst.try_recv() is None
    src.send("b", 2, "one")
    src.send("b", 2, "two")
    sim.run()
    assert dst.pending() == 2
    assert dst.try_recv().payload == "one"
    assert dst.try_recv().payload == "two"


def test_host_cpu_queueing():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("srv", cpu_capacity=1)
    done = []

    def job(sim, host, tag):
        yield from host.use_cpu(1.0)
        done.append((tag, sim.now))

    sim.spawn(job(sim, host, "j1"))
    sim.spawn(job(sim, host, "j2"))
    sim.run()
    assert done == [("j1", 1.0), ("j2", 2.0)]
    assert host.busy_time == pytest.approx(2.0)


def test_host_cpu_parallel_capacity():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("srv", cpu_capacity=2)
    done = []

    def job(sim, host, tag):
        yield from host.use_cpu(1.0)
        done.append(sim.now)

    for tag in range(2):
        sim.spawn(job(sim, host, tag))
    sim.run()
    assert done == [1.0, 1.0]
