"""Property tests for the network: conservation, routing, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network, build_multi_domain
from repro.sim import Simulator


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                          st.integers(0, 5)),
                min_size=1, max_size=30))
def test_every_frame_delivered_exactly_once(sends):
    """Random sends between bound endpoints: all frames arrive, none are
    duplicated or lost, and latency is never negative."""
    sim = Simulator()
    net = Network(sim)
    rng_ports = {}
    for i in range(4):
        net.add_host(f"h{i}")
    for i in range(4):
        for j in range(i + 1, 4):
            net.add_link(f"h{i}", f"h{j}", latency=0.001 * (i + j + 1))
    endpoints = {}
    received = []
    for i in range(4):
        for p in range(6):
            ep = net.hosts[f"h{i}"].bind(1000 + p)
            endpoints[(i, p)] = ep

    def drain(ep):
        while True:
            frame = yield ep.recv()
            received.append(frame)

    for ep in endpoints.values():
        sim.spawn(drain(ep))

    sent = 0
    for src, dst, port in sends:
        if src == dst:
            continue
        endpoints[(src, 0)].send(f"h{dst}", 1000 + port, f"m{sent}")
        sent += 1
    sim.run(until=10.0)
    assert len(received) == sent
    assert len({f.frame_id for f in received}) == sent
    assert all(f.latency is not None and f.latency >= 0 for f in received)
    assert not net.dropped
    assert net.dropped_count == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 5))
def test_route_symmetry_and_triangle_inequality(n_domains):
    sim = Simulator()
    net, domains = build_multi_domain(sim, n_domains, 1, 1)
    names = [d.server.name for d in domains]
    for a in names:
        for b in names:
            if a == b:
                continue
            # symmetric latencies on an undirected graph
            assert net.path_latency(a, b) == pytest.approx(
                net.path_latency(b, a))
    # triangle inequality over the shortest-path metric
    for a in names:
        for b in names:
            for c in names:
                if len({a, b, c}) == 3:
                    assert (net.path_latency(a, c)
                            <= net.path_latency(a, b)
                            + net.path_latency(b, c) + 1e-12)


def test_trace_bytes_include_frame_overhead():
    sim = Simulator()
    net = Network(sim, frame_overhead=100)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 0.001)
    src = net.hosts["a"].bind(1)
    net.hosts["b"].bind(2)
    frame = src.send("b", 2, b"x" * 50)
    sim.run()
    from repro.wire import encoded_size
    assert frame.size == encoded_size(b"x" * 50) + 100
    assert net.trace.total.bytes == frame.size
