"""E9 — §6.1: "With the peer-to-peer server network in place, the number of
simultaneous applications that can be supported should further increase."

Hold per-server load at a healthy 30 applications and grow the network:
with k servers the deployment carries 30k applications at flat per-server
update lag, while a single server given the same total saturates.  The
shape: aggregate capacity scales with server count.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import pipeline_counters, run_app_scalability
from repro.bench.workload import make_app_farm
from repro.core.deployment import build_collaboratory
from repro.metrics import LatencyRecorder

APPS_PER_SERVER = 30
SWEEP = (1, 2, 4)
DURATION = 15.0


def _p2p_run(n_servers: int) -> dict:
    collab = build_collaboratory(n_servers, apps_hosts_per_domain=4,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    recorder = LatencyRecorder(collab.sim)
    for d in range(n_servers):
        collab.server_of(d).recorder = recorder
        make_app_farm(collab, APPS_PER_SERVER, domain_index=d, user="bench")
    collab.sim.run(until=collab.sim.now + DURATION)
    stats = recorder.stats("update_lag")
    total = n_servers * APPS_PER_SERVER
    return {
        "deployment": f"p2p x{n_servers}",
        "n_servers": n_servers,
        "total_apps": total,
        "mean_lag_ms": stats.mean * 1e3,
        "p90_lag_ms": stats.p90 * 1e3,
        "throughput_per_s": stats.count / DURATION,
        "saturated": stats.mean > 0.5,
        **pipeline_counters(collab.servers.values()),
    }


def _central_run(total_apps: int) -> dict:
    row = run_app_scalability(total_apps, duration=DURATION)
    return {
        "deployment": "single server",
        "n_servers": 1,
        "total_apps": total_apps,
        "mean_lag_ms": row["mean_lag_ms"],
        "p90_lag_ms": row["p90_lag_ms"],
        "throughput_per_s": row["throughput_per_s"],
        "saturated": row["saturated"],
        **{k: row[k] for k in ("http_requests", "orb_requests",
                               "channel_requests", "pipeline_errors",
                               "sessions_expired")},
    }


def test_bench_e9_network_scalability(benchmark):
    def scenario():
        rows = []
        for k in SWEEP:
            rows.append(_p2p_run(k))
        # the strawman: one server carrying the 4-server total
        rows.append(_central_run(APPS_PER_SERVER * SWEEP[-1]))
        return rows

    rows = run_once(benchmark, scenario)
    print_experiment(
        "E9: aggregate application capacity of the server network",
        "with the peer-to-peer server network in place, the number of "
        "simultaneous applications ... should further increase",
        rows,
        ["deployment", "n_servers", "total_apps", "mean_lag_ms",
         "p90_lag_ms", "throughput_per_s", "saturated",
         "channel_requests", "orb_requests"],
        finding=_finding(rows),
    )
    p2p = [r for r in rows if r["deployment"].startswith("p2p")]
    central = rows[-1]
    # per-server lag stays flat as the network grows
    assert all(not r["saturated"] for r in p2p)
    assert p2p[-1]["mean_lag_ms"] < 3 * p2p[0]["mean_lag_ms"]
    # the same total on one server saturates
    assert central["saturated"]
    assert central["mean_lag_ms"] > 5 * p2p[-1]["mean_lag_ms"]


def _finding(rows) -> str:
    p2p = [r for r in rows if r["deployment"].startswith("p2p")]
    central = rows[-1]
    return (f"{p2p[-1]['total_apps']} apps across "
            f"{p2p[-1]['n_servers']} servers: lag "
            f"{p2p[-1]['mean_lag_ms']:.0f}ms (flat); same total on one "
            f"server: {central['mean_lag_ms']:.0f}ms (saturated)")
