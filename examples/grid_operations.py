"""Operating a large server network — the paper's §6.3 hardening features.

Eight collaboratory domains run with the three mechanisms §6.3 proposes or
sketches, all implemented in this reproduction:

1. **GIS-style user directory** — login is one directory lookup instead of
   authenticating against all 7 peers (compare the two timings printed).
2. **Resource accounting & access policies** — every peer's ORB traffic is
   tracked, and one overly chatty server is throttled to a request budget.
3. **Poll-mode updates** — the literal "CorbaProxy objects poll each
   other" design, enabled per deployment for comparison.

Run:  python examples/grid_operations.py
"""

from repro import AppConfig, build_collaboratory
from repro.apps import SyntheticApp
from repro.core.policies import ResourcePolicy
from repro.orb import RemoteException

N_DOMAINS = 8


def cfg():
    return AppConfig(steps_per_phase=4, step_time=0.02,
                     interaction_window=0.05)


def timed_login(collab, domain, user):
    portal = collab.add_portal(domain)

    def go():
        t0 = collab.sim.now
        apps = yield from portal.login(user)
        return (collab.sim.now - t0, len(apps))

    return collab.sim.run(until=collab.sim.spawn(go()))


def main() -> None:
    # --- 1. directory vs fan-out login ---------------------------------
    results = {}
    for use_directory in (False, True):
        collab = build_collaboratory(
            N_DOMAINS, apps_hosts_per_domain=1, client_hosts_per_domain=1,
            use_directory=use_directory)
        collab.run_bootstrap()
        for d in range(N_DOMAINS):
            collab.add_app(d, SyntheticApp, f"app-{d}",
                           acl={"operator": "write"}, config=cfg())
        collab.sim.run(until=collab.sim.now + 3.0)
        latency, n_apps = timed_login(collab, 0, "operator")
        mode = "directory" if use_directory else "fan-out "
        results[mode] = (latency, n_apps)
        print(f"login via {mode}: {latency * 1e3:6.1f} ms, "
              f"{n_apps} apps listed network-wide")
        if use_directory:
            directory_collab = collab
    assert results["directory"][1] == results["fan-out "][1]
    print(f"directory speedup: "
          f"{results['fan-out '][0] / results['directory'][0]:.1f}x\n")

    # --- 2. accounting + throttling a chatty peer ------------------------
    collab = directory_collab
    s0 = collab.server_of(0)
    s1 = collab.server_of(1)
    s0.policies.set_policy(s1.host.name,
                           ResourcePolicy(max_requests_per_s=2.0,
                                          burst_seconds=1.0))

    def chatty_peer():
        ok, denied = 0, 0
        for _ in range(10):
            try:
                yield from s1.orb.invoke(s1.peers[s0.name],
                                         "get_active_applications")
                ok += 1
            except RemoteException as exc:
                assert exc.exc_type == "PolicyViolation"
                denied += 1
        return ok, denied

    ok, denied = collab.sim.run(until=collab.sim.spawn(chatty_peer()))
    usage = s0.policies.ledger.usage(s1.host.name)
    print(f"chatty peer throttled: {ok} admitted, {denied} rejected "
          f"(ledger: {usage.requests} requests, "
          f"{usage.rejected} rejections)")
    ledger = s0.policies.ledger
    print(f"server {s0.name} accounted traffic from: "
          f"{ledger.principals()}\n")

    # --- 3. poll-mode updates --------------------------------------------
    poll_collab = build_collaboratory(
        2, apps_hosts_per_domain=1, client_hosts_per_domain=1,
        update_mode="poll", update_poll_interval=0.4)
    poll_collab.run_bootstrap()
    app = poll_collab.add_app(1, SyntheticApp, "polled-app",
                              acl={"operator": "write"}, config=cfg())
    poll_collab.sim.run(until=poll_collab.sim.now + 3.0)
    portal = poll_collab.add_portal(0)

    def watch():
        yield from portal.login("operator")
        yield from portal.open(app.app_id)
        yield portal.sim.timeout(4.0)
        yield from portal.poll(max_items=64)
        return len(portal.updates)

    n = poll_collab.sim.run(until=poll_collab.sim.spawn(watch()))
    home = poll_collab.server_of(1)
    print(f"poll-mode: {n} updates delivered across the WAN with "
          f"{home.stats['remote_update_pushes']} pushes "
          f"(the subscriber polled instead)")
    assert home.stats["remote_update_pushes"] == 0
    assert n >= 2


if __name__ == "__main__":
    main()
