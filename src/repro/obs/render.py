"""Human-readable trace rendering for the ``repro trace`` CLI.

Kept inside :mod:`repro.obs` so span internals never leak into the CLI —
callers hand over a :class:`~repro.obs.store.SpanStore` and get text back
(the obs boundary lint enforces the split).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.obs.store import SpanStore


def _ms(seconds: Optional[float]) -> str:
    return "?" if seconds is None else f"{seconds * 1e3:.2f}"


def format_trace_summary(store: SpanStore) -> str:
    """One line per trace: root op, span count, servers, duration."""
    lines = ["trace  root                      spans  servers  duration_ms"]
    for trace_id in store.trace_ids():
        spans = store.spans(trace_id)
        roots = [s for s in spans if s.parent_id is None]
        root = roots[0] if roots else spans[0]
        lines.append(
            f"{trace_id:5d}  {root.op[:24]:<24}  {len(spans):5d}  "
            f"{len(store.servers(trace_id)):7d}  "
            f"{_ms(root.duration if root.end is not None else None):>11}")
    if len(lines) == 1:
        lines.append("(no traces recorded)")
    return "\n".join(lines)


def format_trace_tree(store: SpanStore, trace_id: int) -> str:
    """The reconstructed span tree, indented, with virtual timestamps."""
    roots = store.tree(trace_id)
    if not roots:
        return f"(no spans for trace {trace_id})"
    lines = [f"trace {trace_id} "
             f"(servers: {', '.join(store.servers(trace_id)) or '-'})"]
    for root in roots:
        for depth, node in root.walk():
            span = node.span
            where = f"{span.plane}@{span.server}" if span.server else span.plane
            mark = "" if span.status == "ok" else f"  !! {span.error}"
            lines.append(
                f"  {'  ' * depth}{span.op}  [{where}]  "
                f"t={span.start:.4f}s  +{_ms(span.duration)}ms{mark}")
    return "\n".join(lines)


def format_critical_path(store: SpanStore, trace_id: int) -> str:
    """The critical path: chronological segments, then the per-span
    contribution ranking that names the dominant hop/layer."""
    segments = store.critical_path(trace_id)
    if not segments:
        return f"(no critical path for trace {trace_id})"
    total = sum(seg.duration for seg in segments)
    lines = [f"critical path of trace {trace_id} "
             f"(end-to-end {_ms(total)}ms):"]
    for seg in segments:
        span = seg.span
        where = f"{span.plane}@{span.server}" if span.server else span.plane
        lines.append(f"  {seg.start:.4f}s  +{_ms(seg.duration):>8}ms  "
                     f"{span.op}  [{where}]")
    contrib = defaultdict(float)
    for seg in segments:
        where = (f"{seg.span.plane}@{seg.span.server}"
                 if seg.span.server else seg.span.plane)
        contrib[(seg.span.op, where)] += seg.duration
    lines.append("dominant contributors:")
    for (op, where), duration in sorted(contrib.items(),
                                        key=lambda kv: -kv[1]):
        share = 100.0 * duration / total if total > 0 else 0.0
        lines.append(f"  {_ms(duration):>8}ms  {share:5.1f}%  "
                     f"{op}  [{where}]")
    return "\n".join(lines)
