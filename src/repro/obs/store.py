"""SpanStore: bounded span retention, tree reconstruction, critical path.

The store is deliberately dumb on the write path (append to a list, index
by trace id) so recording stays cheap inside dispatch loops; all analysis
— tree assembly, per-plane latency reduction, critical-path extraction —
happens on demand at read time.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.metrics.stats import SummaryStats, summarize
from repro.obs.span import Span

#: default retention; at ~200 bytes/span this bounds the store near 10 MB
DEFAULT_MAX_SPANS = 50_000


class SpanNode:
    """One span plus its children, sorted by virtual start time."""

    __slots__ = ("span", "children")

    def __init__(self, span: Span) -> None:
        self.span = span
        self.children: List["SpanNode"] = []

    def walk(self):
        """Yield ``(depth, node)`` depth-first, children in start order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpanNode {self.span.op!r} +{len(self.children)}>"


class PathSegment(NamedTuple):
    """One stretch of the critical path, attributed to one span."""

    span: Span
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanStore:
    """Bounded storage of finished spans, indexed by trace."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._spans: List[Span] = []
        self._by_trace: Dict[int, List[Span]] = {}
        #: spans rejected because the store was full
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    # -- write path --------------------------------------------------------
    def add(self, span: Span) -> bool:
        """Retain a finished span; False (and counted) once full."""
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return False
        self._spans.append(span)
        self._by_trace.setdefault(span.trace_id, []).append(span)
        return True

    def clear(self) -> None:
        self._spans.clear()
        self._by_trace.clear()
        self.dropped = 0

    # -- lookup ------------------------------------------------------------
    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        if trace_id is None:
            return list(self._spans)
        return list(self._by_trace.get(trace_id, ()))

    def trace_ids(self) -> List[int]:
        return sorted(self._by_trace)

    def trace_of_root(self, op: str) -> Optional[int]:
        """The first trace whose root span runs ``op`` (None if absent)."""
        for trace_id in self.trace_ids():
            for span in self._by_trace[trace_id]:
                if span.parent_id is None and span.op == op:
                    return trace_id
        return None

    # -- tree reconstruction -----------------------------------------------
    def tree(self, trace_id: int) -> List[SpanNode]:
        """Root :class:`SpanNode` list for one trace.

        A well-propagated trace has exactly one root; spans whose parent
        was dropped (store overflow) surface as extra roots rather than
        disappearing.
        """
        nodes = {span.span_id: SpanNode(span)
                 for span in self._by_trace.get(trace_id, ())}
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = nodes.get(node.span.parent_id)
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.span.start, n.span.span_id))
        roots.sort(key=lambda n: (n.span.start, n.span.span_id))
        return roots

    def servers(self, trace_id: int) -> List[str]:
        """Distinct non-empty server names a trace touched."""
        return sorted({span.server
                       for span in self._by_trace.get(trace_id, ())
                       if span.server})

    # -- critical path -----------------------------------------------------
    def critical_path(self, trace_id: int) -> List[PathSegment]:
        """The chain of spans that bounds the trace's end-to-end latency.

        Walks backward from the root's finish: within each span, time
        covered by a child is attributed to (the critical path through)
        that child, picking the latest-finishing child first; gaps between
        children — queueing, marshalling, reply transit — stay attributed
        to the span itself.  Segments are returned in chronological order
        and sum to the root's duration.
        """
        roots = self.tree(trace_id)
        if not roots:
            return []
        root = roots[0]
        segments: List[PathSegment] = []
        self._walk_critical(root, root.span.end or root.span.start, segments)
        segments.reverse()
        return [seg for seg in segments if seg.duration > 0.0]

    def _walk_critical(self, node: SpanNode, bound_end: float,
                       segments: List[PathSegment]) -> None:
        # Appends segments in reverse-chronological order (caller reverses).
        span = node.span
        end = span.end if span.end is not None else span.start
        t = min(end, bound_end)
        for child in sorted(node.children,
                            key=lambda n: (n.span.end or n.span.start),
                            reverse=True):
            c = child.span
            c_end = c.end if c.end is not None else c.start
            if c.start >= t or c_end <= span.start:
                continue  # outside the remaining window (e.g. reply hops)
            c_end = min(c_end, t)
            if c_end < t:
                segments.append(PathSegment(span, c_end, t))
            self._walk_critical(child, c_end, segments)
            t = max(c.start, span.start)
            if t <= span.start:
                break
        if t > span.start:
            segments.append(PathSegment(span, span.start, t))

    # -- reduction ---------------------------------------------------------
    def latency_stats(self, plane: Optional[str] = None,
                      op: Optional[str] = None) -> SummaryStats:
        """Duration stats over finished spans, filtered by plane/op."""
        samples = [span.duration for span in self._spans
                   if span.end is not None
                   and (plane is None or span.plane == plane)
                   and (op is None or span.op == op)]
        return summarize(samples)

    def planes(self) -> List[str]:
        return sorted({span.plane for span in self._spans if span.plane})

    def snapshot(self) -> dict:
        """Plain-dict summary (durations in ms) for the metrics registry."""
        out = {
            "spans": len(self._spans),
            "traces": len(self._by_trace),
            "dropped": self.dropped,
        }
        by_plane = {}
        for plane in self.planes():
            stats = self.latency_stats(plane).scaled(1e3)
            by_plane[plane] = {
                "count": stats.count,
                "mean_ms": stats.mean,
                "p90_ms": stats.p90,
            }
        out["by_plane"] = by_plane
        return out
