"""Summary statistics over latency samples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Reduction of a sample set, in the units of the samples."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def scaled(self, factor: float) -> "SummaryStats":
        """Same stats in different units (e.g. seconds → milliseconds)."""
        return SummaryStats(self.count, self.mean * factor,
                            self.std * factor, self.minimum * factor,
                            self.p50 * factor, self.p90 * factor,
                            self.p99 * factor, self.maximum * factor)

    def row(self, ndigits: int = 2) -> str:
        """One human-readable table row."""
        return (f"n={self.count:5d}  mean={self.mean:9.{ndigits}f}  "
                f"p50={self.p50:9.{ndigits}f}  p90={self.p90:9.{ndigits}f}  "
                f"p99={self.p99:9.{ndigits}f}  max={self.maximum:9.{ndigits}f}")


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Reduce ``samples`` to :class:`SummaryStats` (empty → all zeros)."""
    if len(samples) == 0:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(samples, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )
