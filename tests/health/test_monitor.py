"""HealthMonitor wiring: heartbeats, app folding, gossip, shutdown."""

import pytest

from repro.core.deployment import build_collaboratory, build_single_server
from repro.health import STATUS_HEALTHY, STATUS_UNHEALTHY, STATUS_UNKNOWN


@pytest.fixture()
def collab():
    c = build_single_server(app_hosts=1, client_hosts=1)
    c.run_bootstrap()
    yield c
    c.stop()


class TestHeartbeat:
    def test_heartbeats_advance_with_sim_time(self, collab):
        server = collab.server_of(0)
        before = server.health.counters["heartbeats"]
        collab.sim.run(until=collab.sim.now + 5.0)
        assert server.health.counters["heartbeats"] >= before + 9

    def test_server_marks_itself_healthy(self, collab):
        server = collab.server_of(0)
        collab.sim.run(until=collab.sim.now + 2.0)
        key = server.health.server_key(server.name)
        assert server.health.status_of(key) == STATUS_HEALTHY

    def test_app_proxy_tracked(self, collab):
        from repro.apps import SyntheticApp
        app = collab.add_app(0, SyntheticApp, "mon-app",
                             acl={"alice": "write"})
        collab.sim.run(until=collab.sim.now + 3.0)
        server = collab.server_of(0)
        key = server.health.app_key(app.app_id)
        assert server.health.status_of(key) == STATUS_HEALTHY
        # a stopped proxy misses heartbeats until it goes unhealthy
        server.local_proxies[app.app_id].active = False
        collab.sim.run(until=collab.sim.now + 3.0)
        assert server.health.status_of(key) == STATUS_UNHEALTHY

    def test_disabled_monitor_spawns_nothing(self):
        c = build_collaboratory(1, apps_hosts_per_domain=1,
                                client_hosts_per_domain=1,
                                health_enabled=False)
        c.run_bootstrap()
        server = c.server_of(0)
        collab_now = c.sim.now
        c.sim.run(until=collab_now + 3.0)
        assert server.health.counters["heartbeats"] == 0
        key = server.health.server_key(server.name)
        assert server.health.status_of(key) == STATUS_UNKNOWN
        server.health.note_peer_failure("ghost")  # no-op when disabled
        assert not server.health.is_unhealthy_peer("ghost")
        c.stop()

    def test_stop_interrupts_processes(self, collab):
        server = collab.server_of(0)
        procs = list(server.health._procs)
        assert procs and all(p.is_alive for p in procs)
        server.health.stop()
        # the interrupt is delivered on the next sim step; afterwards the
        # sim drains instead of the beat keeping it alive forever
        collab.sim.run()
        assert all(not p.is_alive for p in procs)


class TestGossip:
    def test_exchange_merges_and_answers(self, collab):
        server = collab.server_of(0)
        collab.sim.run(until=collab.sim.now + 1.0)
        view = {"server": "peer-x", "time": collab.sim.now,
                "statuses": {"server:far": STATUS_UNHEALTHY}}
        answer = server.health.exchange("peer-x", view)
        assert answer["server"] == server.name
        assert "statuses" in answer
        # the gossiped component appears in the fleet view
        assert server.health.fleet_view()["server:far"] == STATUS_UNHEALTHY
        # receiving gossip proves the sender alive
        assert server.health.peer_status("peer-x") == STATUS_HEALTHY

    def test_local_observation_wins_over_gossip(self, collab):
        server = collab.server_of(0)
        collab.sim.run(until=collab.sim.now + 1.0)
        key = server.health.server_key(server.name)
        stale = {"server": "peer-x", "time": collab.sim.now + 100.0,
                 "statuses": {key: STATUS_UNHEALTHY}}
        server.health.exchange("peer-x", stale)
        # a peer's (even newer) claim about *us* loses to direct obs
        assert server.health.fleet_view()[key] == STATUS_HEALTHY

    def test_newest_stamp_wins_per_peer(self, collab):
        server = collab.server_of(0)
        server.health.merge_peer_view(
            "p", {"time": 5.0, "statuses": {"server:z": STATUS_UNHEALTHY}})
        server.health.merge_peer_view(
            "p", {"time": 2.0, "statuses": {"server:z": STATUS_HEALTHY}})
        assert server.health.fleet_view()["server:z"] == STATUS_UNHEALTHY

    def test_gossip_converges_across_deployment(self):
        c = build_collaboratory(2, apps_hosts_per_domain=1,
                                client_hosts_per_domain=1,
                                health_gossip_period=0.5)
        c.run_bootstrap()
        c.sim.run(until=c.sim.now + 4.0)
        a, b = c.server_of(0), c.server_of(1)
        assert a.health.counters["gossip_rounds"] > 0
        # each server's fleet view includes the other's self-status
        assert a.health.fleet_view()[
            a.health.server_key(b.name)] == STATUS_HEALTHY
        assert b.health.fleet_view()[
            b.health.server_key(a.name)] == STATUS_HEALTHY
        c.stop()


class TestSnapshotSurface:
    def test_snapshot_in_metrics_registry(self, collab):
        collab.sim.run(until=collab.sim.now + 2.0)
        snap = collab.metrics_registry().snapshot()
        server = collab.server_of(0)
        health = snap[f"health[{server.name}]"]
        assert health["counts"][STATUS_HEALTHY] >= 1
        assert "slo" in health and "counters" in health

    def test_server_metrics_registry_includes_health_and_log(self, collab):
        server = collab.server_of(0)
        collab.sim.run(until=collab.sim.now + 1.0)
        snap = server.metrics_registry().snapshot()
        assert f"health[{server.name}]" in snap
        assert f"log[{server.name}]" in snap
