"""The CI boundary lint must hold on the checked-in tree."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parents[2]


def test_dispatch_modules_do_not_import_security_or_policies():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_pipeline_boundary.py"),
         str(ROOT)],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert "pipeline boundary OK" in proc.stdout
