"""Portable-interceptor request pipeline shared by all three planes.

- :mod:`repro.pipeline.core` — :class:`RequestContext`,
  :class:`Interceptor`, :class:`Pipeline` (plane-neutral, dependency-free).
- :mod:`repro.pipeline.interceptors` — the standard cross-cutting chain:
  security, admission, error envelope, metrics.

The interceptor re-exports below are lazy (PEP 562): dispatch modules
import :mod:`repro.pipeline.core` while this package initializes, so the
package ``__init__`` must not pull in :mod:`repro.pipeline.interceptors`
(which imports the core managers, which import the dispatch modules).
"""

from repro.pipeline.core import (
    PLANE_CHANNEL,
    PLANE_HTTP,
    PLANE_ORB,
    PLANES,
    Interceptor,
    Pipeline,
    RequestContext,
)

_INTERCEPTOR_EXPORTS = (
    "AdmissionInterceptor",
    "ErrorEnvelopeInterceptor",
    "MetricsInterceptor",
    "SecurityInterceptor",
    "default_pipeline",
)

__all__ = [
    "PLANES",
    "PLANE_CHANNEL",
    "PLANE_HTTP",
    "PLANE_ORB",
    "Interceptor",
    "Pipeline",
    "RequestContext",
    *_INTERCEPTOR_EXPORTS,
]


def __getattr__(name):
    if name in _INTERCEPTOR_EXPORTS:
        from repro.pipeline import interceptors

        return getattr(interceptors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
