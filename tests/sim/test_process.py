"""Tests for process semantics: join, return values, interrupts, errors."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, SimulationError, Simulator


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def worker(sim):
        yield sim.timeout(2.0)
        return "done"

    def parent(sim):
        child = sim.spawn(worker(sim))
        results.append((yield child))

    sim.spawn(parent(sim))
    sim.run()
    assert results == ["done"]


def test_joining_dead_process_resumes_immediately():
    sim = Simulator()
    results = []

    def worker(sim):
        yield sim.timeout(1.0)
        return 7

    def parent(sim, child):
        yield sim.timeout(5.0)  # child is long dead by now
        results.append((yield child))
        results.append(sim.now)

    child = sim.spawn(worker(sim))
    sim.spawn(parent(sim, child))
    sim.run()
    assert results == [7, 5.0]


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)

    p = sim.spawn(worker(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    def parent(sim):
        child = sim.spawn(bad(sim))
        try:
            yield child
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["exploded"]


def test_unjoined_process_exception_surfaces_from_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.spawn(bad(sim))
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()
    caught = []

    def confused(sim):
        try:
            yield 42
        except SimulationError as exc:
            caught.append("caught")

    sim.spawn(confused(sim))
    sim.run()
    assert caught == ["caught"]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt("wake up")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupted_process_can_keep_running():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt()

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    sim.run()
    assert log == [3.0]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    sim = Simulator()
    errors = []

    def narcissist(sim):
        try:
            me = sim.active_process
            me.interrupt()
        except SimulationError:
            errors.append("rejected")
        yield sim.timeout(0)

    sim.spawn(narcissist(sim))
    sim.run()
    assert errors == ["rejected"]


def test_anyof_fires_on_first():
    sim = Simulator()
    results = []

    def waiter(sim):
        t_fast = sim.timeout(1.0, value="fast")
        t_slow = sim.timeout(10.0, value="slow")
        fired = yield AnyOf(sim, [t_fast, t_slow])
        results.append((sim.now, list(fired.values())))

    sim.spawn(waiter(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]


def test_allof_waits_for_all():
    sim = Simulator()
    results = []

    def waiter(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(4.0, value="b")
        fired = yield AllOf(sim, [t1, t2])
        results.append((sim.now, sorted(fired.values())))

    sim.spawn(waiter(sim))
    sim.run()
    assert results == [(4.0, ["a", "b"])]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    results = []

    def waiter(sim):
        yield AllOf(sim, [])
        results.append(sim.now)

    sim.spawn(waiter(sim))
    sim.run()
    assert results == [0.0]


def test_condition_propagates_failure():
    sim = Simulator()
    caught = []

    def waiter(sim, ev):
        try:
            yield AllOf(sim, [ev, sim.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = sim.event()
    sim.spawn(waiter(sim, ev))
    sim.call_later(1.0, lambda: ev.fail(RuntimeError("bad member")))
    sim.run()
    assert caught == ["bad member"]


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_process_names():
    sim = Simulator()

    def mytask(sim):
        yield sim.timeout(1)

    p1 = sim.spawn(mytask(sim))
    p2 = sim.spawn(mytask(sim), name="custom")
    assert p1.name == "mytask"
    assert p2.name == "custom"
    sim.run()


def test_nested_spawning():
    sim = Simulator()
    order = []

    def grandchild(sim):
        yield sim.timeout(1.0)
        order.append("grandchild")

    def child(sim):
        gc = sim.spawn(grandchild(sim))
        yield gc
        order.append("child")

    def root(sim):
        c = sim.spawn(child(sim))
        yield c
        order.append("root")

    sim.spawn(root(sim))
    sim.run()
    assert order == ["grandchild", "child", "root"]
