"""Benchmark-suite configuration.

Each benchmark runs its scenario once (``pedantic`` round) — the interesting
output is the regenerated paper table printed to stdout (run with ``-s``),
with wall-clock cost tracked by pytest-benchmark as a bonus.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    result = {}

    def wrapper():
        result["value"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return result["value"]
