"""Scripted client behaviours and application farms.

These are the browser users of §6.1's experiments: *monitors* poll their
server on a fixed cadence; *engineers* additionally issue steering commands
and wait for responses.  Both record client-visible latencies into a
:class:`~repro.metrics.LatencyRecorder`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.apps import SyntheticApp
from repro.client import DiscoverPortal, PortalError
from repro.metrics import LatencyRecorder
from repro.steering import AppConfig
from repro.web import HttpError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Collaboratory
    from repro.steering import SteerableApplication


def bench_app_config(update_period: float = 0.5,
                     steps_per_phase: int = 10) -> AppConfig:
    """Application cadence used across benchmarks: one update per
    ``update_period`` of virtual time (compute phase + interaction window)."""
    step_time = update_period / (steps_per_phase + 1)
    return AppConfig(steps_per_phase=steps_per_phase, step_time=step_time,
                     interaction_window=step_time,
                     command_service_time=0.002)


def make_app_farm(collab: "Collaboratory", n_apps: int, *,
                  domain_index: int = 0, user: str = "bench",
                  update_period: float = 0.5,
                  payload_floats: int = 16) -> List["SteerableApplication"]:
    """Register ``n_apps`` synthetic applications in one domain.

    All grant ``user`` write access, so one bench client can reach them all.
    """
    apps = []
    for i in range(n_apps):
        app = collab.add_app(
            domain_index, SyntheticApp, f"bench-app-{domain_index}-{i}",
            acl={user: "write"},
            config=bench_app_config(update_period),
            payload_floats=payload_floats)
        apps.append(app)
    return apps


def polling_client(portal: DiscoverPortal, app_id: str, *, user: str,
                   duration: float, poll_interval: float,
                   recorder: LatencyRecorder, warmup: float = 0.0,
                   op: str = "poll_rtt"):
    """Process: log in, open the app, poll on a cadence, record poll RTTs.

    The client-visible metric of E2: the round-trip time of each poll
    request grows as the server CPU saturates.
    """
    sim = portal.sim
    yield from portal.login(user)
    yield from portal.open(app_id)
    deadline = sim.now + duration
    warm_until = sim.now + warmup
    while sim.now < deadline:
        t0 = sim.now
        try:
            yield from portal.poll(max_items=16)
        except HttpError:
            break
        if sim.now >= warm_until:
            recorder.record(op, sim.now - t0)
        remaining = deadline - sim.now
        if remaining <= 0:
            break
        yield sim.timeout(min(poll_interval, remaining))


def steering_client(portal: DiscoverPortal, app_id: str, *, user: str,
                    duration: float, command_interval: float,
                    recorder: LatencyRecorder, op: str = "steer_rtt",
                    command: str = "get_param",
                    args: Optional[dict] = None,
                    poll_interval: float = 0.05):
    """Process: repeatedly issue a command and wait for its response.

    Records command→response latency — the E6 metric (response latency for
    local vs remote applications).
    """
    sim = portal.sim
    yield from portal.login(user)
    session = yield from portal.open(app_id)
    deadline = sim.now + duration
    issued = 0
    while sim.now < deadline:
        t0 = sim.now
        try:
            request_id = yield from session.command(
                command, args or {"name": "gain"})
            yield from portal.wait_response(request_id, timeout=duration,
                                            poll_interval=poll_interval)
        except (PortalError, HttpError):
            break
        recorder.record(op, sim.now - t0)
        issued += 1
        remaining = deadline - sim.now
        if remaining <= 0:
            break
        yield sim.timeout(min(command_interval, remaining))
    return issued


def update_watching_client(portal: DiscoverPortal, app_id: str, *,
                           user: str, duration: float,
                           poll_interval: float,
                           recorder: LatencyRecorder,
                           op: str = "update_latency"):
    """Process: poll and record app-timestamp→client-receipt update latency.

    The E5 metric: how stale an update is by the time a collaborating
    client sees it (includes server fan-out, WAN pushes, and poll delay).
    """
    sim = portal.sim
    yield from portal.login(user)
    yield from portal.open(app_id)
    deadline = sim.now + duration
    seen = 0
    while sim.now < deadline:
        yield from portal.poll(max_items=32)
        while seen < len(portal.updates):
            update = portal.updates[seen]
            seen += 1
            if update.timestamp > 0:
                recorder.record(op, sim.now - update.timestamp)
        remaining = deadline - sim.now
        if remaining <= 0:
            break
        yield sim.timeout(min(poll_interval, remaining))


def resilient_steering_client(portal: DiscoverPortal, app_id: str, *,
                              user: str, duration: float,
                              command_interval: float, counts: dict,
                              command: str = "get_param",
                              args: Optional[dict] = None,
                              poll_interval: float = 0.05,
                              response_timeout: float = 5.0):
    """Process: steer on a cadence, surviving server failures.

    Unlike :func:`steering_client` (which stops on the first error — the
    steady-state E6 shape), this client treats failures as data: each
    command either lands (``counts["ok"]``) or fails
    (``counts["failed"]``), with per-outcome timestamps, and the loop
    always continues — the E10 fault-injection workload that measures
    failover from the client's chair.
    """
    sim = portal.sim
    counts.setdefault("ok", 0)
    counts.setdefault("failed", 0)
    counts.setdefault("ok_times", [])
    counts.setdefault("failed_times", [])
    yield from portal.login(user)
    session = yield from portal.open(app_id)
    deadline = sim.now + duration
    while sim.now < deadline:
        t0 = sim.now
        try:
            request_id = yield from session.command(
                command, args or {"name": "gain"})
            yield from portal.wait_response(request_id,
                                            timeout=response_timeout,
                                            poll_interval=poll_interval)
        except (PortalError, HttpError):
            counts["failed"] += 1
            counts["failed_times"].append(t0)
        else:
            counts["ok"] += 1
            counts["ok_times"].append(t0)
        remaining = deadline - sim.now
        if remaining <= 0:
            break
        yield sim.timeout(min(command_interval, remaining))
    return counts
