"""PeerRegistry: reference caches and their invalidation rules.

The satellite bugfix of this layer: a cached ``CorbaProxy`` stub/ref must
not outlive the application (``app_stopped``) or the peer (OrbError), so
deregister → re-register and server restarts resolve fresh references
instead of serving stale ones.
"""

import pytest

from repro import AppConfig, PortalError
from repro.apps import SyntheticApp
from repro.orb import OrbError

from tests.federation.conftest import cfg, run


def _warm_remote_cache(collab, app):
    """Open the app from server 1 so its level-two refs are cached there."""
    portal = collab.add_portal(1)

    def scenario():
        yield from portal.login("alice")
        yield from portal.open(app.app_id)

    run(collab, scenario())
    return portal


def test_select_populates_proxy_cache(pair):
    collab, app = pair
    s1 = collab.server_of(1)
    assert s1.registry.cached_apps() == []
    _warm_remote_cache(collab, app)
    assert s1.registry.cached_apps() == [app.app_id]


def test_app_stopped_notice_invalidates_cache(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    _warm_remote_cache(collab, app)
    assert app.app_id in s1.registry.cached_apps()
    # the application deregisters; its home pushes app_stopped to s1
    s0.on_app_deregister(app.app_id)
    collab.sim.run(until=collab.sim.now + 1.0)
    assert s1.registry.cached_apps() == []
    assert s1.federation_metrics.get("app_invalidations") >= 1


def test_orb_error_invalidates_peer_caches(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    portal = _warm_remote_cache(collab, app)
    assert app.app_id in s1.registry.cached_apps()
    s0.stop()  # the home server dies

    def failing_open():
        try:
            yield from portal.open(app.app_id)
        except PortalError as exc:
            return exc.status

    # the relay resolves from the warm cache, the call to the dead peer
    # fails, and every cache entry homed there is dropped
    assert run(collab, failing_open()) == 500
    assert s1.registry.cached_apps() == []
    assert s1.federation_metrics.get("peer_invalidations") >= 1


def test_deregister_reregister_then_select_succeeds(pair):
    """Regression: stale level-two caches must not break a later select."""
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    _warm_remote_cache(collab, app)
    s0.on_app_deregister(app.app_id)
    collab.sim.run(until=collab.sim.now + 1.0)
    assert s1.registry.cached_apps() == []
    # a replacement registers at the same home server
    fresh = collab.add_app(0, SyntheticApp, "wave",
                           acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=collab.sim.now + 2.0)
    portal = collab.add_portal(1)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(fresh.app_id)
        yield from session.acquire_lock()
        return (yield from session.set_param("gain", 7.0))

    assert run(collab, scenario()) == 7.0
    assert fresh.gain.value == 7.0


def test_add_peer_with_changed_ref_invalidates(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    _warm_remote_cache(collab, app)
    assert app.app_id in s1.registry.cached_apps()
    # re-adding under the same reference keeps the caches warm
    s1.add_peer(s0.name, s1.peers[s0.name])
    assert app.app_id in s1.registry.cached_apps()
    # a changed reference (restarted peer) drops everything homed there
    s1.add_peer(s0.name, s1.corba_ref)
    assert s1.registry.cached_apps() == []
    assert s1.federation_metrics.get("peer_invalidations") >= 1


def test_peer_stub_unknown_peer_raises(pair):
    collab, _app = pair
    s1 = collab.server_of(1)
    with pytest.raises(OrbError):
        s1.registry.peer_stub("ghost-server")


def test_check_peer_liveness(pair):
    collab, app = pair
    s0, s1 = collab.server_of(0), collab.server_of(1)
    _warm_remote_cache(collab, app)
    assert run(collab, s1.registry.check_peer(s0.name)) is True
    s0.stop()
    assert run(collab, s1.registry.check_peer(s0.name)) is False
    assert s1.registry.cached_apps() == []


def test_discover_peers_without_trader_surfaces_the_skip():
    """A server deployed traderless (fleet mode) must log and count the
    skipped discovery instead of silently returning no peers."""
    from repro.federation.registry import PeerRegistry
    from repro.metrics import FederationMetrics
    from repro.net import Network
    from repro.obs import StructuredLog
    from repro.orb import Orb
    from repro.sim import Simulator
    from tests.conftest import drive

    sim = Simulator()
    net = Network(sim)
    net.add_host("h0")
    registry = PeerRegistry(Orb(net.hosts["h0"]), "s0",
                            metrics=FederationMetrics())
    registry.log = StructuredLog(server="s0")
    assert drive(sim, registry.discover_peers()) == []
    assert registry.metrics.get("discovery_skipped") == 1
    records = registry.log.records(event="fed_discovery_skipped")
    assert records and records[0]["reason"] == "no trader_ref"
