"""Sensors: read-only views into application state."""

from __future__ import annotations

from typing import Any, Callable


class Sensor:
    """A named, callable view of application state.

    ``reader`` is invoked at read time so the value is always current.
    ``monitored`` sensors are included in every periodic update the
    application pushes to its server (the MainChannel payload).
    """

    def __init__(self, name: str, reader: Callable[[], Any], *,
                 units: str = "", monitored: bool = False,
                 description: str = "") -> None:
        if not callable(reader):
            raise TypeError(f"sensor {name!r} reader must be callable")
        self.name = name
        self.reader = reader
        self.units = units
        self.monitored = monitored
        self.description = description

    def read(self) -> Any:
        """Sample the sensor."""
        return self.reader()

    def descriptor(self) -> dict:
        """Wire-safe description advertised at registration."""
        return {
            "name": self.name,
            "units": self.units,
            "monitored": self.monitored,
            "description": self.description,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Sensor {self.name}>"
