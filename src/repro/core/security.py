"""Two-level security: server access + per-application ACLs.

Paper §5.2.2/§6.3: applications register with "a list of users and their
access privileges (e.g. read-only, read-write)", which the server turns
into per user-application ACLs.  A user may log in to a server only if they
appear on the ACL of at least one application registered there.  User-ids
"do not belong to a server but to an application/service", so they are
consistent network-wide.
"""

from __future__ import annotations

from typing import Dict, Optional

#: privilege levels, ordered: read-only monitoring vs read-write steering
READ = "read"
WRITE = "write"
_LEVEL = {READ: 1, WRITE: 2}

#: commands that require WRITE privilege (and, server-side, the lock)
MUTATING_COMMANDS = frozenset({"set_param", "actuate", "pause", "resume",
                               "stop"})


class SecurityError(Exception):
    """Authentication or authorization failure."""


def privilege_level(privilege: str) -> int:
    """Numeric ordering of privilege names."""
    try:
        return _LEVEL[privilege]
    except KeyError:
        raise SecurityError(f"unknown privilege {privilege!r}") from None


def required_privilege(command: str) -> str:
    """Privilege a steering command needs."""
    return WRITE if command in MUTATING_COMMANDS else READ


class AccessControlList:
    """user → privilege for one application."""

    def __init__(self, entries: Optional[Dict[str, str]] = None) -> None:
        self._entries: Dict[str, str] = {}
        for user, priv in (entries or {}).items():
            self.grant(user, priv)

    def grant(self, user: str, privilege: str) -> None:
        privilege_level(privilege)  # validates
        self._entries[user] = privilege

    def revoke(self, user: str) -> None:
        self._entries.pop(user, None)

    def privilege_of(self, user: str) -> Optional[str]:
        return self._entries.get(user)

    def allows(self, user: str, privilege: str) -> bool:
        """True if ``user`` holds at least ``privilege``."""
        held = self._entries.get(user)
        if held is None:
            return False
        return privilege_level(held) >= privilege_level(privilege)

    def users(self) -> list:
        return sorted(self._entries)

    def __contains__(self, user: str) -> bool:
        return user in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class SecurityManager:
    """The per-server security handler (paper's Security/Auth servlet).

    Application registration installs its ACL; user authentication checks
    membership in the union of registered ACLs; application access checks
    the specific ACL and returns the effective privilege.
    """

    def __init__(self) -> None:
        self._app_acls: Dict[str, AccessControlList] = {}
        #: pre-assigned application authentication tokens (§4.1: "Each
        #: application is authenticated at the server using a pre-assigned
        #: unique identifier").  Empty means any token is accepted (open
        #: deployment), which benchmarks use.
        self.app_tokens: Dict[str, str] = {}

    # -- applications ------------------------------------------------------
    def authenticate_application(self, app_name: str, token: str) -> bool:
        """First-level auth for a connecting application."""
        expected = self.app_tokens.get(app_name)
        return expected is None or expected == token

    def register_app_acl(self, app_id: str, acl: Dict[str, str]) -> None:
        self._app_acls[app_id] = AccessControlList(acl)

    def unregister_app(self, app_id: str) -> None:
        self._app_acls.pop(app_id, None)

    def acl_for(self, app_id: str) -> Optional[AccessControlList]:
        return self._app_acls.get(app_id)

    # -- users ---------------------------------------------------------------
    def user_known(self, user: str) -> bool:
        """Level-one check: user appears on at least one app's ACL here."""
        return any(user in acl for acl in self._app_acls.values())

    def authenticate_user(self, user: str, password: str = "") -> bool:
        """Level-one authentication.

        The paper's prototype trusts the application-supplied user lists
        ("Once a user-ID is supplied, a server will automatically
        authenticate that user-ID", §6.3) — passwords ride on SSL but the
        authorization decision is ACL membership, which is what we enforce.
        """
        return self.user_known(user)

    def app_privilege(self, user: str, app_id: str) -> Optional[str]:
        """Level-two: the user's privilege on one application (None=none)."""
        acl = self._app_acls.get(app_id)
        if acl is None:
            return None
        return acl.privilege_of(user)

    def authorize_command(self, user: str, app_id: str, command: str) -> None:
        """Raise :class:`SecurityError` unless ``user`` may run ``command``."""
        acl = self._app_acls.get(app_id)
        if acl is None:
            raise SecurityError(f"unknown application {app_id!r}")
        needed = required_privilege(command)
        if not acl.allows(user, needed):
            raise SecurityError(
                f"user {user!r} lacks {needed!r} privilege on {app_id!r}")

    def accessible_apps(self, user: str) -> Dict[str, str]:
        """app_id → privilege for every local app the user can access."""
        result = {}
        for app_id, acl in self._app_acls.items():
            priv = acl.privilege_of(user)
            if priv is not None:
                result[app_id] = priv
        return result
