"""The ORB's wire protocol (GIOP, abridged).

Two message types with request-id correlation.  Replies carry one of three
status codes, mirroring GIOP's NO_EXCEPTION / USER_EXCEPTION /
SYSTEM_EXCEPTION trichotomy.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.wire.serialize import register_codec

STATUS_OK = "ok"
STATUS_USER_EXC = "user_exception"
STATUS_SYSTEM_EXC = "system_exception"


@register_codec
class GiopRequest:
    """One remote invocation: target object key, operation, arguments."""

    def __init__(self, request_id: int, object_key: str, operation: str,
                 args: tuple = (), kwargs: Optional[dict] = None,
                 reply_host: str = "", reply_port: int = 0,
                 oneway: bool = False) -> None:
        self.request_id = request_id
        self.object_key = object_key
        self.operation = operation
        self.args = args
        self.kwargs = kwargs or {}
        self.reply_host = reply_host
        self.reply_port = reply_port
        self.oneway = oneway

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<GiopRequest #{self.request_id} "
                f"{self.object_key}.{self.operation}>")


@register_codec
class GiopReply:
    """The reply to a request: status + result (or error description)."""

    def __init__(self, request_id: int, status: str = STATUS_OK,
                 result: Any = None, exc_type: str = "",
                 exc_message: str = "") -> None:
        self.request_id = request_id
        self.status = status
        self.result = result
        self.exc_type = exc_type
        self.exc_message = exc_message

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GiopReply #{self.request_id} {self.status}>"
