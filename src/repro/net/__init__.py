"""Simulated wide-area network substrate.

Hosts exchange :class:`~repro.net.network.Frame` objects over duplex
:class:`~repro.net.link.Link` objects with explicit propagation latency and
bandwidth.  Routing is static shortest-path (by latency) over a
:mod:`networkx` graph.  Every frame is charged its real encoded size (from
:mod:`repro.wire`), transmission time on each hop, and propagation latency —
and every hop is counted by the :class:`~repro.net.trace.TrafficTrace`,
which is how the P2P-versus-centralized traffic experiments (E4/E5)
measure WAN message and byte counts.

:class:`~repro.net.costs.CostModel` holds the per-protocol CPU service
costs (HTTP servlet dispatch vs custom TCP channel vs CORBA marshalling)
that reproduce the paper's §6.1/§6.2 trade-off between wide deployment and
performance.
"""

from repro.net.costs import CostModel
from repro.net.host import Endpoint, Host
from repro.net.link import Link
from repro.net.network import Frame, Network, NetworkError
from repro.net.topology import build_lan, build_multi_domain, build_star
from repro.net.trace import TrafficTrace

__all__ = [
    "CostModel",
    "Endpoint",
    "Frame",
    "Host",
    "Link",
    "Network",
    "NetworkError",
    "TrafficTrace",
    "build_lan",
    "build_multi_domain",
    "build_star",
]
