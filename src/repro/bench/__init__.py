"""Benchmark harness: workloads, scenario runners, and reporting.

Each experiment in ``benchmarks/`` (see the per-experiment index in
DESIGN.md) builds on these pieces:

- :mod:`repro.bench.workload` — scripted client behaviours (polling
  monitors, steering engineers) and application farms.
- :mod:`repro.bench.scenarios` — end-to-end scenario runners that assemble
  a deployment, drive a workload for a stretch of virtual time, and return
  the measured table row.
- :mod:`repro.bench.report` — table formatting shared by every benchmark's
  printed output.
- :mod:`repro.bench.wallclock` — the *wall-clock* harness: real seconds
  burned by the simulator itself (wire fast path, network delivery,
  broadcast fan-out, end-to-end scenarios), reported as ``BENCH_*.json``.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.scenarios import (
    run_app_scalability,
    run_client_scalability,
    run_collab_scenario,
    run_remote_vs_local,
)
from repro.bench.workload import (
    make_app_farm,
    polling_client,
    steering_client,
)

_WALLCLOCK_EXPORTS = {
    "run_wallclock_suite": "run_suite",
    "time_op": "time_op",
    "write_wallclock_report": "write_report",
}


def __getattr__(name):
    # Lazy so ``python -m repro.bench.wallclock`` doesn't trip the
    # runpy "found in sys.modules" RuntimeWarning.
    target = _WALLCLOCK_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from repro.bench import wallclock
    return getattr(wallclock, target)

__all__ = [
    "format_table",
    "make_app_farm",
    "polling_client",
    "print_experiment",
    "run_app_scalability",
    "run_client_scalability",
    "run_collab_scenario",
    "run_remote_vs_local",
    "run_wallclock_suite",
    "steering_client",
    "time_op",
    "write_wallclock_report",
]
