"""Cost-attribution plane: who is spending the fleet's resources, on what.

The middleware promises "global access" for large user populations; this
module answers the operator's first capacity question — *which principal*
is consuming CPU, wire bytes, and WAL bandwidth, and *which operation* is
burning it.  Three cooperating pieces:

- :class:`RequestCostLedger` — the write-side.  An
  :class:`AccountingInterceptor` joins the standard chain on all three
  planes and attributes a per-request **cost vector** (requests, sim
  events dispatched, modeled CPU µs, wire bytes split LAN/WAN, WAL
  appends, spans minted, real wall-µs, dropped frames/bytes) to the
  rollup key ``(principal, app, plane, operation)``.  Costs observed away
  from the dispatch path — per-hop wire bytes, WAL appends, span minting
  — join the same vector either through the request's propagated trace
  context (``Frame.trace_ctx``) or through the per-process attribution
  scope the interceptor activates, the same scoping discipline the tracer
  uses.  Aggregates roll into a private
  :class:`~repro.obs.TimeSeriesRegistry` (``cost.<dim>.<plane>``) so cost
  history merges into fleet-wide telemetry views.
- :class:`SpaceSaving` — a top-K heavy-hitter sketch (Metwally et al.)
  per cost dimension, keyed by principal, so "who is the noisy neighbor"
  is answerable in O(K) memory at 10^5-session scale without keeping a
  counter per principal.
- :class:`DispatchProfiler` — a continuous sampling profiler for the real
  time axis.  It rides the kernel dispatch loop: on a wall-clock
  interval it times exactly one callback dispatch and folds the sample
  under the active span's ``(plane, operation)`` (falling back to the
  callback's own name), exporting collapsed-stack (flamegraph) and
  Chrome trace-event formats.

Everything here is **zero-event**: attribution is plain bookkeeping off
the clock — no simulator events, no virtual CPU, no wire bytes — so the
golden experiment tables are bit-for-bit identical with accounting on or
off.  All vector fields are integers (virtual costs are exact by
construction; wall time is truncated to µs), which is what makes the
partition invariant testable bit-for-bit: the per-principal vectors sum
*exactly* to the ledger's running totals, in any merge order.

Boundary: the rest of the tree names only :class:`RequestCostLedger`,
:class:`AccountingInterceptor`, :class:`DispatchProfiler`, and
:data:`COST_DIMENSIONS` (through the :mod:`repro.obs` facade); the sketch
and vector internals stay in this module (boundary lint #8).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.interceptor import TRACE_CTX_KEY
from repro.obs.timeseries import TimeSeriesRegistry
from repro.pipeline.core import Interceptor, RequestContext

#: the core per-request cost dimensions (every E14 heavy-hitter assertion
#: quantifies over these)
COST_DIMENSIONS = ("requests", "events", "cpu_us", "lan_bytes", "wan_bytes",
                   "wal_appends", "spans", "wall_us")
#: bookkeeping dimensions carried in the same vector but asserted
#: separately (errors only on failures; drops only for shed load)
EXTRA_DIMENSIONS = ("errors", "dropped_frames", "dropped_bytes")
ALL_DIMENSIONS = COST_DIMENSIONS + EXTRA_DIMENSIONS

#: ctx.attrs key dispatch sites use to report the modeled CPU seconds they
#: charged for the request before entering the pipeline
CPU_COST_KEY = "cpu_cost"
_OPEN_KEY = "_cost_open"

#: default capacity of the trace-id -> rollup-key LRU binding table
MAX_TRACE_BINDINGS = 4096


class CostVector:
    """One exact, integer-valued resource vector (internal to this module).

    Addition is component-wise and exact, so any partition of the
    attribution stream sums back to the same totals bit-for-bit.
    """

    __slots__ = ALL_DIMENSIONS

    def __init__(self) -> None:
        for dim in ALL_DIMENSIONS:
            setattr(self, dim, 0)

    def bump(self, dim: str, n: int) -> None:
        setattr(self, dim, getattr(self, dim) + n)

    def add(self, other: "CostVector") -> "CostVector":
        for dim in ALL_DIMENSIONS:
            setattr(self, dim, getattr(self, dim) + getattr(other, dim))
        return self

    def as_dict(self) -> Dict[str, int]:
        return {dim: getattr(self, dim) for dim in ALL_DIMENSIONS}

    @classmethod
    def from_dict(cls, doc: Dict[str, int]) -> "CostVector":
        vec = cls()
        for dim in ALL_DIMENSIONS:
            setattr(vec, dim, int(doc.get(dim, 0)))
        return vec

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CostVector):
            return NotImplemented
        return all(getattr(self, d) == getattr(other, d)
                   for d in ALL_DIMENSIONS)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nonzero = {d: v for d, v in self.as_dict().items() if v}
        return f"<CostVector {nonzero}>"


class SpaceSaving:
    """Space-saving top-K counter sketch (Metwally et al., 2005).

    Tracks at most ``capacity`` items.  A new item arriving at capacity
    evicts the current minimum and inherits its count as the new item's
    over-estimation ``error`` — so for any tracked item,
    ``count - error <= true count <= count``, and any item whose true
    count exceeds the minimum tracked count is guaranteed to be present.
    Deterministic: ties evict the first-inserted minimum.
    """

    __slots__ = ("capacity", "counters", "errors")

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.counters: Dict[Any, int] = {}
        self.errors: Dict[Any, int] = {}

    def add(self, item: Any, inc: int = 1) -> None:
        counters = self.counters
        if item in counters:
            counters[item] += inc
        elif len(counters) < self.capacity:
            counters[item] = inc
            self.errors[item] = 0
        else:
            victim = min(counters, key=counters.__getitem__)
            floor = counters.pop(victim)
            del self.errors[victim]
            counters[item] = floor + inc
            self.errors[item] = floor

    def top(self, n: Optional[int] = None) -> List[Tuple[Any, int, int]]:
        """``[(item, count, error)]`` sorted by count desc (ties by item)."""
        ranked = sorted(self.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        if n is not None:
            ranked = ranked[:n]
        return [(item, count, self.errors[item]) for item, count in ranked]

    def guaranteed_top(self) -> Optional[Any]:
        """The top item iff its lower bound beats every other upper bound."""
        ranked = self.top()
        if not ranked:
            return None
        item, count, error = ranked[0]
        if len(ranked) > 1 and count - error < ranked[1][1]:
            return None
        return item

    def merge_from(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine sketches (upper bounds add; trimmed back to capacity)."""
        for item, count in other.counters.items():
            if item in self.counters:
                self.counters[item] += count
                self.errors[item] += other.errors[item]
            else:
                self.counters[item] = count
                self.errors[item] = other.errors[item]
        if len(self.counters) > self.capacity:
            kept = self.top(self.capacity)
            floor = max(c for _i, c, _e in self.top()[self.capacity:])
            self.counters = {i: c for i, c, _e in kept}
            self.errors = {i: min(e + floor, c)
                           for i, c, e in kept}
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {"capacity": self.capacity,
                "top": [[item, count, error]
                        for item, count, error in self.top()]}


class RequestCostLedger:
    """Per-request resource accounting rolled up by (principal, app,
    plane, operation).

    One ledger serves a whole deployment (every server's interceptor and
    the shared network feed the same instance), exactly like the shared
    :class:`~repro.net.Network` — the rollup key carries no server
    dimension, so a fleet-wide "who is spending what" view needs no merge
    step.  Standalone servers create their own.

    Attribution paths, in order of preference:

    1. **Interceptor scope** — ``open_request``/``close_request`` bracket
       each dispatched request and activate the rollup key for the
       handling process, so charges made *during* handling (WAL appends,
       span minting) attribute to the request that caused them.
    2. **Trace binding** — ``open_request`` binds the request's trace id
       to its key (LRU-bounded); frames stamped with that context
       (``Frame.trace_ctx``) attribute their per-hop wire bytes to the
       originating request even after it finished (reply frames).
    3. **Fallback** — unbound frames attribute to
       ``(src_host, "-", "net", channel)`` and scopeless charges to
       ``("-", "-", plane, operation)``; every cost lands in exactly one
       entry, so totals stay exact partitions regardless.
    """

    def __init__(self, sim=None, *,
                 clock: Optional[Callable[[], float]] = None,
                 scope: Optional[Callable[[], Any]] = None,
                 events_fn: Optional[Callable[[], int]] = None,
                 bucket_width: float = 0.25, top_k: int = 8,
                 max_trace_bindings: int = MAX_TRACE_BINDINGS,
                 wall_clock: Callable[[], int] = time.perf_counter_ns) -> None:
        if sim is not None:
            clock = clock or (lambda: sim.now)
            scope = scope or (lambda: sim.active_process)
            events_fn = events_fn or (lambda: sim.events_dispatched)
        self._clock = clock or (lambda: 0.0)
        self._scope = scope or (lambda: None)
        self._events = events_fn or (lambda: 0)
        self._wall = wall_clock
        self.top_k = top_k
        #: cost history in sim-time buckets: ``cost.<dim>.<plane>`` counters
        self.timeseries = TimeSeriesRegistry(clock=self._clock,
                                             bucket_width=bucket_width)
        self.entries: Dict[Tuple[str, str, str, str], CostVector] = {}
        self.total = CostVector()
        self.sketches: Dict[str, SpaceSaving] = {
            dim: SpaceSaving(top_k) for dim in ALL_DIMENSIONS}
        self._bindings: "OrderedDict[Any, Tuple[str, str, str, str]]" = \
            OrderedDict()
        self.max_trace_bindings = max_trace_bindings
        #: per-process stacks of active rollup keys (attribution scope)
        self._active: Dict[Any, List[Tuple[str, str, str, str]]] = {}

    # -- the one write path -------------------------------------------------
    def _charge_key(self, key: Tuple[str, str, str, str], dim: str,
                    n: int) -> None:
        if not n:
            return
        entry = self.entries.get(key)
        if entry is None:
            entry = self.entries[key] = CostVector()
        entry.bump(dim, n)
        self.total.bump(dim, n)
        self.sketches[dim].add(key[0], n)
        self.timeseries.inc(f"cost.{dim}.{key[2]}", n)

    def _active_key(self) -> Optional[Tuple[str, str, str, str]]:
        stack = self._active.get(self._scope())
        return stack[-1] if stack else None

    def charge(self, dim: str, n: int = 1, *, plane: str = "obs",
               operation: str = "charge") -> None:
        """Attribute ``n`` units of ``dim`` to the active request scope
        (or the fallback key when no request is being handled)."""
        key = self._active_key()
        if key is None:
            key = ("-", "-", plane, operation)
        self._charge_key(key, dim, n)

    # -- request lifecycle (interceptor) ------------------------------------
    @staticmethod
    def _app_of(ctx: RequestContext) -> str:
        request = ctx.request
        app = getattr(request, "app_id", None)
        if app is None:
            params = getattr(request, "params", None)
            if isinstance(params, dict):
                app = params.get("app_id")
        return app if isinstance(app, str) and app else "-"

    def open_request(self, ctx: RequestContext) -> None:
        key = (ctx.principal or "-", self._app_of(ctx), ctx.plane,
               ctx.operation or "-")
        ctx.attrs[_OPEN_KEY] = (key, self._events(), self._wall())
        self._active.setdefault(self._scope(), []).append(key)
        span_ctx = ctx.attrs.get(TRACE_CTX_KEY)
        if span_ctx is not None:
            self.bind_trace(span_ctx.trace_id, key)

    def close_request(self, ctx: RequestContext, *,
                      error: bool = False) -> None:
        rec = ctx.attrs.pop(_OPEN_KEY, None)
        if rec is None:
            return
        key, events0, wall0 = rec
        scope_key = self._scope()
        stack = self._active.get(scope_key)
        if stack:
            if stack[-1] == key:
                stack.pop()
            else:  # defensive: out-of-order unwind
                try:
                    stack.remove(key)
                except ValueError:
                    pass
            if not stack:
                del self._active[scope_key]
        self._charge_key(key, "requests", 1)
        if error:
            self._charge_key(key, "errors", 1)
        # +1: the kernel counts the event that *delivered* this request
        # before its callbacks (and hence this window) run — attribute it
        # here, so a synchronous handler still costs the one dispatch it
        # consumed and the events dimension partitions exactly.
        self._charge_key(key, "events", self._events() - events0 + 1)
        cpu = ctx.attrs.get(CPU_COST_KEY)
        if cpu:
            self._charge_key(key, "cpu_us", int(round(cpu * 1e6)))
        self._charge_key(key, "wall_us", (self._wall() - wall0) // 1000)

    @contextmanager
    def scoped(self, principal: str, *, plane: str, operation: str):
        """Attribute charges in this block to a background activity (a
        federation poller, a health gossip round) instead of a request."""
        key = (principal, "-", plane, operation)
        scope_key = self._scope()
        self._active.setdefault(scope_key, []).append(key)
        try:
            yield key
        finally:
            stack = self._active.get(scope_key)
            if stack and stack[-1] == key:
                stack.pop()
                if not stack:
                    del self._active[scope_key]

    # -- trace-context joins (network plane) --------------------------------
    def bind_trace(self, trace_id: Any,
                   key: Tuple[str, str, str, str]) -> None:
        bindings = self._bindings
        bindings[trace_id] = key
        bindings.move_to_end(trace_id)
        while len(bindings) > self.max_trace_bindings:
            bindings.popitem(last=False)

    def _frame_key(self, frame: Any) -> Tuple[str, str, str, str]:
        trace_ctx = frame.trace_ctx
        if trace_ctx is not None:
            key = self._bindings.get(trace_ctx.trace_id)
            if key is not None:
                return key
        return (frame.src_host, "-", "net", frame.channel)

    def account_frame_hop(self, frame: Any, wan: bool) -> None:
        """One traversed link: ``frame.size`` wire bytes, LAN or WAN."""
        self._charge_key(self._frame_key(frame),
                         "wan_bytes" if wan else "lan_bytes", frame.size)

    def account_dropped(self, frame: Any) -> None:
        """A frame shed at hand-off (unbound port): count it and its bytes
        so dropped load shows up in cost totals, not just diagnostics."""
        key = self._frame_key(frame)
        self._charge_key(key, "dropped_frames", 1)
        self._charge_key(key, "dropped_bytes", frame.size)

    # -- reduction ----------------------------------------------------------
    def partition_by(self, field: str = "principal") -> Dict[str, CostVector]:
        """Exact rollup of every entry onto one key field."""
        idx = ("principal", "app", "plane", "operation").index(field)
        out: Dict[str, CostVector] = {}
        for key, vec in self.entries.items():
            slot = out.get(key[idx])
            if slot is None:
                slot = out[key[idx]] = CostVector()
            slot.add(vec)
        return out

    def by_operation(self) -> Dict[str, Dict[str, int]]:
        """Per ``plane/operation`` vectors (the cost-regression gate's
        unit of comparison), as plain dicts."""
        out: Dict[str, CostVector] = {}
        for (_principal, _app, plane, operation), vec in self.entries.items():
            name = f"{plane}/{operation}"
            slot = out.get(name)
            if slot is None:
                slot = out[name] = CostVector()
            slot.add(vec)
        return {name: vec.as_dict() for name, vec in sorted(out.items())}

    def top(self, dim: str, n: Optional[int] = None) \
            -> List[Tuple[str, int, int]]:
        """Top principals for one dimension: ``[(principal, count, err)]``."""
        return self.sketches[dim].top(n if n is not None else self.top_k)

    def merge_from(self, other: "RequestCostLedger") -> "RequestCostLedger":
        """Fold another ledger in exactly (entries and totals are integer
        sums, so the result is merge-order-independent bit-for-bit)."""
        for key, vec in other.entries.items():
            slot = self.entries.get(key)
            if slot is None:
                slot = self.entries[key] = CostVector()
            slot.add(vec)
        self.total.add(other.total)
        for dim, sketch in other.sketches.items():
            self.sketches[dim].merge_from(sketch)
        self.timeseries.merge_from(other.timeseries)
        return self

    @classmethod
    def merged(cls, ledgers: Iterable["RequestCostLedger"], *,
               clock: Optional[Callable[[], float]] = None,
               top_k: int = 8) -> "RequestCostLedger":
        out = cls(clock=clock, top_k=top_k)
        for ledger in ledgers:
            out.merge_from(ledger)
        return out

    def snapshot(self, *, top: Optional[int] = None) -> dict:
        """Plain-dict view: totals, per-key entries, and per-dimension
        heavy hitters (this is what ``/status/costs`` serves)."""
        return {
            "dimensions": list(ALL_DIMENSIONS),
            "totals": self.total.as_dict(),
            "entries": [
                {"principal": key[0], "app": key[1], "plane": key[2],
                 "operation": key[3], **vec.as_dict()}
                for key, vec in sorted(self.entries.items())],
            "heavy_hitters": {
                dim: [[principal, count, error]
                      for principal, count, error in self.top(dim, top)]
                for dim in ALL_DIMENSIONS},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RequestCostLedger entries={len(self.entries)} "
                f"requests={self.total.requests}>")


class AccountingInterceptor(Interceptor):
    """The cost ledger's seam into the standard chain on every plane.

    Sits after tracing (so the request's freshly-minted trace context is
    available to bind) and *before* security/admission — a rejected or
    shed request is still accounted, because you cannot meter principals
    you refuse to see.
    """

    name = "accounting"

    def __init__(self, ledger: RequestCostLedger) -> None:
        self.ledger = ledger

    def before(self, ctx: RequestContext) -> None:
        self.ledger.open_request(ctx)

    def after(self, ctx: RequestContext) -> None:
        # an absorbed error still reaches ``after`` with error_type set
        self.ledger.close_request(ctx,
                                  error="error_type" in ctx.attrs)

    def on_error(self, ctx: RequestContext) -> None:
        self.ledger.close_request(ctx, error=True)


class DispatchProfiler:
    """Continuous sampling profiler over the kernel dispatch loop.

    Installed on a :class:`~repro.sim.Simulator` (``profiler.install(sim)``
    before ``run()``), the kernel routes every event through
    :meth:`dispatch`.  Most events pass straight through (one counter
    decrement); every ``stride`` events the wall clock is consulted, and
    once per ``interval_us`` of real time exactly one callback dispatch
    is timed precisely with ``perf_counter_ns``.  The sample folds under
    a synthetic stack — the active span's ``(plane, operation)`` for the
    process being resumed when a tracer is attached, else the callback
    target's own name — weighted by its measured wall-ns.

    Exports: :meth:`collapsed` (flamegraph.pl / speedscope collapsed
    stacks, wall-µs weights) and :meth:`to_chrome` (Chrome trace-event
    JSON, one complete event per sample).
    """

    def __init__(self, *, interval_us: int = 200, stride: int = 64,
                 tracer=None, max_records: int = 20_000,
                 wall_clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self.interval_ns = int(interval_us) * 1000
        self.stride = int(stride)
        self.tracer = tracer
        self._wall = wall_clock
        #: folded stack tuple -> [sample count, total wall-ns]
        self.samples: Dict[Tuple[str, ...], List[int]] = {}
        self.records: List[dict] = []
        self.max_records = max_records
        self.events_seen = 0
        self.sample_count = 0
        self._countdown = self.stride
        self._next_ns = 0
        self._epoch_ns = self._wall()
        self.sim = None

    def install(self, sim) -> "DispatchProfiler":
        self.sim = sim
        sim.profiler = self
        return self

    def uninstall(self) -> None:
        if self.sim is not None and self.sim.profiler is self:
            self.sim.profiler = None
        self.sim = None

    # -- the kernel-facing hot path -----------------------------------------
    def dispatch(self, event: Any, callbacks: List[Callable]) -> None:
        """Run one event's callbacks, sampling on the wall-clock interval."""
        self.events_seen += 1
        self._countdown -= 1
        if self._countdown > 0:
            for cb in callbacks:
                cb(event)
            return
        self._countdown = self.stride
        t0 = self._wall()
        if t0 < self._next_ns:
            for cb in callbacks:
                cb(event)
            return
        self._next_ns = t0 + self.interval_ns
        stack = self._stack_of(callbacks)
        for cb in callbacks:
            cb(event)
        elapsed = self._wall() - t0
        self.sample_count += 1
        cell = self.samples.get(stack)
        if cell is None:
            self.samples[stack] = [1, elapsed]
        else:
            cell[0] += 1
            cell[1] += elapsed
        if len(self.records) < self.max_records:
            self.records.append({
                "name": stack[-1], "cat": stack[0], "ph": "X",
                "ts": (t0 - self._epoch_ns) / 1000.0,
                "dur": elapsed / 1000.0, "pid": 0, "tid": 0,
                "args": {"stack": ";".join(stack),
                         "sim_time": self.sim.now if self.sim else 0.0}})

    def _stack_of(self, callbacks: List[Callable]) -> Tuple[str, ...]:
        cb = callbacks[0] if callbacks else None
        target = getattr(cb, "__self__", cb)
        name = getattr(target, "name", None) \
            or getattr(getattr(target, "fn", None), "__qualname__", None) \
            or type(target).__name__
        if self.tracer is not None:
            span = self.tracer.active_span_of(target)
            if span is not None:
                return (span.plane or "kernel", span.op, str(name))
        return ("kernel", "dispatch", str(name))

    # -- reduction -----------------------------------------------------------
    def folded(self) -> Dict[str, Tuple[int, int]]:
        """``{"plane;operation;target": (samples, wall_ns)}``."""
        return {";".join(stack): (cell[0], cell[1])
                for stack, cell in sorted(self.samples.items())}

    def collapsed(self) -> str:
        """Collapsed-stack text (one ``stack weight`` line per fold;
        weights are sampled wall-µs, flamegraph.pl-compatible)."""
        lines = [f"{stack} {max(1, wall_ns // 1000)}"
                 for stack, (_count, wall_ns) in self.folded().items()]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> dict:
        return {"traceEvents": list(self.records),
                "displayTimeUnit": "ms",
                "metadata": {"events_seen": self.events_seen,
                             "samples": self.sample_count}}

    def top_folds(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """``[(stack, samples, wall_ns)]`` heaviest first."""
        ranked = sorted(self.folded().items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        return [(stack, count, wall_ns)
                for stack, (count, wall_ns) in ranked[:n]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DispatchProfiler samples={self.sample_count} "
                f"events={self.events_seen}>")


def format_cost_report(ledger: RequestCostLedger, *, top: int = 5) -> str:
    """Human-readable cost report: totals, heavy hitters, per-operation."""
    lines = ["cost totals:"]
    totals = ledger.total.as_dict()
    lines.append("  " + "  ".join(f"{dim}={totals[dim]}"
                                  for dim in ALL_DIMENSIONS if totals[dim]))
    lines.append(f"heavy hitters (top {top} principals per dimension):")
    for dim in ALL_DIMENSIONS:
        ranked = ledger.top(dim, top)
        if not ranked or totals[dim] == 0:
            continue
        parts = [f"{principal}={count}" + (f"(±{error})" if error else "")
                 for principal, count, error in ranked]
        lines.append(f"  {dim:>14}: " + "  ".join(parts))
    lines.append("per-operation (requests, cpu_us, events):")
    for name, vec in ledger.by_operation().items():
        lines.append(f"  {name:<28} requests={vec['requests']:<8} "
                     f"cpu_us={vec['cpu_us']:<10} events={vec['events']}")
    return "\n".join(lines)
