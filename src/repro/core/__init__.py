"""The DISCOVER middleware: servers, proxies, security, locks, archival.

Public surface of the paper's primary contribution: the interaction and
collaboration server (:class:`DiscoverServer`), its per-application context
(:class:`ApplicationProxy`), the two CORBA interface levels
(:class:`DiscoverCorbaServerServant`, :class:`CorbaProxyServant`), and the
supporting managers.
"""

from repro.core.archival import SessionArchive
from repro.core.collaboration import (
    DEFAULT_GROUP,
    ClientSession,
    CollaborationError,
    CollaborationManager,
)
from repro.core.corba import CorbaProxyServant, DiscoverCorbaServerServant
from repro.core.daemon import DaemonService, home_server_of
from repro.core.database import Database, DatabaseError, Record, Table
from repro.core.locking import LockError, LockManager, SteeringLock
from repro.core.proxy import ApplicationProxy
from repro.core.security import (
    MUTATING_COMMANDS,
    READ,
    WRITE,
    AccessControlList,
    SecurityError,
    SecurityManager,
    required_privilege,
)
from repro.core.server import SERVICE_ID, DiscoverServer

__all__ = [
    "AccessControlList",
    "ApplicationProxy",
    "ClientSession",
    "CollaborationError",
    "CollaborationManager",
    "CorbaProxyServant",
    "DEFAULT_GROUP",
    "DaemonService",
    "Database",
    "DatabaseError",
    "DiscoverCorbaServerServant",
    "DiscoverServer",
    "LockError",
    "LockManager",
    "MUTATING_COMMANDS",
    "READ",
    "Record",
    "SERVICE_ID",
    "SecurityError",
    "SecurityManager",
    "SessionArchive",
    "SteeringLock",
    "Table",
    "WRITE",
    "home_server_of",
    "required_privilege",
]
