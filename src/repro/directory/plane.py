"""Deployment/control surface for the sharded directory.

A :class:`DirectoryPlane` owns the ring, the shard servants, and the
live ``shard -> ObjectRef`` table that every :class:`DirectoryClient`
shares.  It is control-plane machinery: adding or removing a shard is a
deployment action (bump the ring epoch, push it to the surviving
servants, let client caches invalidate themselves), while *killing* a
shard is a fault (the node stays on the ring and clients fail over to
the remaining replicas — exactly what the E11 kill-replica drill
asserts).

The plane also aggregates per-shard load and store sizes for the
:class:`~repro.obs.registry.MetricsRegistry` (``snapshot()``) and keeps
the old single-servant conveniences (``app_count``, ``known_users``)
alive for deployments and tests that held a ``collab.directory``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.directory.client import DirectoryClient
from repro.directory.ring import DEFAULT_VNODES, HashRing
from repro.directory.shard import DIRECTORY_SHARD, DirectoryShardServant
from repro.orb.idl import validate_servant


class DirectoryPlane:
    """The deployed ring of directory shard servants."""

    def __init__(self, *, replicas: int = 1,
                 vnodes: int = DEFAULT_VNODES) -> None:
        self.replicas = max(1, replicas)
        self.ring = HashRing(vnodes=vnodes)
        self.servants: Dict[str, DirectoryShardServant] = {}
        self.orbs: Dict[str, object] = {}
        #: live ``shard name -> ObjectRef`` — shared (not copied) with
        #: every client so a restarted shard's new ref propagates
        self.refs: Dict[str, object] = {}
        self._killed: Set[str] = set()

    # -- membership (deployment actions) -----------------------------------
    def add_shard(self, name: str, orb) -> None:
        """Activate a shard servant on ``orb`` and join it to the ring."""
        servant = DirectoryShardServant(name, ring_epoch=self.ring.epoch)
        validate_servant(servant, DIRECTORY_SHARD)
        ref = orb.activate(servant, key=f"DirectoryShard:{name}",
                           type_id="IDL:DirectoryShard:1.0")
        self.servants[name] = servant
        self.orbs[name] = orb
        self.refs[name] = ref
        self.ring.add_node(name)
        self._sync_epochs()

    def remove_shard(self, name: str) -> None:
        """Gracefully retire a shard (membership change, epoch bump)."""
        self.ring.remove_node(name)
        servant = self.servants.pop(name)
        orb = self.orbs.pop(name)
        self.refs.pop(name, None)
        self._killed.discard(name)
        orb.deactivate(f"DirectoryShard:{servant.name}")
        self._sync_epochs()

    def _sync_epochs(self) -> None:
        # control-plane push: servants learn the new epoch immediately;
        # clients notice on their next call via the shared ring object
        for servant in self.servants.values():
            servant.ring_epoch = self.ring.epoch

    # -- faults (ring membership unchanged) --------------------------------
    def kill_shard(self, name: str) -> None:
        """Crash a shard replica: its ORB stops serving but the node stays
        on the ring — reads must fail over, writes skip it."""
        self.orbs[name].shutdown()
        self._killed.add(name)

    @property
    def live_shards(self) -> List[str]:
        return [n for n in self.ring.nodes if n not in self._killed]

    # -- clients -----------------------------------------------------------
    def make_client(self, orb, *, server_name: str = "", health=None,
                    metrics=None, log=None,
                    call_timeout: float = 30.0) -> DirectoryClient:
        """A client routing on the plane's live ring and ref table."""
        return DirectoryClient(
            orb, self.ring, self.refs, server_name=server_name,
            replicas=self.replicas, health=health, metrics=metrics,
            log=log, call_timeout=call_timeout,
            refresh=lambda: self.ring)

    def client_for(self, server) -> DirectoryClient:
        """A client wired to one ``DiscoverServer``'s orb/health/metrics."""
        return self.make_client(
            server.orb, server_name=server.name, health=server.health,
            metrics=server.directory_metrics, log=server.log,
            call_timeout=server.peer_call_timeout)

    # -- aggregation (in-process reads over the servants) ------------------
    def app_count(self) -> int:
        """Distinct app records ring-wide (each lives on R shards)."""
        apps: Set[str] = set()
        for servant in self.servants.values():
            apps |= servant.app_ids()
        return len(apps)

    def known_users(self) -> List[str]:
        users: Set[str] = set()
        for servant in self.servants.values():
            users.update(servant.known_users())
        return sorted(users)

    def per_shard_load(self, live_only: bool = False) -> Dict[str, int]:
        """``{shard: requests served}`` — the E11 flatness metric."""
        names = self.live_shards if live_only else list(self.servants)
        return {name: self.servants[name].requests for name in names}

    def load_flatness(self, live_only: bool = True) -> float:
        """max/mean of per-shard request load (1.0 = perfectly flat)."""
        loads = list(self.per_shard_load(live_only).values())
        if not loads or sum(loads) == 0:
            return 0.0
        return max(loads) / (sum(loads) / len(loads))

    def snapshot(self) -> dict:
        return {
            "shards": len(self.servants),
            "replicas": self.replicas,
            "epoch": self.ring.epoch,
            "killed": sorted(self._killed),
            "apps": self.app_count(),
            "load_flatness": round(self.load_flatness(live_only=True), 4),
            "per_shard": {name: servant.stats()
                          for name, servant in sorted(self.servants.items())},
        }
