"""Application-side steering substrate — DISCOVER's control network.

The paper's back end is "a control network of sensors, actuators, and
interaction agents superimposed on the application" (§4).  This package is
that library, the part a simulation code links against:

- :class:`SteerableParameter` — a named, validated, steerable value.
- :class:`Sensor` / :class:`Actuator` — read-only views and imperative
  hooks into application state.
- :class:`ControlNetwork` — the per-application registry of all three,
  with the interface descriptor that gets advertised on registration.
- :class:`InteractionAgent` — executes steering commands against the
  control network.
- :class:`SteerableApplication` — base class running the compute /
  interaction phase lifecycle and speaking the custom TCP channel protocol
  to its home server (registration, periodic updates, command responses).
"""

from repro.steering.actuators import Actuator
from repro.steering.agents import InteractionAgent
from repro.steering.application import AppConfig, SteerableApplication
from repro.steering.controlnet import ControlNetwork, SteeringError
from repro.steering.lifecycle import (
    COMPUTING,
    INTERACTING,
    PAUSED,
    REGISTERING,
    STOPPED,
)
from repro.steering.parameters import SteerableParameter
from repro.steering.sensors import Sensor

__all__ = [
    "Actuator",
    "AppConfig",
    "COMPUTING",
    "ControlNetwork",
    "INTERACTING",
    "InteractionAgent",
    "PAUSED",
    "REGISTERING",
    "STOPPED",
    "Sensor",
    "SteerableApplication",
    "SteerableParameter",
    "SteeringError",
]
