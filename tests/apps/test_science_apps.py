"""Numerics and steering-surface tests for the demonstration applications."""

import numpy as np
import pytest

from repro.apps import (
    Heat2DApp,
    OilReservoirApp,
    RelativityApp,
    SeismicApp,
    SyntheticApp,
)
from repro.net import Network
from repro.sim import Simulator


def make(cls, **kwargs):
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("apphost")
    net.add_host("srv")
    net.add_link("apphost", "srv", 0.001)
    return cls(host, "unit", "srv", **kwargs)


def run_steps(app, n):
    for i in range(n):
        app.step(app.step_index)
        app.step_index += 1


# ------------------------------ reservoir ------------------------------

def test_reservoir_front_advances_monotonically():
    app = make(OilReservoirApp, cells=100)
    fronts = []
    for _ in range(6):
        run_steps(app, 100)
        fronts.append(app._front_position())
    assert fronts == sorted(fronts)
    assert fronts[-1] > fronts[0]


def test_reservoir_saturation_stays_physical():
    app = make(OilReservoirApp, cells=80)
    run_steps(app, 2000)
    assert np.all(app.saturation >= 0.1 - 1e-12)
    assert np.all(app.saturation <= 0.9 + 1e-12)


def test_reservoir_water_cut_rises_after_breakthrough():
    app = make(OilReservoirApp, cells=60)
    early = app._water_cut()
    run_steps(app, 3000)
    late = app._water_cut()
    assert early < 0.01
    assert late > 0.5


def test_reservoir_oil_in_place_decreases():
    app = make(OilReservoirApp, cells=60)
    before = app._oil_in_place()
    run_steps(app, 500)
    assert app._oil_in_place() < before


def test_reservoir_injection_rate_steering_changes_speed():
    slow = make(OilReservoirApp, cells=100)
    fast = make(OilReservoirApp, cells=100)
    slow.injection_rate.set(0.1)
    fast.injection_rate.set(0.6)
    run_steps(slow, 400)
    run_steps(fast, 400)
    assert fast._front_position() > slow._front_position()


def test_reservoir_tracer_actuator():
    app = make(OilReservoirApp, cells=50)
    result = app.control.actuator("inject_tracer").actuate(amount=2.0)
    assert result["tracer_total"] == pytest.approx(2.0)
    run_steps(app, 10)
    # tracer advects away from the injector and decays
    assert app.tracer[0] < 2.0
    assert app.tracer.sum() < 2.0


def test_reservoir_interface_exposes_paper_knobs():
    app = make(OilReservoirApp)
    desc = app.control.interface_descriptor()
    names = {p["name"] for p in desc["parameters"]}
    assert {"injection_rate", "mobility_ratio"} <= names
    assert {s["name"] for s in desc["sensors"]} >= {
        "water_cut", "oil_in_place", "front_position"}


# -------------------------------- heat2d ---------------------------------

def test_heat_source_injects_energy():
    app = make(Heat2DApp, n=16)
    run_steps(app, 10)
    assert app.field.sum() > 0
    assert app.field.max() == app.field[app.source_pos]


def test_heat_diffusion_spreads():
    app = make(Heat2DApp, n=48)
    run_steps(app, 5)
    warm = lambda: int((app.field > 0.05 * app.field.max()).sum())
    early = warm()
    run_steps(app, 300)
    assert warm() > early


def test_heat_energy_bounded_by_radiative_loss():
    app = make(Heat2DApp, n=16)
    run_steps(app, 3000)
    e1 = app.field.sum()
    run_steps(app, 3000)
    e2 = app.field.sum()
    # approaches steady state instead of diverging
    assert abs(e2 - e1) / e1 < 0.05


def test_heat_move_source_actuator_validates():
    app = make(Heat2DApp, n=16)
    app.control.actuator("move_source").actuate(i=3, j=4)
    assert app.source_pos == (3, 4)
    with pytest.raises(ValueError):
        app.control.actuator("move_source").actuate(i=99, j=0)


def test_heat_quench_zeroes_field():
    app = make(Heat2DApp, n=16)
    run_steps(app, 20)
    removed = app.control.actuator("quench").actuate()
    assert removed["energy_removed"] > 0
    assert app.field.sum() == 0.0


def test_heat_diffusivity_bounds_protect_stability():
    from repro.steering import SteeringError
    app = make(Heat2DApp, n=16)
    with pytest.raises(SteeringError):
        app.diffusivity.set(0.5)  # above the stable limit


# -------------------------------- seismic ----------------------------------

def test_seismic_quiet_until_shot():
    app = make(SeismicApp, cells=100)
    run_steps(app, 50)
    assert float(np.abs(app.u).max()) == 0.0
    app.control.actuator("fire_shot").actuate(position=10)
    run_steps(app, 50)
    assert float(np.abs(app.u).max()) > 0.0


def test_seismic_wave_propagates_toward_receivers():
    app = make(SeismicApp, cells=200)
    app.control.actuator("fire_shot").actuate(position=5, amplitude=1.0)
    mid = app.receivers[1]
    seen = False
    for _ in range(40):
        run_steps(app, 10)
        if abs(app.u[mid]) > 1e-4:
            seen = True
            break
    assert seen, "wavefront reached the middle receiver"


def test_seismic_damping_attenuates():
    lively = make(SeismicApp, cells=100)
    damped = make(SeismicApp, cells=100)
    damped.damping.set(0.05)
    for app in (lively, damped):
        app.control.actuator("fire_shot").actuate(position=50)
        run_steps(app, 300)
    rms = lambda a: float(np.sqrt(np.mean(a.u ** 2)))
    assert rms(damped) < rms(lively)


def test_seismic_velocity_steering_retunes_layer():
    app = make(SeismicApp, cells=100)
    app.layer_velocity.set(0.3)
    assert np.all(app.velocity[50:] == 0.3)
    assert np.all(app.velocity[:50] == 0.4)


def test_seismic_shot_position_validated():
    app = make(SeismicApp, cells=100)
    with pytest.raises(ValueError):
        app.control.actuator("fire_shot").actuate(position=500)


# ------------------------------- relativity ----------------------------------

def test_relativity_constraint_small_initially():
    app = make(RelativityApp, points=128)
    assert app._constraint_norm() < 1e-6


def test_relativity_constraint_bounded_with_dissipation():
    app = make(RelativityApp, points=128)
    run_steps(app, 500)
    assert app._constraint_norm() < 1.0
    assert np.isfinite(app.phi).all()


def test_relativity_dissipation_controls_gridscale_noise():
    """The reason NR codes steer dissipation interactively: with grid-scale
    noise injected, the undissipated centered-difference run blows up while
    the dissipated run stays bounded."""
    raw = make(RelativityApp, points=128)
    smooth = make(RelativityApp, points=128)
    raw.dissipation.set(0.0)
    smooth.dissipation.set(0.1)
    rng = np.random.default_rng(42)
    noise = 0.1 * rng.standard_normal(128)
    raw.pi += noise
    smooth.pi += noise.copy()
    run_steps(raw, 400)
    run_steps(smooth, 400)
    assert float(np.abs(smooth.phi).max()) < 1.0
    assert (float(np.abs(raw.phi).max())
            > 10 * float(np.abs(smooth.phi).max()))


def test_relativity_perturb_actuator():
    app = make(RelativityApp, points=128)
    e0 = app._energy()
    app.control.actuator("perturb").actuate(center=0.5, amplitude=0.5)
    run_steps(app, 10)
    assert app._energy() > e0


def test_relativity_courant_bounds():
    from repro.steering import SteeringError
    app = make(RelativityApp, points=64)
    with pytest.raises(SteeringError):
        app.courant.set(0.9)


# -------------------------------- synthetic ----------------------------------

def test_synthetic_signal_tracks_gain_and_bias():
    app = make(SyntheticApp)
    run_steps(app, 10)
    assert app._signal() == 10.0
    app.gain.set(2.0)
    app.control.parameter("bias").set(5)
    assert app._signal() == 25.0


def test_synthetic_payload_size_knob():
    small = make(SyntheticApp, payload_floats=4)
    large = make(SyntheticApp, payload_floats=400)
    from repro.wire import encoded_size
    assert (encoded_size(large.update_payload())
            > encoded_size(small.update_payload()) + 3000)
