"""Bit-for-bit parity with the pre-pipeline seed.

``golden_seed.json`` was captured from the tree *before* the dispatch
planes were refactored onto :mod:`repro.pipeline`, by running E1, E2 and
both E4 modes sequentially in one process.  Interceptor hooks are plain
function calls — they schedule no simulator events and touch no wire
payloads — so every scenario metric must match the seed exactly, down to
the last float bit.

The scenarios re-run in a single subprocess, in the capture order:
``HttpRequest`` draws request ids from a process-global counter that
feeds wire sizes, so both outside test traffic and scenario reordering
would perturb the numbers.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

HERE = Path(__file__).parent
GOLDEN = json.loads((HERE / "golden_seed.json").read_text())

CAPTURE_SCRIPT = """\
import json, sys
from repro.bench.scenarios import (run_app_scalability,
                                   run_client_scalability,
                                   run_collab_scenario)
rows = {
    "E1": run_app_scalability(8, duration=4.0),
    "E2": run_client_scalability(6, duration=4.0),
    "E4_central": run_collab_scenario(mode="central", duration=4.0,
                                      wan_latency=0.060),
    "E4_p2p": run_collab_scenario(mode="p2p", duration=4.0,
                                  wan_latency=0.060),
}
json.dump(rows, sys.stdout, default=str)
"""


@pytest.fixture(scope="module")
def replay():
    proc = subprocess.run([sys.executable, "-c", CAPTURE_SCRIPT],
                          capture_output=True, text=True, timeout=300,
                          cwd=str(HERE.parents[1]),
                          env={"PYTHONPATH": "src"})
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_scenario_matches_seed_exactly(key, replay):
    row, golden = replay[key], GOLDEN[key]
    mismatches = {k: (golden[k], row.get(k)) for k in golden
                  if row.get(k) != golden[k]}
    assert not mismatches, (
        f"{key} drifted from the pre-pipeline seed: {mismatches}")
    # the refactor adds observability keys on top — they must be present
    for extra in ("http_requests", "pipeline_errors", "sessions_expired"):
        assert extra in row, f"{key} row lost pipeline counter {extra}"
