"""E8 — §7: "We are also measuring the overheads incurred ... for remote
authentication."

Per §5.2.2, login authenticates the client with *every* peer server to
collect the remote applications they may access.  Measure login latency as
the server network grows.  The shape: cost grows linearly with the number
of peers (the serial fan-out of the prototype), which quantifies the
paper's own §6.3 concern and motivates its proposed GIS-style directory.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import make_app_farm
from repro.core.deployment import build_collaboratory
from repro.metrics import LatencyRecorder

SWEEP = (1, 2, 4, 8)
LOGINS = 10


def _login_run(n_domains: int, use_directory: bool = False) -> dict:
    collab = build_collaboratory(n_domains, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1,
                                 use_directory=use_directory)
    collab.run_bootstrap()
    # one app per domain so the fan-out returns real listings
    for d in range(n_domains):
        make_app_farm(collab, 1, domain_index=d, user="bench")
    collab.sim.run(until=collab.sim.now + 2.0)
    recorder = LatencyRecorder(collab.sim)

    def login_loop():
        count = 0
        for i in range(LOGINS):
            portal = collab.add_portal(0)
            recorder.start("login", i)
            apps = yield from portal.login("bench")
            recorder.stop("login", i)
            count = len(apps)
            yield from portal.logout()
            portal.close()
        return count

    proc = collab.sim.spawn(login_loop())
    apps_listed = collab.sim.run(until=proc)
    stats = recorder.stats("login")
    return {
        "auth": "directory" if use_directory else "fan-out",
        "n_servers": n_domains,
        "n_peers": n_domains - 1,
        "apps_listed": apps_listed,
        "mean_login_ms": stats.mean * 1e3,
        "p90_login_ms": stats.p90 * 1e3,
    }


def test_bench_e8_remote_authentication(benchmark):
    rows = run_once(benchmark, lambda: [_login_run(n) for n in SWEEP])
    for row in rows:
        base = rows[0]["mean_login_ms"]
        row["overhead_ms"] = row["mean_login_ms"] - base
        row["per_peer_ms"] = (row["overhead_ms"] / row["n_peers"]
                              if row["n_peers"] else 0.0)
    print_experiment(
        "E8: remote-authentication overhead at login",
        "measuring the overheads incurred for remote authentication",
        rows,
        ["n_servers", "n_peers", "apps_listed", "mean_login_ms",
         "overhead_ms", "per_peer_ms"],
        finding=(f"login grows ~{rows[-1]['per_peer_ms']:.0f}ms per peer "
                 f"server (serial CORBA fan-out)"),
    )
    # every server's applications show up after one login
    for row in rows:
        assert row["apps_listed"] == row["n_servers"]
    # cost grows with peers
    assert rows[-1]["mean_login_ms"] > rows[0]["mean_login_ms"]
    # roughly linear: 8-server overhead ≈ (7/3)x the 4-server overhead
    if rows[-1]["overhead_ms"] > 0 and rows[-2]["overhead_ms"] > 0:
        ratio = rows[-1]["overhead_ms"] / rows[-2]["overhead_ms"]
        assert 1.4 < ratio < 4.0


def test_bench_a5_directory_vs_fanout_login(benchmark):
    """A5 (ablation) — §6.3's fix: "a centralized directory service like
    the GIS that maintains user-IDs and other global information" turns
    login from O(peers) into O(1)."""
    rows = run_once(benchmark, lambda: [
        _login_run(n, use_directory=d)
        for n in (2, 8) for d in (False, True)])
    print_experiment(
        "A5 (ablation): login via peer fan-out vs GIS-style directory",
        "a centralized directory service like the GIS ... All the servers "
        "in the system can now use this directory service",
        rows,
        ["auth", "n_servers", "apps_listed", "mean_login_ms",
         "p90_login_ms"],
        finding=_a5_finding(rows),
    )
    by_key = {(r["auth"], r["n_servers"]): r for r in rows}
    # directory login is flat in network size...
    assert (by_key[("directory", 8)]["mean_login_ms"]
            < 1.5 * by_key[("directory", 2)]["mean_login_ms"])
    # ...and beats the fan-out decisively at 8 servers
    assert (by_key[("fan-out", 8)]["mean_login_ms"]
            > 2 * by_key[("directory", 8)]["mean_login_ms"])
    # both list the same applications
    for n in (2, 8):
        assert (by_key[("directory", n)]["apps_listed"]
                == by_key[("fan-out", n)]["apps_listed"])


def _a5_finding(rows) -> str:
    by_key = {(r["auth"], r["n_servers"]): r for r in rows}
    return (f"at 8 servers: fan-out "
            f"{by_key[('fan-out', 8)]['mean_login_ms']:.0f}ms vs directory "
            f"{by_key[('directory', 8)]['mean_login_ms']:.0f}ms "
            f"(flat in network size)")
