"""Summary statistics over latency samples."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

#: default reservoir capacity — enough for stable p90/p99 estimates
DEFAULT_RESERVOIR_CAPACITY = 1024


@dataclass(frozen=True)
class SummaryStats:
    """Reduction of a sample set, in the units of the samples."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def scaled(self, factor: float) -> "SummaryStats":
        """Same stats in different units (e.g. seconds → milliseconds)."""
        return SummaryStats(self.count, self.mean * factor,
                            self.std * factor, self.minimum * factor,
                            self.p50 * factor, self.p90 * factor,
                            self.p99 * factor, self.maximum * factor)

    def row(self, ndigits: int = 2) -> str:
        """One human-readable table row."""
        return (f"n={self.count:5d}  mean={self.mean:9.{ndigits}f}  "
                f"p50={self.p50:9.{ndigits}f}  p90={self.p90:9.{ndigits}f}  "
                f"p99={self.p99:9.{ndigits}f}  max={self.maximum:9.{ndigits}f}")


class Reservoir:
    """Bounded sample store: exact count/mean/min/max, sampled percentiles.

    Algorithm R reservoir sampling over a fixed capacity, so a collector
    fed by an arbitrarily long run keeps O(capacity) memory.  The exact
    aggregates (count, total → mean, minimum, maximum) are maintained over
    *every* observation; only the percentile estimates come from the
    sample.  Randomness is a private seeded :class:`random.Random` —
    it never touches the simulation's determinism, and two identical
    runs produce identical reservoirs.
    """

    __slots__ = ("capacity", "count", "total", "minimum", "maximum",
                 "_samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Observe one value."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    def merge(self, other: "Reservoir") -> "Reservoir":
        """Fold another reservoir in without losing the tails.

        The exact aggregates compose exactly: count and total add (so
        the merged mean is the weighted mean), min/max take the extrema.
        The retained sample set is a deterministic capacity-bounded
        combination — when both sets fit they concatenate; otherwise
        each side keeps a share of slots proportional to its *observed*
        count, so the merged percentile estimate weights each source by
        how much traffic it actually saw.
        """
        merged_count = self.count + other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        if len(self._samples) + len(other._samples) <= self.capacity:
            self._samples.extend(other._samples)
        elif merged_count > 0:
            k_other = min(len(other._samples),
                          round(self.capacity * (other.count / merged_count)))
            k_self = min(len(self._samples), self.capacity - k_other)
            k_other = min(len(other._samples), self.capacity - k_self)
            self._samples = (self._samples[:k_self]
                             + other._samples[:k_other])
        self.count = merged_count
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> List[float]:
        """The retained (possibly subsampled) values."""
        return list(self._samples)

    def stats(self) -> SummaryStats:
        """Exact count/mean/min/max merged with sampled percentiles.

        Edge cases are pinned (tests/obs/test_accounting.py): **empty**
        → the all-zero :class:`SummaryStats` (count 0, minimum/maximum
        0.0 — never the internal ±inf sentinels); a **single**
        observation → every field is that value (std 0.0), exact and
        identical across all percentiles.
        """
        if self.count == 0:
            return summarize(())
        sampled = summarize(self._samples)
        return SummaryStats(count=self.count, mean=self.mean,
                            std=sampled.std, minimum=self.minimum,
                            p50=sampled.p50, p90=sampled.p90,
                            p99=sampled.p99, maximum=self.maximum)

    def __len__(self) -> int:
        return len(self._samples)


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Reduce ``samples`` to :class:`SummaryStats` (empty → all zeros)."""
    if len(samples) == 0:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(samples, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )
