"""E11 — §6.2: "CORBA, however, causes the middleware to give up control
over its transport and communication policies and reduces performance when
compared to a lower level socket based system."

Same request/reply payloads over (a) the mini-ORB (marshalling + dispatch
costs) and (b) a raw socket-style channel (endpoint send + echo process),
sweeping payload size.  The shape: a fixed per-call ORB penalty plus a
per-byte marshalling penalty that grows with payload.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.metrics import LatencyRecorder
from repro.net import Network
from repro.orb import Orb
from repro.sim import Simulator
from repro.wire import CommandMessage, ResponseMessage

PAYLOAD_FLOATS = (8, 256, 4096)
CALLS = 30
LAT = 0.001


class _EchoServant:
    def echo(self, data):
        return data


def _corba_rtt(payload: list) -> float:
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", LAT)
    corb = Orb(net.hosts["a"])
    sorb = Orb(net.hosts["b"])
    ref = sorb.activate(_EchoServant(), key="echo")
    recorder = LatencyRecorder(sim)

    def caller():
        for i in range(CALLS):
            recorder.start("rtt", i)
            yield from corb.invoke(ref, "echo", payload)
            recorder.stop("rtt", i)

    proc = sim.spawn(caller())
    sim.run(until=proc)
    return recorder.stats("rtt").mean


def _raw_rtt(payload: list) -> float:
    """The lower-level socket system: endpoints + an echo process."""
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", LAT)
    client = net.hosts["a"].bind(9000)
    server = net.hosts["b"].bind(9001)
    recorder = LatencyRecorder(sim)

    def echo_server():
        for _ in range(CALLS):
            frame = yield server.recv()
            msg = frame.payload
            # raw system still deserializes: charge the cheap TCP cost
            yield from net.hosts["b"].use_cpu(0.003 + 2e-8 * frame.size)
            server.send(frame.src_host, frame.src_port,
                        ResponseMessage(msg.request_id, msg.args["data"]))

    def caller():
        for i in range(CALLS):
            recorder.start("rtt", i)
            cmd = CommandMessage("echo", {"data": payload})
            client.send("b", 9001, cmd)
            yield client.recv()
            recorder.stop("rtt", i)

    sim.spawn(echo_server())
    proc = sim.spawn(caller())
    sim.run(until=proc)
    return recorder.stats("rtt").mean


def test_bench_e11_corba_overhead(benchmark):
    def scenario():
        rows = []
        for n in PAYLOAD_FLOATS:
            payload = [float(i) for i in range(n)]
            corba = _corba_rtt(payload) * 1e3
            raw = _raw_rtt(payload) * 1e3
            rows.append({
                "payload_floats": n,
                "payload_kb": n * 9 / 1024.0,
                "corba_rtt_ms": corba,
                "raw_socket_rtt_ms": raw,
                "overhead_ms": corba - raw,
                "overhead_pct": 100.0 * (corba - raw) / raw,
            })
        return rows

    rows = run_once(benchmark, scenario)
    print_experiment(
        "E11: ORB invocation vs lower-level socket protocol",
        "CORBA ... reduces performance when compared to a lower level "
        "socket based system",
        rows,
        ["payload_floats", "payload_kb", "corba_rtt_ms",
         "raw_socket_rtt_ms", "overhead_ms", "overhead_pct"],
        finding=(f"ORB adds {rows[0]['overhead_ms']:.1f}ms per small call, "
                 f"growing to {rows[-1]['overhead_ms']:.1f}ms at "
                 f"{rows[-1]['payload_kb']:.0f}kB (marshalling)"),
    )
    for row in rows:
        assert row["corba_rtt_ms"] > row["raw_socket_rtt_ms"]
    # marshalling: the absolute overhead grows with payload size
    assert rows[-1]["overhead_ms"] > rows[0]["overhead_ms"]
