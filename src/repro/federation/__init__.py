"""The location-transparency layer of the middleware (§4–5).

The paper's core contribution is the peer-to-peer network of servers that
makes *every* registered application reachable through the client's
*local* server.  This package owns every location/routing concern of that
federation, so the rest of :mod:`repro.core` never asks "is this app
local?":

- :class:`PeerRegistry` — peer discovery (trader), liveness, and the
  level-1/level-2 stub and :class:`~repro.orb.ObjectRef` caches, with
  explicit invalidation on ``app_stopped`` notices, deregistration, and
  :class:`~repro.orb.OrbError` from a peer call.
- :class:`AppRouter` — resolves ``app_id`` to an :class:`AppHandle`.
- :class:`AppHandle` / :class:`LocalAppHandle` / :class:`RemoteAppHandle`
  — one generator interface (``open``, ``deliver_command``, locks,
  ``get_updates_since``, group publish, replay) over the paper's level-1
  ``DiscoverCorbaServer`` and level-2 ``CorbaProxy`` interfaces.
- :class:`SubscriptionManager` — the push-subscribe / poll-fallback
  lifecycle for remote application updates, with per-app staleness and
  failover counters surfaced through
  :class:`repro.metrics.FederationMetrics`.
"""

from repro.federation.handles import (
    AppHandle,
    LocalAppHandle,
    RemoteAppHandle,
)
from repro.federation.registry import PeerRegistry, home_server_of
from repro.federation.router import AppRouter
from repro.federation.subscriptions import SubscriptionManager

__all__ = [
    "AppHandle",
    "AppRouter",
    "LocalAppHandle",
    "PeerRegistry",
    "RemoteAppHandle",
    "SubscriptionManager",
    "home_server_of",
]
