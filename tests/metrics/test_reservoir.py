"""Reservoir: bounded memory with exact aggregates (the fix for the
unbounded collector growth in PipelineMetrics / FederationMetrics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import FederationMetrics, PipelineMetrics, Reservoir


def test_exact_aggregates_survive_subsampling():
    res = Reservoir(capacity=64)
    n = 10_000
    for i in range(n):
        res.add(float(i))
    assert res.count == n
    assert len(res) == 64  # memory bounded at capacity
    assert res.mean == sum(range(n)) / n
    assert res.minimum == 0.0
    assert res.maximum == float(n - 1)
    stats = res.stats()
    assert stats.count == n
    assert stats.mean == res.mean
    assert stats.minimum == 0.0 and stats.maximum == float(n - 1)
    # sampled percentiles are estimates, but land in the right region
    assert 0.0 < stats.p50 < n
    assert stats.p50 <= stats.p90 <= stats.p99 <= stats.maximum


def test_reservoir_is_deterministic():
    def fill():
        res = Reservoir(capacity=16)
        for i in range(1000):
            res.add(float(i % 37))
        return res.samples()

    assert fill() == fill()


def test_empty_and_small_reservoirs():
    res = Reservoir()
    assert res.stats().count == 0
    assert res.mean == 0.0
    res.add(2.5)
    stats = res.stats()
    assert stats.count == 1
    assert stats.mean == stats.minimum == stats.maximum == 2.5


def test_merge_composes_aggregates_exactly():
    a, b = Reservoir(capacity=64), Reservoir(capacity=64)
    for i in range(1000):
        a.add(float(i))
    for i in range(500):
        b.add(float(i) + 2000.0)
    a.merge(b)
    assert a.count == 1500
    assert a.mean == (sum(range(1000)) + sum(i + 2000.0
                                             for i in range(500))) / 1500
    assert a.minimum == 0.0
    assert a.maximum == 2499.0
    assert len(a) <= 64  # memory still bounded after the merge


def test_merge_small_reservoirs_concatenates():
    a, b = Reservoir(capacity=64), Reservoir(capacity=64)
    for v in (1.0, 2.0):
        a.add(v)
    b.add(10.0)
    a.merge(b)
    assert sorted(a.samples()) == [1.0, 2.0, 10.0]
    assert a.count == 3


def test_merge_with_empty_is_identity():
    a = Reservoir(capacity=8)
    for i in range(100):
        a.add(float(i))
    before = (a.count, a.total, a.minimum, a.maximum, a.samples())
    a.merge(Reservoir(capacity=8))
    assert (a.count, a.total, a.minimum, a.maximum, a.samples()) == before
    b = Reservoir(capacity=8)
    b.merge(a)
    assert (b.count, b.total, b.minimum, b.maximum) == before[:4]


def test_merge_sample_share_is_traffic_weighted():
    # one side saw 9x the traffic: it keeps ~90% of the merged slots
    a, b = Reservoir(capacity=100), Reservoir(capacity=100)
    for i in range(9000):
        a.add(0.0)
    for i in range(1000):
        b.add(1.0)
    a.merge(b)
    kept_b = sum(1 for v in a.samples() if v == 1.0)
    assert len(a) == 100
    assert kept_b == 10


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=0, max_size=300),
       st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=0, max_size=300))
@settings(max_examples=50, deadline=None)
def test_merge_aggregates_match_single_stream(xs, ys):
    merged = Reservoir(capacity=32)
    for v in xs:
        merged.add(v)
    other = Reservoir(capacity=32)
    for v in ys:
        other.add(v)
    merged.merge(other)
    single = Reservoir(capacity=32)
    for v in xs + ys:
        single.add(v)
    assert merged.count == single.count
    assert merged.total == sum(xs) + sum(ys)
    if xs or ys:
        assert merged.minimum == min(xs + ys)
        assert merged.maximum == max(xs + ys)
    assert len(merged) <= 32


def test_pipeline_metrics_latencies_are_bounded():
    metrics = PipelineMetrics()
    for i in range(5000):
        metrics.observe("http", latency=float(i) * 1e-3)
    assert metrics.requests("http") == 5000
    stats = metrics.latency_stats("http")
    assert stats.count == 5000  # exact despite sampling
    assert len(metrics._latencies["http"]) <= 1024
    assert metrics.latency_stats("missing").count == 0


def test_federation_metrics_staleness_is_bounded():
    metrics = FederationMetrics()
    for i in range(5000):
        metrics.observe_staleness("app-1", float(i) * 1e-3)
    stats = metrics.staleness_stats("app-1")
    assert stats.count == 5000
    assert len(metrics._staleness["app-1"]) <= 1024
    assert metrics.staleness_stats("other").count == 0
