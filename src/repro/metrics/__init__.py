"""Measurement utilities for experiments.

- :class:`LatencyRecorder` — collects per-operation latencies and reduces
  them to summary statistics (mean / percentiles).
- :class:`ThroughputMeter` — counts events over virtual-time windows.
- :class:`PipelineMetrics` — per-plane request/error counters and latency
  histograms fed by the request pipeline's metrics interceptor.
- :class:`FederationMetrics` — peer-cache invalidation, subscription
  lifecycle, and per-app staleness counters fed by the federation layer.
- :class:`DirectoryMetrics` — directory-plane read/write counters, replica
  failovers, and lookup latency fed by the sharded directory client.
- :class:`StorageMetrics` — WAL append / snapshot / recovery counters fed
  by the durable state plane's journal.
- :class:`Reservoir` — bounded sample store (exact count/mean/min/max,
  reservoir-sampled percentiles) backing the long-running collectors.
- :class:`SummaryStats` — the reduction product, printable as table rows.
"""

from repro.metrics.collectors import (
    DirectoryMetrics,
    FederationMetrics,
    LatencyRecorder,
    PipelineMetrics,
    StorageMetrics,
    ThroughputMeter,
)
from repro.metrics.stats import Reservoir, SummaryStats, summarize

__all__ = [
    "DirectoryMetrics",
    "FederationMetrics",
    "LatencyRecorder",
    "PipelineMetrics",
    "Reservoir",
    "StorageMetrics",
    "SummaryStats",
    "ThroughputMeter",
    "summarize",
]
