"""Sharded, replicated directory plane (PR 7).

The paper's §6.3 GIS-style directory and the ``server#aN`` home-server
convention were the last single-logical-registry assumptions in the
codebase.  This package scales both out:

- :mod:`repro.directory.ring` — consistent-hash ring with virtual nodes
  and an explicit epoch, mapping directory keys (user names, app ids)
  to shard servers.
- :mod:`repro.directory.placement` — the ``Placement`` abstraction that
  owns app-id minting and ``app_id -> home server`` resolution.  The
  process-wide instance backs the ``home_server_of`` façade that
  federation and the daemon import; *no other module may parse app ids*
  (AST-lint enforced by ``tools/check_pipeline_boundary.py``).
- :mod:`repro.directory.shard` — the ORB servant holding one shard of
  the user-directory + app-location maps (the storage half of the old
  ``UserDirectoryService``).
- :mod:`repro.directory.client` — ``DirectoryClient``: write-through to
  all R replicas, health-aware read failover, bounded stub cache with
  ring-epoch invalidation (the lookup half of the old service).
- :mod:`repro.directory.plane` — ``DirectoryPlane``: deploys the shard
  servants onto hosts, owns the live ref table and the ring, hands out
  per-server clients, kills/restarts replicas for fault drills.

Everything outside this package goes through the façade below.
"""

from repro.directory.ring import HashRing
from repro.directory.placement import (
    Placement,
    PrefixPlacement,
    get_placement,
    set_placement,
    home_server_of,
    make_app_id,
)
from repro.directory.shard import DIRECTORY_SHARD, DirectoryShardServant
from repro.directory.client import DirectoryClient
from repro.directory.plane import DirectoryPlane

__all__ = [
    "HashRing",
    "Placement",
    "PrefixPlacement",
    "get_placement",
    "set_placement",
    "home_server_of",
    "make_app_id",
    "DIRECTORY_SHARD",
    "DirectoryShardServant",
    "DirectoryClient",
    "DirectoryPlane",
]
