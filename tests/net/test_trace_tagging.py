"""Frame-level trace propagation: auto-stamping, hop spans, per-trace
traffic counters (the replacement for the old last_request_id hack)."""

from repro.net import Network
from repro.net.trace import MAX_TRACE_IDS, TrafficTrace
from repro.obs import Tracer
from repro.sim import Simulator


def make_net(wan=False):
    sim = Simulator()
    net = Network(sim)
    net.tracer = Tracer(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.010, kind="wan" if wan else "lan")
    net.hosts["b"].bind(9)
    return sim, net


def test_frames_stamped_from_current_context_and_hop_span_recorded():
    sim, net = make_net(wan=True)
    tracer = net.tracer
    sent = {}

    def proc():
        with tracer.span("request", plane="client", server="a") as span:
            frame = net.send("a", 1, "b", 9, {"x": 1})
            sent["frame"] = frame
            sent["root"] = span
            yield sim.timeout(0.05)

    sim.spawn(proc())
    sim.run()
    frame, root = sent["frame"], sent["root"]
    # auto-stamped with the sender's active context
    assert frame.trace_ctx == root.context()
    (hop,) = [s for s in tracer.store.spans() if s.op == "net.hop"]
    assert hop.trace_id == root.trace_id
    assert hop.parent_id == root.span_id
    assert hop.server == "a->b"
    assert hop.attrs["wan"] is True
    assert hop.attrs["bytes"] == frame.size
    assert abs(hop.duration - 0.010) < 1e-9


def test_loopback_and_untraced_frames_record_no_hop_spans():
    sim, net = make_net()
    net.hosts["a"].bind(9)

    def proc():
        # no active span: frame goes out unstamped
        net.send("a", 1, "b", 9, {"x": 1})
        with net.tracer.span("request", plane="client", server="a"):
            net.send("a", 1, "a", 9, {"x": 2})  # loopback
            yield sim.timeout(0.05)

    sim.spawn(proc())
    sim.run()
    assert [s.op for s in net.tracer.store.spans()] == ["request"]


def test_per_trace_traffic_counters():
    sim, net = make_net()
    tracer = net.tracer
    ids = {}

    def proc():
        with tracer.span("request", plane="client", server="a") as span:
            ids["trace"] = span.trace_id
            f1 = net.send("a", 1, "b", 9, {"x": 1})
            f2 = net.send("a", 1, "b", 9, {"y": "longer payload"})
            ids["bytes"] = f1.size + f2.size
            yield sim.timeout(0.05)
        net.send("a", 1, "b", 9, {"z": 3})  # untraced
        yield sim.timeout(0.05)

    sim.spawn(proc())
    sim.run()
    counter = net.trace.for_trace(ids["trace"])
    assert counter.messages == 2
    assert counter.bytes == ids["bytes"]
    assert net.trace.total.messages == 3
    assert net.trace.snapshot()["traced_trace_ids"] == 1
    # unknown trace ids read as zero, not KeyError
    assert net.trace.for_trace(999999).messages == 0


def test_per_trace_table_is_lru_bounded():
    trace = TrafficTrace()
    for trace_id in range(MAX_TRACE_IDS + 50):
        counter = trace._trace_counter(trace_id)
        counter.messages += 1
    assert len(trace.per_trace) == MAX_TRACE_IDS
    # oldest evicted, newest retained
    assert trace.for_trace(0).messages == 0
    assert trace.for_trace(MAX_TRACE_IDS + 49).messages == 1
    trace.reset()
    assert len(trace.per_trace) == 0
