"""Wire formats: serialization and typed messages.

DISCOVER moved Java objects between tiers (servlet responses, CORBA
requests); clients told Response, Error and Update messages apart "using
Java's reflection mechanism, by querying the received object for its class
name" (paper §4.1).  We reproduce both halves:

- :mod:`repro.wire.serialize` — a self-describing binary encoding used to
  compute *realistic byte sizes* for every message that crosses the simulated
  network (and exercised as a real codec: decode(encode(x)) == x).
- :mod:`repro.wire.messages` — the typed message hierarchy; receivers
  dispatch on ``type(msg).__name__`` exactly like the paper's clients.

Fast-path invariant: ``encoded_size(x) == len(encode(x))`` always holds,
but ``encoded_size`` never materializes encoded bytes (a dedicated size
visitor; ndarrays sized without a copy).  ``freeze_size`` memoizes the size
of a wire message the first time it is sent or fanned out — from that point
the message must be treated as frozen (not mutated).
"""

from repro.wire.messages import (
    AckMessage,
    ChatMessage,
    CommandMessage,
    ControlMessage,
    ErrorMessage,
    LockMessage,
    Message,
    RegisterMessage,
    ResponseMessage,
    UpdateMessage,
    WhiteboardMessage,
    message_type_name,
)
from repro.wire.serialize import (
    SerializationError,
    decode,
    encode,
    encoded_size,
    freeze_size,
    register_codec,
    set_encode_hook,
    set_object_walk_hook,
)

__all__ = [
    "AckMessage",
    "ChatMessage",
    "CommandMessage",
    "ControlMessage",
    "ErrorMessage",
    "LockMessage",
    "Message",
    "RegisterMessage",
    "ResponseMessage",
    "SerializationError",
    "UpdateMessage",
    "WhiteboardMessage",
    "decode",
    "encode",
    "encoded_size",
    "freeze_size",
    "message_type_name",
    "register_codec",
    "set_encode_hook",
    "set_object_walk_hook",
]
