"""Tests for the discrete-event kernel: clock, ordering, run() modes."""

import pytest

from repro.sim import SimEvent, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(5.0)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [5.0]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc(sim):
        v = yield sim.timeout(1.0, value="hello")
        got.append(v)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_mid_schedule():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append("late")

    sim.spawn(proc(sim))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    # Continuing finishes the process.
    sim.run()
    assert fired == ["late"]


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(3.0)
        return 42

    p = sim.spawn(proc(sim))
    assert sim.run(until=p) == 42
    assert sim.now == 3.0


def test_run_until_past_time_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_call_later_and_call_at():
    sim = Simulator()
    hits = []
    sim.call_later(2.0, lambda: hits.append(("later", sim.now)))
    sim.call_at(1.0, lambda: hits.append(("at", sim.now)))
    sim.run()
    assert hits == [("at", 1.0), ("later", 2.0)]


def test_call_at_in_past_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        got.append((yield ev))

    sim.spawn(waiter(sim, ev))
    sim.call_later(4.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter(sim, ev))
    sim.call_later(1.0, lambda: ev.fail(RuntimeError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_surfaces():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody home"))
    with pytest.raises(RuntimeError, match="nobody home"):
        sim.run()


def test_defused_failed_event_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("quiet"))
    ev.defuse()
    sim.run()  # does not raise


def test_failed_defused_event_identical_under_step_and_run():
    """step() and run() share one dispatch path: a failed event that was
    defused is silent under both, and an un-defused one raises under both
    (regression test — step() used to read the public ok/defused properties
    while run() read the private attributes)."""
    def schedule_pair(sim):
        bad = sim.event()
        bad.fail(RuntimeError("quiet"))
        bad.defuse()
        after = sim.event()
        after.succeed("fine")
        return after

    # run(): drains both events without raising.
    sim = Simulator()
    after = schedule_pair(sim)
    sim.run()
    assert after.processed

    # step(): the same two events, one at a time, equally silent.
    sim = Simulator()
    after = schedule_pair(sim)
    sim.step()
    sim.step()
    assert after.processed
    with pytest.raises(SimulationError):
        sim.step()  # schedule drained, like run() returning

    # And a failed event *not* defused surfaces identically under both.
    sim = Simulator()
    sim.event().fail(RuntimeError("loud"))
    with pytest.raises(RuntimeError, match="loud"):
        sim.run()
    sim = Simulator()
    sim.event().fail(RuntimeError("loud"))
    with pytest.raises(RuntimeError, match="loud"):
        sim.step()


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_step_on_empty_schedule_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.5)
    assert sim.peek() == 7.5
