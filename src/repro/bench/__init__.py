"""Benchmark harness: workloads, scenario runners, and reporting.

Each experiment in ``benchmarks/`` (see the per-experiment index in
DESIGN.md) builds on these pieces:

- :mod:`repro.bench.workload` — scripted client behaviours (polling
  monitors, steering engineers) and application farms.
- :mod:`repro.bench.scenarios` — end-to-end scenario runners that assemble
  a deployment, drive a workload for a stretch of virtual time, and return
  the measured table row.
- :mod:`repro.bench.report` — table formatting shared by every benchmark's
  printed output.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.scenarios import (
    run_app_scalability,
    run_client_scalability,
    run_collab_scenario,
    run_remote_vs_local,
)
from repro.bench.workload import (
    make_app_farm,
    polling_client,
    steering_client,
)

__all__ = [
    "format_table",
    "make_app_farm",
    "polling_client",
    "print_experiment",
    "run_app_scalability",
    "run_client_scalability",
    "run_collab_scenario",
    "run_remote_vs_local",
    "steering_client",
]
